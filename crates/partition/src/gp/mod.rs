//! Serial multilevel graph partitioning — the ParMETIS stand-in.
//!
//! Classic three-phase multilevel scheme (Karypis & Kumar), the algorithm
//! family behind the paper's 1D-GP / 2D-GP layouts:
//!
//! 1. **Coarsening** ([`matching`], [`coarsen`]) — heavy-edge matching
//!    contracts the graph until it is small;
//! 2. **Initial partitioning** ([`initpart`]) — greedy graph growing
//!    bisects the coarsest graph, best of several tries;
//! 3. **Uncoarsening** ([`refine`]) — the partition is projected back up
//!    and improved at every level with Fiduccia–Mattheyses boundary
//!    refinement.
//!
//! k-way partitions come from recursive bisection ([`rb`]). Vertex weights
//! carry up to two balance constraints: the paper's default balances
//! nonzeros (`ncon = 1`); the multiconstraint mode of §5.3 (`GP-MC`)
//! balances rows *and* nonzeros simultaneously (`ncon = 2`).

pub mod coarsen;
pub mod initpart;
pub mod kway;
pub mod matching;
pub mod rb;
pub mod refine;
pub mod tune;
pub mod work;

use sf2d_graph::Graph;
use sf2d_par::{BatchTag, Par, Pool, PoolStats};

use crate::types::Partition;
use rb::PhaseNanos;
use work::WorkGraph;

/// A partition together with its work counters, per-phase wall-time
/// attribution, and the worker-pool utilization snapshot — everything the
/// benchmark harness needs to explain where a thread budget went without
/// re-instrumenting the pipeline.
#[derive(Debug, Clone)]
pub struct GpReport {
    /// The k-way partition.
    pub partition: Partition,
    /// Aggregated work counters (deterministic; equal across thread counts).
    pub stats: rb::GpStats,
    /// Per-phase wall time (not deterministic; sums overlap under forks).
    pub phases: PhaseNanos,
    /// Utilization snapshot of the recursive-bisection worker pool:
    /// per-worker busy/idle/park time, jobs claimed, epoch-mismatch
    /// backoffs. `None` when the run was sequential (threads <= 1).
    pub pool: Option<PoolStats>,
}

/// Tuning knobs for the multilevel partitioner.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct GpConfig {
    /// RNG seed (matching order, initial-partition seeds).
    pub seed: u64,
    /// Allowed imbalance per bisection, e.g. 1.05 = 5% — compounds across
    /// recursive-bisection levels, so the k-way imbalance is larger (the
    /// achieved figure is reported via [`crate::metrics::PartitionQuality`]).
    pub ub: f64,
    /// Stop coarsening when at most this many vertices remain.
    pub coarsen_to: usize,
    /// Number of greedy-graph-growing attempts at the coarsest level.
    pub init_tries: usize,
    /// Maximum FM passes per uncoarsening level.
    pub fm_passes: usize,
    /// Scoped-thread budget for the parallel partitioner; `0` (the
    /// default) resolves the shared `SF2D_THREADS` environment variable at
    /// partition time. Any value produces a byte-identical part vector.
    pub threads: usize,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            seed: 0,
            ub: 1.05,
            coarsen_to: 160,
            init_tries: 8,
            fm_passes: 6,
            threads: 0,
        }
    }
}

/// Shared entry-point body: recursive bisection + k-way polish, with
/// `sf2d-obs` spans, work counters, and achieved-quality reporting.
/// `tag` distinguishes the single-constraint (`gp`) and multiconstraint
/// (`gp-mc`) streams in traces.
fn partition_workgraph(wg: &WorkGraph, tag: &str, k: usize, cfg: &GpConfig) -> GpReport {
    let threads = sf2d_par::resolve_threads(cfg.threads);
    let (mut part, stats, phases, pool_stats) = sf2d_obs::trace_span!(
        sf2d_obs::PhaseKind::Partition,
        &format!("{tag}:recursive-bisection"),
        rb::recursive_bisection_report(wg, k, cfg)
    );
    // Direct k-way polish on the assembled partition: repairs the cut and
    // the imbalance that compound across recursive-bisection levels. Its
    // part-weight init reuses one short-lived pool (the rb pool is scoped
    // to the recursion); its batches are tagged "kway" so the per-worker
    // trace tracks distinguish polish work from the bisection phases.
    let kway_moves = {
        let pool = (threads > 1).then(|| Pool::new(threads));
        if let Some(p) = &pool {
            if sf2d_obs::enabled() {
                p.enable_tracing(sf2d_obs::wall_now());
            }
        }
        let par = Par::new(threads, pool.as_ref()).tagged(BatchTag {
            label: "kway",
            kind: sf2d_obs::PhaseKind::Partition,
        });
        let moves = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            &format!("{tag}:kway-refine"),
            kway::kway_refine(wg, &mut part.part, k, cfg.ub.max(1.03), 4, cfg.seed, &par)
        );
        if let Some(p) = &pool {
            if sf2d_obs::enabled() {
                p.disable_tracing();
                sf2d_obs::record_all(p.drain_trace_events());
            }
        }
        moves
    };
    if sf2d_obs::enabled() {
        sf2d_obs::counter!(&format!("partition.{tag}.bisections"), 0, stats.bisections);
        sf2d_obs::counter!(
            &format!("partition.{tag}.coarsen_levels"),
            0,
            stats.coarsen_levels
        );
        sf2d_obs::counter!(&format!("partition.{tag}.fm_moves"), 0, stats.fm_moves);
        sf2d_obs::counter!(&format!("partition.{tag}.kway_moves"), 0, kway_moves);
        sf2d_obs::histogram!(
            &format!("partition.{tag}.match_rate_pct"),
            (stats.match_rate() * 100.0).round()
        );
        // Achieved k-way quality — the per-bisection `ub` is not the k-way
        // figure, so report what actually came out (satellite: imbalance
        // compounding must be observable, not hidden behind the knob).
        let q = quality_of(wg, &part, cfg.ub);
        for (c, imb) in q.imbalance.iter().enumerate() {
            sf2d_obs::histogram!(
                &format!("partition.{tag}.achieved_imbalance_c{c}_pct"),
                (imb * 100.0).round()
            );
        }
        sf2d_obs::histogram!(&format!("partition.{tag}.edge_cut"), q.edge_cut);
    }
    GpReport {
        partition: part,
        stats,
        phases,
        pool: pool_stats,
    }
}

/// Measures the achieved k-way quality of `part` on `wg`: per-constraint
/// max/avg imbalance and the weighted edge cut, against tolerance `ub`.
pub fn quality_of(wg: &WorkGraph, part: &Partition, ub: f64) -> crate::metrics::PartitionQuality {
    let nv = wg.nv();
    let weights: Vec<Vec<i64>> = (0..wg.ncon)
        .map(|c| (0..nv).map(|v| wg.vw(v, c)).collect())
        .collect();
    let mut cut2 = 0i64;
    for v in 0..nv {
        let (nbrs, wgts) = wg.neighbors(v);
        for (&u, &w) in nbrs.iter().zip(wgts) {
            if part.part[v] != part.part[u as usize] {
                cut2 += w;
            }
        }
    }
    crate::metrics::PartitionQuality::measure(part, &weights, cut2 / 2, ub)
}

/// Partitions a graph into `k` parts, balancing the graph's vertex weights
/// (by default the per-row nonzero counts — the paper's "we will always
/// balance the nonzeros").
pub fn partition_graph(g: &Graph, k: usize, cfg: &GpConfig) -> Partition {
    partition_graph_report(g, k, cfg).partition
}

/// As [`partition_graph`], also returning work counters and per-phase wall
/// times (for the benchmark harness's speedup attribution).
pub fn partition_graph_report(g: &Graph, k: usize, cfg: &GpConfig) -> GpReport {
    let wg = WorkGraph::from_graph(g);
    partition_workgraph(&wg, "gp", k, cfg)
}

/// Multiconstraint variant (the paper's GP-MC): balances both a unit
/// weight per row (vector work) and the nonzero count (SpMV work), as done
/// with ParMETIS' multiconstraint partitioner in §5.3.
pub fn partition_graph_multiconstraint(g: &Graph, k: usize, cfg: &GpConfig) -> Partition {
    partition_graph_multiconstraint_report(g, k, cfg).partition
}

/// As [`partition_graph_multiconstraint`], with counters and phase times.
pub fn partition_graph_multiconstraint_report(g: &Graph, k: usize, cfg: &GpConfig) -> GpReport {
    let wg = WorkGraph::from_graph_mc(g);
    partition_workgraph(&wg, "gp-mc", k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_graph::Graph;

    #[test]
    fn partitions_a_grid_with_low_cut() {
        let a = grid_2d(24, 24);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_graph(&g, 4, &GpConfig::default());
        assert_eq!(p.k, 4);
        assert_eq!(p.len(), 576);
        // All parts used.
        let w = p.part_weights(&vec![1i64; 576]);
        assert!(w.iter().all(|&x| x > 0), "{w:?}");
        // A good 4-way cut of a 24x24 grid is ~2*24=48 edges; random would
        // cut ~3/4 of all 1104 edges. Accept anything below 4x optimal.
        assert!(p.edge_cut(&g) <= 200.0, "cut {}", p.edge_cut(&g));
        // Balanced in nnz weight.
        assert!(
            p.imbalance(&g.vwgt) < 1.25,
            "imbalance {}",
            p.imbalance(&g.vwgt)
        );
    }

    #[test]
    fn beats_random_on_scale_free_graphs() {
        // The paper's observation: even on scale-free graphs, GP finds
        // structure. Compare cut vs a random balanced partition.
        let a = rmat(&RmatConfig::graph500(10), 3);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_graph(&g, 8, &GpConfig::default());
        let rand_part = crate::dist::MatrixDist::random_1d(g.nv(), 8, 1);
        let rp = Partition::new(rand_part.rpart().to_vec(), 8);
        assert!(
            p.comm_volume(&g) < rp.comm_volume(&g),
            "gp volume {} not below random volume {}",
            p.comm_volume(&g),
            rp.comm_volume(&g)
        );
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let a = grid_2d(4, 4);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_graph(&g, 1, &GpConfig::default());
        assert!(p.part.iter().all(|&x| x == 0));
    }

    #[test]
    fn non_power_of_two_parts() {
        let a = grid_2d(20, 20);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_graph(&g, 6, &GpConfig::default());
        assert_eq!(p.k, 6);
        let w = p.part_weights(&g.vwgt);
        assert!(w.iter().all(|&x| x > 0), "{w:?}");
        assert!(
            p.imbalance(&g.vwgt) < 1.35,
            "imbalance {}",
            p.imbalance(&g.vwgt)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rmat(&RmatConfig::graph500(8), 5);
        let g = Graph::from_symmetric_matrix(&a);
        let cfg = GpConfig::default();
        assert_eq!(
            partition_graph(&g, 4, &cfg).part,
            partition_graph(&g, 4, &cfg).part
        );
    }

    #[test]
    fn multiconstraint_balances_rows_and_nnz() {
        let a = rmat(&RmatConfig::graph500(10), 7);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_graph_multiconstraint(&g, 8, &GpConfig::default());
        let rows: Vec<i64> = vec![1; g.nv()];
        let row_imb = p.imbalance(&rows);
        let nnz_imb = p.imbalance(&g.vwgt);
        assert!(row_imb < 1.5, "row imbalance {row_imb}");
        assert!(nnz_imb < 1.8, "nnz imbalance {nnz_imb}");
    }

    #[test]
    fn single_constraint_can_leave_rows_unbalanced_on_skewed_graphs() {
        // Sanity check that MC is actually doing something: a star graph
        // has one hub with huge nnz weight; single-constraint nnz balancing
        // piles many leaves opposite the hub, skewing row counts.
        let mut edges = Vec::new();
        for leaf in 1..1000u32 {
            edges.push((0u32, leaf));
        }
        let g = Graph::from_edges(1000, &edges);
        let p1 = partition_graph(&g, 2, &GpConfig::default());
        let pm = partition_graph_multiconstraint(&g, 2, &GpConfig::default());
        let rows = vec![1i64; 1000];
        assert!(
            pm.imbalance(&rows) <= p1.imbalance(&rows) + 1e-9,
            "mc rows {} vs sc rows {}",
            pm.imbalance(&rows),
            p1.imbalance(&rows)
        );
        assert!(
            pm.imbalance(&rows) < 1.3,
            "mc row imbalance {}",
            pm.imbalance(&rows)
        );
    }
}
