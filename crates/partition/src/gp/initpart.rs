//! Initial bisection of the coarsest graph: greedy graph growing (GGGP).
//!
//! Grow side 0 from a random seed vertex, always absorbing the frontier
//! vertex whose move loses the least edge weight, until side 0 reaches its
//! target weight. Several tries from different seeds; the best (feasible
//! balance first, then lowest cut) wins.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use super::work::{WorkGraph, MAX_CON};

/// One bisection attempt's quality, ordered worst-to-best.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionQuality {
    /// Total balance violation (0 = feasible).
    pub violation: f64,
    /// Total weight of cut edges.
    pub cut: i64,
}

impl BisectionQuality {
    /// True when `self` is strictly better than `other`.
    pub fn better_than(&self, other: &BisectionQuality) -> bool {
        (self.violation, self.cut as f64) < (other.violation, other.cut as f64)
    }
}

/// Computes cut weight of a bisection.
pub fn cut_of(wg: &WorkGraph, side: &[u8]) -> i64 {
    let mut cut = 0i64;
    for v in 0..wg.nv() {
        let (nbrs, wgts) = wg.neighbors(v);
        for (&u, &w) in nbrs.iter().zip(wgts) {
            if side[v] != side[u as usize] {
                cut += w;
            }
        }
    }
    cut / 2
}

/// Side weights per constraint.
pub fn side_weights(wg: &WorkGraph, side: &[u8]) -> [[i64; MAX_CON]; 2] {
    let mut w = [[0i64; MAX_CON]; 2];
    for v in 0..wg.nv() {
        for c in 0..wg.ncon {
            w[side[v] as usize][c] += wg.vw(v, c);
        }
    }
    w
}

/// Balance violation: normalized overweight above `ub * target`, summed over
/// sides and constraints. Zero when both sides fit their allowance.
pub fn violation(
    w: &[[i64; MAX_CON]; 2],
    targets: &[[f64; MAX_CON]; 2],
    ncon: usize,
    ub: f64,
) -> f64 {
    let mut viol = 0.0;
    for s in 0..2 {
        for c in 0..ncon {
            let cap = ub * targets[s][c];
            if cap > 0.0 {
                let over = w[s][c] as f64 - cap;
                if over > 0.0 {
                    viol += over / cap;
                }
            }
        }
    }
    viol
}

/// One GGGP growth from `seed_vertex`. Returns the side assignment.
fn grow_once(wg: &WorkGraph, targets0: &[f64; MAX_CON], seed_vertex: usize) -> Vec<u8> {
    let nv = wg.nv();
    let mut side = vec![1u8; nv];
    let mut w0 = [0i64; MAX_CON];

    // Max-heap of (gain, vertex); gains go stale and are re-checked on pop.
    let mut heap: BinaryHeap<(i64, Reverse<u32>)> = BinaryHeap::new();
    let mut in_heap_gain = vec![i64::MIN; nv];

    let gain_of = |v: usize, side: &[u8]| -> i64 {
        let (nbrs, wgts) = wg.neighbors(v);
        let mut g = 0i64;
        for (&u, &w) in nbrs.iter().zip(wgts) {
            if side[u as usize] == 0 {
                g += w;
            } else {
                g -= w;
            }
        }
        g
    };

    let reached = |w0: &[i64; MAX_CON]| (0..wg.ncon).all(|c| w0[c] as f64 >= targets0[c]);

    let add = |v: usize,
               side: &mut Vec<u8>,
               w0: &mut [i64; MAX_CON],
               heap: &mut BinaryHeap<(i64, Reverse<u32>)>,
               in_heap_gain: &mut Vec<i64>| {
        side[v] = 0;
        for c in 0..wg.ncon {
            w0[c] += wg.vw(v, c);
        }
        let (nbrs, _) = wg.neighbors(v);
        for &u in nbrs {
            let u = u as usize;
            if side[u] == 1 {
                let g = gain_of(u, side);
                if g > in_heap_gain[u] {
                    in_heap_gain[u] = g;
                    heap.push((g, Reverse(u as u32)));
                }
            }
        }
    };

    add(
        seed_vertex,
        &mut side,
        &mut w0,
        &mut heap,
        &mut in_heap_gain,
    );
    let mut next_fallback = 0usize;
    while !reached(&w0) {
        // Pop the best fresh frontier vertex.
        let mut picked = None;
        while let Some((g, Reverse(v))) = heap.pop() {
            let v = v as usize;
            if side[v] == 1 && g == in_heap_gain[v] {
                picked = Some(v);
                break;
            }
        }
        let v = match picked {
            Some(v) => v,
            None => {
                // Disconnected remainder: seed a fresh component.
                while next_fallback < nv && side[next_fallback] == 0 {
                    next_fallback += 1;
                }
                if next_fallback >= nv {
                    break;
                }
                next_fallback
            }
        };
        add(v, &mut side, &mut w0, &mut heap, &mut in_heap_gain);
    }
    side
}

/// Best-of-`tries` GGGP bisection.
///
/// `targets[s][c]` is the ideal weight of side `s` under constraint `c`.
pub fn gggp(
    wg: &WorkGraph,
    targets: &[[f64; MAX_CON]; 2],
    ub: f64,
    tries: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<u8> {
    let nv = wg.nv();
    assert!(nv >= 1);
    let mut best: Option<(BisectionQuality, Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let seed_vertex = rng.gen_range(0..nv);
        let side = grow_once(wg, &targets[0], seed_vertex);
        let q = BisectionQuality {
            violation: violation(&side_weights(wg, &side), targets, wg.ncon, ub),
            cut: cut_of(wg, &side),
        };
        if best
            .as_ref()
            .map(|(bq, _)| q.better_than(bq))
            .unwrap_or(true)
        {
            best = Some((q, side));
        }
    }
    best.expect("at least one try").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sf2d_gen::grid_2d;
    use sf2d_graph::Graph;

    fn targets_even(wg: &WorkGraph) -> [[f64; MAX_CON]; 2] {
        let tot = wg.total_wgt();
        let mut t = [[0.0; MAX_CON]; 2];
        for c in 0..wg.ncon {
            t[0][c] = tot[c] as f64 / 2.0;
            t[1][c] = tot[c] as f64 / 2.0;
        }
        t
    }

    #[test]
    fn bisects_a_grid_reasonably() {
        let g = Graph::from_symmetric_matrix(&grid_2d(12, 12));
        let wg = WorkGraph::from_graph(&g);
        let t = targets_even(&wg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let side = gggp(&wg, &t, 1.05, 8, &mut rng);
        let w = side_weights(&wg, &side);
        let tot = wg.total_wgt()[0] as f64;
        // Both sides populated and near half.
        assert!(
            w[0][0] as f64 > 0.3 * tot && (w[1][0] as f64) > 0.3 * tot,
            "{w:?}"
        );
        // Cut far below random (~half of 264 edges).
        assert!(cut_of(&wg, &side) < 80, "cut {}", cut_of(&wg, &side));
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two 4-cliques, no inter-edges: perfect bisection cuts nothing.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let g = Graph::from_edges(8, &edges);
        let wg = WorkGraph::from_graph(&g);
        let t = targets_even(&wg);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let side = gggp(&wg, &t, 1.05, 4, &mut rng);
        let w = side_weights(&wg, &side);
        assert!(w[0][0] > 0 && w[1][0] > 0);
    }

    #[test]
    fn asymmetric_targets_respected() {
        // Path of 10 unit-ish vertices; ask for 30%/70%.
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(10, &edges);
        let wg = WorkGraph::from_graph(&g);
        let tot = wg.total_wgt()[0] as f64;
        let t = [[0.3 * tot, 0.0], [0.7 * tot, 0.0]];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let side = gggp(&wg, &t, 1.10, 8, &mut rng);
        let w = side_weights(&wg, &side);
        let frac0 = w[0][0] as f64 / tot;
        assert!(frac0 > 0.2 && frac0 < 0.55, "frac0 {frac0}");
    }

    #[test]
    fn quality_ordering() {
        let a = BisectionQuality {
            violation: 0.0,
            cut: 10,
        };
        let b = BisectionQuality {
            violation: 0.0,
            cut: 12,
        };
        let c = BisectionQuality {
            violation: 0.5,
            cut: 1,
        };
        assert!(a.better_than(&b));
        assert!(a.better_than(&c));
        assert!(b.better_than(&c)); // feasibility dominates cut
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_edges(1, &[]);
        let wg = WorkGraph::from_graph(&g);
        let t = targets_even(&wg);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let side = gggp(&wg, &t, 1.05, 2, &mut rng);
        assert_eq!(side.len(), 1);
    }
}
