//! Recursive bisection driver: multilevel bisect, split, recurse.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::coarsen::contract;
use super::initpart::gggp;
use super::matching::{heavy_edge_matching, matched_fraction};
use super::refine::fm_refine;
use super::work::{WorkGraph, MAX_CON};
use super::GpConfig;
use crate::types::Partition;

/// Partitions `wg` into `k` parts by recursive multilevel bisection.
pub fn recursive_bisection(wg: &WorkGraph, k: usize, cfg: &GpConfig) -> Partition {
    assert!(k >= 1);
    let nv = wg.nv();
    let mut part = vec![0u32; nv];
    if k > 1 {
        let ids: Vec<u32> = (0..nv as u32).collect();
        rec(wg, &ids, k, 0, cfg, &mut part, 1);
    }
    Partition::new(part, k)
}

fn rec(
    wg: &WorkGraph,
    map: &[u32],
    k: usize,
    offset: u32,
    cfg: &GpConfig,
    out: &mut [u32],
    depth_seed: u64,
) {
    if k == 1 {
        for &orig in map {
            out[orig as usize] = offset;
        }
        return;
    }
    let k1 = k / 2;
    let k2 = k - k1;
    let frac = k1 as f64 / k as f64;
    let side = multilevel_bisect(wg, frac, cfg, depth_seed);

    let mut keep0: Vec<u32> = Vec::new();
    let mut keep1: Vec<u32> = Vec::new();
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            keep0.push(v as u32);
        } else {
            keep1.push(v as u32);
        }
    }

    // Recurse on the two vertex-induced subgraphs, translating local ids
    // back through `map`.
    for (keep, kk, off, salt) in [
        (keep0, k1, offset, 2 * depth_seed),
        (keep1, k2, offset + k1 as u32, 2 * depth_seed + 1),
    ] {
        if kk == 1 {
            for &local in &keep {
                out[map[local as usize] as usize] = off;
            }
        } else if keep.is_empty() {
            // Degenerate: a side lost every vertex (tiny graphs). Nothing to
            // assign; the empty parts simply stay empty.
        } else {
            let (sub, submap) = wg.subgraph(&keep);
            let orig_map: Vec<u32> = submap.iter().map(|&l| map[l as usize]).collect();
            rec(&sub, &orig_map, kk, off, cfg, out, salt);
        }
    }
}

/// One multilevel bisection: coarsen, GGGP, uncoarsen + FM.
pub fn multilevel_bisect(wg: &WorkGraph, frac: f64, cfg: &GpConfig, salt: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15));

    // Targets per side and constraint.
    let tot = wg.total_wgt();
    let mut targets = [[0.0f64; MAX_CON]; 2];
    for c in 0..wg.ncon {
        targets[0][c] = frac * tot[c] as f64;
        targets[1][c] = (1.0 - frac) * tot[c] as f64;
    }

    // Matching weight cap: no coarse vertex may exceed a modest fraction of
    // the smaller side's allowance, or balance becomes unreachable.
    let mut max_vwgt = [i64::MAX; MAX_CON];
    for c in 0..wg.ncon {
        let cap = (targets[0][c].min(targets[1][c]) / 4.0).max(1.0) as i64;
        max_vwgt[c] = cap;
    }

    // Coarsening.
    let mut levels: Vec<(WorkGraph, Vec<u32>)> = Vec::new(); // (finer graph, cmap to coarser)
    let mut cur = wg.clone();
    while cur.nv() > cfg.coarsen_to {
        let mate = heavy_edge_matching(&cur, &max_vwgt, &mut rng);
        if matched_fraction(&mate) < 0.1 {
            break; // coarsening stalled (e.g. star graphs with capped hubs)
        }
        let (coarse, cmap) = contract(&cur, &mate);
        if coarse.nv() as f64 > 0.97 * cur.nv() as f64 {
            break;
        }
        levels.push((cur, cmap));
        cur = coarse;
    }

    // Initial partition at the coarsest level.
    let mut side = if cur.nv() == 0 {
        Vec::new()
    } else {
        gggp(&cur, &targets, cfg.ub, cfg.init_tries, &mut rng)
    };
    fm_refine(&cur, &mut side, &targets, cfg.ub, cfg.fm_passes);

    // Uncoarsening with refinement at each level.
    while let Some((finer, cmap)) = levels.pop() {
        let mut fine_side = vec![0u8; finer.nv()];
        for v in 0..finer.nv() {
            fine_side[v] = side[cmap[v] as usize];
        }
        fm_refine(&finer, &mut fine_side, &targets, cfg.ub, cfg.fm_passes);
        side = fine_side;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;
    use sf2d_graph::Graph;

    #[test]
    fn all_vertices_assigned_in_range() {
        let g = Graph::from_symmetric_matrix(&grid_2d(16, 16));
        let wg = WorkGraph::from_graph(&g);
        for k in [2usize, 3, 5, 8] {
            let p = recursive_bisection(&wg, k, &GpConfig::default());
            assert_eq!(p.len(), 256);
            assert!(p.part.iter().all(|&x| (x as usize) < k));
            let counts = p.part_weights(&vec![1i64; 256]);
            assert!(counts.iter().all(|&c| c > 0), "k={k}: {counts:?}");
        }
    }

    #[test]
    fn bisect_balances_weighted_vertices() {
        // One heavy vertex (weight 50) + 50 light ones in a star.
        let mut edges = Vec::new();
        for leaf in 1..51u32 {
            edges.push((0, leaf));
        }
        let g = Graph::from_edges(51, &edges);
        let wg = WorkGraph::from_graph(&g);
        let side = multilevel_bisect(&wg, 0.5, &GpConfig::default(), 1);
        let w = crate::gp::initpart::side_weights(&wg, &side);
        let tot = wg.total_wgt()[0] as f64;
        // Hub weight is half the total; a feasible bisection puts the hub
        // alone-ish on one side.
        assert!(
            w[0][0] as f64 > 0.25 * tot && (w[1][0] as f64) > 0.25 * tot,
            "{w:?}"
        );
    }

    #[test]
    fn multilevel_beats_no_refinement_grid_cut() {
        let g = Graph::from_symmetric_matrix(&grid_2d(32, 32));
        let wg = WorkGraph::from_graph(&g);
        let side = multilevel_bisect(&wg, 0.5, &GpConfig::default(), 0);
        let cut = crate::gp::initpart::cut_of(&wg, &side);
        // Optimal is 32; allow 3x.
        assert!(cut <= 96, "cut {cut}");
    }

    #[test]
    fn tiny_graphs_do_not_crash() {
        for n in 1..6usize {
            let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
                .map(|i| (i, i + 1))
                .collect();
            let g = Graph::from_edges(n, &edges);
            let wg = WorkGraph::from_graph(&g);
            let p = recursive_bisection(&wg, 4, &GpConfig::default());
            assert_eq!(p.len(), n);
        }
    }
}
