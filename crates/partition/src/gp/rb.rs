//! Recursive bisection driver: multilevel bisect, split, recurse.
//!
//! The two children of every bisection are independent: they partition
//! disjoint vertex-induced subgraphs and write disjoint entries of the
//! output part vector. They therefore run as fork-join tasks on scoped
//! threads (`sf2d_par::join`), with the thread budget split between them
//! proportionally to subgraph size.
//!
//! **Determinism:** every subtree's RNG stream is derived from its tree
//! path, not from any shared mutable state — the root bisection uses salt
//! 1 and the children of salt `s` use `2s` and `2s + 1`, hashed into the
//! seed as `cfg.seed ^ salt * 0x9E3779B97F4A7C15` (see
//! [`multilevel_bisect`]). Combined with the order-independent parallel
//! loops inside one level (coarsening scatter, FM initialization,
//! projection), the part vector is byte-identical to the sequential
//! execution for any thread count and any schedule; this is
//! property-tested in `tests/parallel_identity.rs`.

use std::time::Instant;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sf2d_obs::PhaseKind;
use sf2d_par::{BatchTag, Par, Pool, PoolStats, SharedSlice};

use super::coarsen::contract;
use super::initpart::gggp;
use super::matching::{heavy_edge_matching, matched_fraction, UNMATCHED};
use super::refine::fm_refine;
use super::tune::{GP_FORK_CUTOFF, VERTEX_GRAIN};
use super::work::{WorkGraph, MAX_CON};
use super::GpConfig;
use crate::types::Partition;

/// Per-phase wall time, in nanoseconds, accumulated across every level of
/// every bisection in a (sub)tree. Kept **separate** from [`GpStats`]:
/// stats are part of the determinism contract (equality-checked in tests),
/// timings are not. When sibling subtrees run concurrently their phase
/// times overlap on the clock, so sums are closer to CPU time than elapsed
/// time — which is exactly the right denominator for attributing where a
/// thread budget goes.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseNanos {
    /// Heavy-edge matching rounds.
    pub matching: u64,
    /// Coarse-graph contraction.
    pub contract: u64,
    /// Coarsest-level GGGP (+ its first FM polish).
    pub initpart: u64,
    /// FM refinement during uncoarsening.
    pub refine: u64,
    /// Projection of the side vector through `cmap`.
    pub project: u64,
}

impl PhaseNanos {
    /// Accumulates another subtree's timings.
    pub fn absorb(&mut self, o: PhaseNanos) {
        self.matching += o.matching;
        self.contract += o.contract;
        self.initpart += o.initpart;
        self.refine += o.refine;
        self.project += o.project;
    }

    /// Sum over all attributed phases.
    pub fn total(&self) -> u64 {
        self.matching + self.contract + self.initpart + self.refine + self.project
    }
}

/// Aggregated work counters from a (sub)tree of recursive bisections,
/// merged deterministically (left child before right) on the
/// orchestrating thread — worker threads never touch the thread-local
/// tracer, so stats travel back through return values instead.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GpStats {
    /// Multilevel bisections performed (internal tree nodes).
    pub bisections: u64,
    /// Total coarsening levels built across all bisections.
    pub coarsen_levels: u64,
    /// Vertices matched (i.e. in a pair), summed over all matchings.
    pub matched_vertices: u64,
    /// Vertices offered to the matcher, summed over all matchings.
    pub matchable_vertices: u64,
    /// FM moves kept across all refinement passes.
    pub fm_moves: u64,
}

impl GpStats {
    /// Accumulates another subtree's counters.
    pub fn absorb(&mut self, o: GpStats) {
        self.bisections += o.bisections;
        self.coarsen_levels += o.coarsen_levels;
        self.matched_vertices += o.matched_vertices;
        self.matchable_vertices += o.matchable_vertices;
        self.fm_moves += o.fm_moves;
    }

    /// Fraction of offered vertices the matcher paired, in [0, 1].
    pub fn match_rate(&self) -> f64 {
        if self.matchable_vertices == 0 {
            0.0
        } else {
            self.matched_vertices as f64 / self.matchable_vertices as f64
        }
    }
}

/// Partitions `wg` into `k` parts by recursive multilevel bisection.
pub fn recursive_bisection(wg: &WorkGraph, k: usize, cfg: &GpConfig) -> Partition {
    recursive_bisection_report(wg, k, cfg).0
}

/// As [`recursive_bisection`], also returning the aggregated work
/// counters (for `sf2d-obs` reporting by the caller).
pub fn recursive_bisection_with_stats(
    wg: &WorkGraph,
    k: usize,
    cfg: &GpConfig,
) -> (Partition, GpStats) {
    let (p, s, _, _) = recursive_bisection_report(wg, k, cfg);
    (p, s)
}

/// As [`recursive_bisection_with_stats`], also returning per-phase wall
/// time attribution and, when a worker pool ran, its [`PoolStats`]
/// snapshot. One worker [`Pool`] is created here and reused by every
/// chunked loop of every level of every bisection — pool workers park
/// between batches instead of being respawned per loop, which is where
/// the pre-pool implementation lost its speedup.
///
/// When the thread-local tracer is enabled (`sf2d_obs::enabled()`), pool
/// tracing is switched on for the recursion with the orchestrator's clock
/// as the base, and the per-worker batch spans are merged into the
/// thread-local event stream at quiescence — one `SF2D_TRACE` run then
/// shows both the phase spans and the per-worker pool tracks.
pub fn recursive_bisection_report(
    wg: &WorkGraph,
    k: usize,
    cfg: &GpConfig,
) -> (Partition, GpStats, PhaseNanos, Option<PoolStats>) {
    assert!(k >= 1);
    let threads = sf2d_par::resolve_threads(cfg.threads);
    let nv = wg.nv();
    let mut part = vec![0u32; nv];
    let mut stats = GpStats::default();
    let mut phases = PhaseNanos::default();
    let mut pool_stats = None;
    if k > 1 {
        let pool = (threads > 1).then(|| Pool::new(threads));
        if let Some(p) = &pool {
            if sf2d_obs::enabled() {
                p.enable_tracing(sf2d_obs::wall_now());
            }
        }
        let par = Par::new(threads, pool.as_ref());
        let ids: Vec<u32> = (0..nv as u32).collect();
        let out = SharedSlice::new(&mut part);
        (stats, phases) = rec(wg, &ids, k, 0, cfg, &out, 1, &par);
        if let Some(p) = &pool {
            if sf2d_obs::enabled() {
                p.disable_tracing();
                sf2d_obs::record_all(p.drain_trace_events());
            }
            pool_stats = Some(p.stats());
        }
    }
    (Partition::new(part, k), stats, phases, pool_stats)
}

/// Recursive worker. Writes `out[map[local]] = part id` for every local
/// vertex; sibling calls receive disjoint `map`s, which is the
/// [`SharedSlice`] disjointness contract.
#[allow(clippy::too_many_arguments)]
fn rec(
    wg: &WorkGraph,
    map: &[u32],
    k: usize,
    offset: u32,
    cfg: &GpConfig,
    out: &SharedSlice<u32>,
    depth_seed: u64,
    par: &Par,
) -> (GpStats, PhaseNanos) {
    if k == 1 {
        for &orig in map {
            // SAFETY: `map` entries are disjoint across sibling subtrees.
            unsafe { out.write(orig as usize, offset) };
        }
        return (GpStats::default(), PhaseNanos::default());
    }
    let k1 = k / 2;
    let k2 = k - k1;
    let frac = k1 as f64 / k as f64;
    let (side, mut stats, mut phases) = multilevel_bisect(wg, frac, cfg, depth_seed, par);
    stats.bisections += 1;

    let mut keep0: Vec<u32> = Vec::new();
    let mut keep1: Vec<u32> = Vec::new();
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            keep0.push(v as u32);
        } else {
            keep1.push(v as u32);
        }
    }

    // Recurse on the two vertex-induced subgraphs, translating local ids
    // back through `map`. Child tasks are independent (disjoint keeps ->
    // disjoint out writes) and carry path-derived salts, so running them
    // on sibling threads cannot change the result.
    let child = |keep: Vec<u32>, kk: usize, off: u32, salt: u64, p: Par| -> (GpStats, PhaseNanos) {
        if kk == 1 {
            for &local in &keep {
                // SAFETY: sibling keeps are disjoint subsets of `map`.
                unsafe { out.write(map[local as usize] as usize, off) };
            }
            (GpStats::default(), PhaseNanos::default())
        } else if keep.is_empty() {
            // Degenerate: a side lost every vertex (tiny graphs). Nothing to
            // assign; the empty parts simply stay empty.
            (GpStats::default(), PhaseNanos::default())
        } else {
            let (sub, submap) = wg.subgraph(&keep);
            let orig_map: Vec<u32> = submap.iter().map(|&l| map[l as usize]).collect();
            rec(&sub, &orig_map, kk, off, cfg, out, salt, &p)
        }
    };

    // With intra-bisection parallelism the loops inside one child already
    // use the whole budget, so forking is only worth its scoped-thread
    // spawn for genuinely large sibling pairs (see `tune::GP_FORK_CUTOFF`).
    // Both forked children keep the shared pool; their concurrent batch
    // submissions serialize inside `Pool::run`.
    let fork =
        par.threads() >= 2 && k1 > 1 && k2 > 1 && keep0.len().min(keep1.len()) >= GP_FORK_CUTOFF;
    let (p0, p1) = if fork {
        par.split(keep0.len(), keep1.len())
    } else {
        // Sequential children may each use the full budget for their own
        // inner loops and deeper forks.
        (*par, *par)
    };
    let off1 = offset + k1 as u32;
    let ((s0, ph0), (s1, ph1)) = sf2d_par::join(
        fork,
        || child(keep0, k1, offset, 2 * depth_seed, p0),
        || child(keep1, k2, off1, 2 * depth_seed + 1, p1),
    );
    stats.absorb(s0);
    stats.absorb(s1);
    phases.absorb(ph0);
    phases.absorb(ph1);
    (stats, phases)
}

/// One multilevel bisection: coarsen, GGGP, uncoarsen + FM. `salt` selects
/// the subtree's RNG stream (`cfg.seed ^ salt * φ64`); `par` bounds the
/// fan-out of the order-independent inner loops (matching rounds,
/// coarse-graph construction, FM initialization, the starting cut sum,
/// projection) — GGGP and the FM move loops stay sequential per subgraph.
pub fn multilevel_bisect(
    wg: &WorkGraph,
    frac: f64,
    cfg: &GpConfig,
    salt: u64,
    par: &Par,
) -> (Vec<u8>, GpStats, PhaseNanos) {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
    let mut stats = GpStats::default();
    let mut phases = PhaseNanos::default();

    // Tag every pool batch this bisection submits with the gp phase it
    // belongs to, so the per-worker trace tracks read "match"/"refine"/…
    // instead of an anonymous "batch". Tags ride on the `Par` handle and
    // cost nothing when tracing is off.
    let tag = |label: &'static str| {
        par.tagged(BatchTag {
            label,
            kind: PhaseKind::Partition,
        })
    };

    // Targets per side and constraint.
    let tot = wg.total_wgt();
    let mut targets = [[0.0f64; MAX_CON]; 2];
    for c in 0..wg.ncon {
        targets[0][c] = frac * tot[c] as f64;
        targets[1][c] = (1.0 - frac) * tot[c] as f64;
    }

    // Matching weight cap: no coarse vertex may exceed a modest fraction of
    // the smaller side's allowance, or balance becomes unreachable.
    let mut max_vwgt = [i64::MAX; MAX_CON];
    for c in 0..wg.ncon {
        let cap = (targets[0][c].min(targets[1][c]) / 4.0).max(1.0) as i64;
        max_vwgt[c] = cap;
    }

    // Coarsening.
    let mut levels: Vec<(WorkGraph, Vec<u32>)> = Vec::new(); // (finer graph, cmap to coarser)
    let mut cur = wg.clone();
    while cur.nv() > cfg.coarsen_to {
        let level = levels.len();
        // The matching salt is drawn from the subtree RNG, so every level
        // gets fresh tie-breaks (the determinism-preserving stand-in for
        // the old random visit order).
        let match_salt: u64 = rng.gen();
        let t = Instant::now();
        let mate = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            &format!("gp:match:l{level}"),
            heavy_edge_matching(&cur, &max_vwgt, match_salt, &tag("match"))
        );
        phases.matching += t.elapsed().as_nanos() as u64;
        stats.matchable_vertices += mate.len() as u64;
        stats.matched_vertices += mate.iter().filter(|&&m| m != UNMATCHED).count() as u64;
        if matched_fraction(&mate) < 0.1 {
            break; // coarsening stalled (e.g. star graphs with capped hubs)
        }
        let t = Instant::now();
        let (coarse, cmap) = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            &format!("gp:contract:l{level}"),
            contract(&cur, &mate, &tag("contract"))
        );
        phases.contract += t.elapsed().as_nanos() as u64;
        if coarse.nv() as f64 > 0.97 * cur.nv() as f64 {
            break;
        }
        levels.push((cur, cmap));
        cur = coarse;
    }
    stats.coarsen_levels += levels.len() as u64;

    // Initial partition at the coarsest level.
    let t = Instant::now();
    let mut side = if cur.nv() == 0 {
        Vec::new()
    } else {
        gggp(&cur, &targets, cfg.ub, cfg.init_tries, &mut rng)
    };
    let (_, moves) = fm_refine(
        &cur,
        &mut side,
        &targets,
        cfg.ub,
        cfg.fm_passes,
        &tag("initpart"),
    );
    phases.initpart += t.elapsed().as_nanos() as u64;
    stats.fm_moves += moves as u64;

    // Uncoarsening with refinement at each level.
    while let Some((finer, cmap)) = levels.pop() {
        let level = levels.len();
        // Projection is a pure per-vertex gather through cmap — parallel
        // fill is byte-identical to the sequential loop.
        let t = Instant::now();
        let mut fine_side = vec![0u8; finer.nv()];
        let side_ro: &[u8] = &side;
        tag("project").fill(&mut fine_side, VERTEX_GRAIN, |v| side_ro[cmap[v] as usize]);
        phases.project += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        let (_, moves) = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            &format!("gp:refine:l{level}"),
            fm_refine(
                &finer,
                &mut fine_side,
                &targets,
                cfg.ub,
                cfg.fm_passes,
                &tag("refine")
            )
        );
        phases.refine += t.elapsed().as_nanos() as u64;
        stats.fm_moves += moves as u64;
        side = fine_side;
    }
    (side, stats, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;
    use sf2d_graph::Graph;

    #[test]
    fn all_vertices_assigned_in_range() {
        let g = Graph::from_symmetric_matrix(&grid_2d(16, 16));
        let wg = WorkGraph::from_graph(&g);
        for k in [2usize, 3, 5, 8] {
            let p = recursive_bisection(&wg, k, &GpConfig::default());
            assert_eq!(p.len(), 256);
            assert!(p.part.iter().all(|&x| (x as usize) < k));
            let counts = p.part_weights(&vec![1i64; 256]);
            assert!(counts.iter().all(|&c| c > 0), "k={k}: {counts:?}");
        }
    }

    #[test]
    fn bisect_balances_weighted_vertices() {
        // One heavy vertex (weight 50) + 50 light ones in a star.
        let mut edges = Vec::new();
        for leaf in 1..51u32 {
            edges.push((0, leaf));
        }
        let g = Graph::from_edges(51, &edges);
        let wg = WorkGraph::from_graph(&g);
        let (side, _, _) = multilevel_bisect(&wg, 0.5, &GpConfig::default(), 1, &Par::seq());
        let w = crate::gp::initpart::side_weights(&wg, &side);
        let tot = wg.total_wgt()[0] as f64;
        // Hub weight is half the total; a feasible bisection puts the hub
        // alone-ish on one side.
        assert!(
            w[0][0] as f64 > 0.25 * tot && (w[1][0] as f64) > 0.25 * tot,
            "{w:?}"
        );
    }

    #[test]
    fn multilevel_beats_no_refinement_grid_cut() {
        let g = Graph::from_symmetric_matrix(&grid_2d(32, 32));
        let wg = WorkGraph::from_graph(&g);
        let (side, stats, _) = multilevel_bisect(&wg, 0.5, &GpConfig::default(), 0, &Par::seq());
        let cut = crate::gp::initpart::cut_of(&wg, &side);
        // Optimal is 32; allow 3x.
        assert!(cut <= 96, "cut {cut}");
        // A 1024-vertex grid must coarsen several levels and match well.
        assert!(stats.coarsen_levels >= 2, "{stats:?}");
        assert!(stats.match_rate() > 0.5, "{stats:?}");
    }

    #[test]
    fn tiny_graphs_do_not_crash() {
        for n in 1..6usize {
            let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
                .map(|i| (i, i + 1))
                .collect();
            let g = Graph::from_edges(n, &edges);
            let wg = WorkGraph::from_graph(&g);
            let p = recursive_bisection(&wg, 4, &GpConfig::default());
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn explicit_thread_counts_agree_with_sequential() {
        // Direct rb-level identity check (the broad property test lives in
        // tests/parallel_identity.rs): an 80x80 grid is big enough that the
        // first split's sides (~3200 vertices) cross GP_FORK_CUTOFF with
        // k=8, so the forked path really runs.
        let g = Graph::from_symmetric_matrix(&grid_2d(80, 80));
        let wg = WorkGraph::from_graph(&g);
        let mut cfg = GpConfig {
            threads: 1,
            ..GpConfig::default()
        };
        let (seq, seq_stats) = recursive_bisection_with_stats(&wg, 8, &cfg);
        for threads in [2, 4, 8] {
            cfg.threads = threads;
            let (par, par_stats) = recursive_bisection_with_stats(&wg, 8, &cfg);
            assert_eq!(par.part, seq.part, "threads {threads}");
            assert_eq!(par_stats, seq_stats, "threads {threads}");
        }
    }
}
