//! The partitioner's internal weighted-graph representation.
//!
//! A flat CSR with integer edge weights and up to [`MAX_CON`] vertex-weight
//! constraints stored interleaved (`vwgt[v * ncon + c]`). Coarse graphs in
//! the multilevel hierarchy and the vertex-induced subgraphs of recursive
//! bisection are all `WorkGraph`s.

use sf2d_graph::Graph;

/// Maximum number of balance constraints (paper uses at most 2: rows+nnz).
pub const MAX_CON: usize = 2;

/// Weighted graph in CSR form.
#[derive(Debug, Clone)]
pub struct WorkGraph {
    /// Row pointers, `nv + 1` entries.
    pub xadj: Vec<usize>,
    /// Neighbour lists.
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<i64>,
    /// Number of balance constraints (1 or 2).
    pub ncon: usize,
    /// Vertex weights, `nv * ncon` entries, constraint-major per vertex.
    pub vwgt: Vec<i64>,
}

impl WorkGraph {
    /// Number of vertices.
    #[inline]
    pub fn nv(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Neighbour and edge-weight slices of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> (&[u32], &[i64]) {
        let (lo, hi) = (self.xadj[v], self.xadj[v + 1]);
        (&self.adjncy[lo..hi], &self.adjwgt[lo..hi])
    }

    /// Weight of vertex `v` under constraint `c`.
    #[inline]
    pub fn vw(&self, v: usize, c: usize) -> i64 {
        self.vwgt[v * self.ncon + c]
    }

    /// Total weight per constraint.
    pub fn total_wgt(&self) -> [i64; MAX_CON] {
        let mut tot = [0i64; MAX_CON];
        for v in 0..self.nv() {
            for c in 0..self.ncon {
                tot[c] += self.vw(v, c);
            }
        }
        tot
    }

    /// Builds the single-constraint work graph: weight = the graph's vertex
    /// weights (row nonzero counts by default).
    pub fn from_graph(g: &Graph) -> WorkGraph {
        let adj = g.adjacency();
        WorkGraph {
            xadj: adj.rowptr().to_vec(),
            adjncy: adj.colidx().to_vec(),
            adjwgt: adj
                .values()
                .iter()
                .map(|&w| w.round().max(1.0) as i64)
                .collect(),
            ncon: 1,
            vwgt: g.vwgt.clone(),
        }
    }

    /// Builds the two-constraint work graph: constraint 0 = unit row weight,
    /// constraint 1 = nonzero count (ParMETIS multiconstraint setup, §5.3).
    pub fn from_graph_mc(g: &Graph) -> WorkGraph {
        let adj = g.adjacency();
        let mut vwgt = Vec::with_capacity(2 * g.nv());
        for v in 0..g.nv() {
            vwgt.push(1);
            vwgt.push(g.vwgt[v]);
        }
        WorkGraph {
            xadj: adj.rowptr().to_vec(),
            adjncy: adj.colidx().to_vec(),
            adjwgt: adj
                .values()
                .iter()
                .map(|&w| w.round().max(1.0) as i64)
                .collect(),
            ncon: 2,
            vwgt,
        }
    }

    /// Extracts the vertex-induced subgraph over `keep` (a sorted list of
    /// vertex ids). Returns the subgraph and the mapping `sub id -> old id`.
    pub fn subgraph(&self, keep: &[u32]) -> (WorkGraph, Vec<u32>) {
        let nv = keep.len();
        // old -> new map; u32::MAX marks "not kept".
        let mut newid = vec![u32::MAX; self.nv()];
        for (new, &old) in keep.iter().enumerate() {
            newid[old as usize] = new as u32;
        }
        let mut xadj = Vec::with_capacity(nv + 1);
        xadj.push(0usize);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(nv * self.ncon);
        for &old in keep {
            let (nbrs, wgts) = self.neighbors(old as usize);
            for (&u, &w) in nbrs.iter().zip(wgts) {
                let nu = newid[u as usize];
                if nu != u32::MAX {
                    adjncy.push(nu);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len());
            for c in 0..self.ncon {
                vwgt.push(self.vw(old as usize, c));
            }
        }
        (
            WorkGraph {
                xadj,
                adjncy,
                adjwgt,
                ncon: self.ncon,
                vwgt,
            },
            keep.to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::Graph;

    fn path4() -> WorkGraph {
        WorkGraph::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]))
    }

    #[test]
    fn from_graph_copies_structure() {
        let wg = path4();
        assert_eq!(wg.nv(), 4);
        assert_eq!(wg.neighbors(1).0, &[0, 2]);
        assert_eq!(wg.ncon, 1);
        assert_eq!(wg.vwgt, vec![1, 2, 2, 1]);
        assert_eq!(wg.total_wgt()[0], 6);
    }

    #[test]
    fn mc_weights_interleaved() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let wg = WorkGraph::from_graph_mc(&g);
        assert_eq!(wg.ncon, 2);
        assert_eq!(wg.vw(1, 0), 1);
        assert_eq!(wg.vw(1, 1), 2);
        assert_eq!(wg.total_wgt(), [3, 4]);
    }

    #[test]
    fn subgraph_relabels_and_filters() {
        let wg = path4();
        let (sub, map) = wg.subgraph(&[1, 2, 3]);
        assert_eq!(sub.nv(), 3);
        assert_eq!(map, vec![1, 2, 3]);
        // Old vertex 1 (new 0) lost its edge to 0, kept the one to 2 (new 1).
        assert_eq!(sub.neighbors(0).0, &[1]);
        assert_eq!(sub.neighbors(1).0, &[0, 2]);
        assert_eq!(sub.vwgt, vec![2, 2, 1]);
    }

    #[test]
    fn subgraph_of_disconnected_pick() {
        let wg = path4();
        let (sub, _) = wg.subgraph(&[0, 3]);
        assert_eq!(sub.nv(), 2);
        assert!(sub.neighbors(0).0.is_empty());
        assert!(sub.neighbors(1).0.is_empty());
    }
}
