//! Greedy k-way boundary refinement.
//!
//! Recursive bisection composes log k independent bisections; this pass
//! (METIS's "k-way FM" in greedy form) then polishes the assembled
//! partition directly: boundary vertices move to the neighbouring part
//! with the highest positive gain, subject to the balance allowance, with
//! ties broken toward the lighter part (so it repairs the imbalance that
//! compounds across recursion levels too).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sf2d_par::{tree_fold, Par};

use super::tune::VERTEX_GRAIN;
use super::work::{WorkGraph, MAX_CON};

/// Refines a k-way partition in place. Returns the number of moves made.
///
/// `ub` is the per-part balance allowance (`max part weight <= ub * ideal`).
/// `par` fans the part-weight initialization out across threads; the move
/// loop itself is inherently sequential and identical either way — exact
/// integer per-chunk sums merged through a fixed-shape tree fold make the
/// initialization thread-count independent too.
pub fn kway_refine(
    wg: &WorkGraph,
    part: &mut [u32],
    k: usize,
    ub: f64,
    passes: usize,
    seed: u64,
    par: &Par,
) -> usize {
    let nv = wg.nv();
    assert_eq!(part.len(), nv);
    if k <= 1 || nv == 0 {
        return 0;
    }
    let ncon = wg.ncon;

    // Part weights per constraint.
    let tot = wg.total_wgt();
    let part_ro: &[u32] = part;
    let partials = par.map_chunks(nv, VERTEX_GRAIN, |_, range| {
        let mut pw = vec![[0i64; MAX_CON]; k];
        for v in range {
            for c in 0..ncon {
                pw[part_ro[v] as usize][c] += wg.vw(v, c);
            }
        }
        pw
    });
    let mut pw = tree_fold(partials, |mut a, b| {
        for (acc, p) in a.iter_mut().zip(b) {
            for c in 0..MAX_CON {
                acc[c] += p[c];
            }
        }
        a
    })
    .unwrap_or_else(|| vec![[0i64; MAX_CON]; k]);
    let cap: Vec<f64> = (0..ncon).map(|c| ub * tot[c] as f64 / k as f64).collect();

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..nv as u32).collect();
    let mut total_moves = 0usize;

    // Scratch: connectivity of the current vertex to each part.
    let mut conn = vec![0i64; k];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..passes {
        order.shuffle(&mut rng);
        let mut moves = 0usize;
        for &v in &order {
            let v = v as usize;
            let home = part[v] as usize;
            let (nbrs, wgts) = wg.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            touched.clear();
            for (&u, &w) in nbrs.iter().zip(wgts) {
                let q = part[u as usize] as usize;
                if conn[q] == 0 {
                    touched.push(q as u32);
                }
                conn[q] += w;
            }
            // Best destination among neighbouring parts.
            let internal = conn[home];
            let mut best: Option<(i64, std::cmp::Reverse<i64>, usize)> = None;
            for &q in &touched {
                let q = q as usize;
                if q == home {
                    continue;
                }
                let gain = conn[q] - internal;
                // Balance: destination must stay within cap for every
                // constraint after the move.
                let fits = (0..ncon).all(|c| (pw[q][c] + wg.vw(v, c)) as f64 <= cap[c]);
                if !fits {
                    continue;
                }
                let cand = (gain, std::cmp::Reverse(pw[q][0]), q);
                if best.map(|b| (cand.0, cand.1) > (b.0, b.1)).unwrap_or(true) {
                    best = Some(cand);
                }
            }
            if let Some((gain, _, q)) = best {
                // Move on positive gain, or zero gain that improves balance.
                let home_heavier = pw[home][0] > pw[q][0];
                if gain > 0 || (gain == 0 && home_heavier) {
                    for c in 0..ncon {
                        let w = wg.vw(v, c);
                        pw[home][c] -= w;
                        pw[q][c] += w;
                    }
                    part[v] = q as u32;
                    moves += 1;
                }
            }
            // Reset scratch.
            for &q in &touched {
                conn[q as usize] = 0;
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Partition;
    use sf2d_gen::grid_2d;
    use sf2d_graph::Graph;

    fn grid_wg(n: usize) -> (Graph, WorkGraph) {
        let g = Graph::from_symmetric_matrix(&grid_2d(n, n));
        let wg = WorkGraph::from_graph(&g);
        (g, wg)
    }

    #[test]
    fn improves_a_scrambled_partition() {
        let (g, wg) = grid_wg(12);
        // Scrambled 4-way assignment: terrible cut.
        let mut part: Vec<u32> = (0..144).map(|v| ((v * 7 + 3) % 4) as u32).collect();
        let before = Partition::new(part.clone(), 4).edge_cut(&g);
        let moves = kway_refine(&wg, &mut part, 4, 1.15, 8, 1, &Par::seq());
        let after_p = Partition::new(part.clone(), 4);
        let after = after_p.edge_cut(&g);
        assert!(moves > 0);
        assert!(after < before / 2.0, "cut {before} -> {after}");
        assert!(after_p.imbalance(&g.vwgt) <= 1.2 + 1e-9);
    }

    #[test]
    fn respects_balance_cap() {
        let (g, wg) = grid_wg(10);
        // All vertices want to merge into one part (the cut is minimal with
        // everything together) — balance must prevent that.
        let mut part: Vec<u32> = (0..100).map(|v| u32::from(v >= 50)).collect();
        kway_refine(&wg, &mut part, 2, 1.10, 10, 2, &Par::seq());
        let p = Partition::new(part, 2);
        assert!(
            p.imbalance(&g.vwgt) <= 1.11,
            "imbalance {}",
            p.imbalance(&g.vwgt)
        );
        let w = p.part_weights(&g.vwgt);
        assert!(w[0] > 0 && w[1] > 0);
    }

    #[test]
    fn no_moves_on_an_optimal_partition() {
        let (_, wg) = grid_wg(8);
        // Clean vertical halves of an 8x8 grid: locally optimal.
        let mut part: Vec<u32> = (0..64).map(|v| u32::from(v % 8 >= 4)).collect();
        let before = part.clone();
        kway_refine(&wg, &mut part, 2, 1.05, 4, 3, &Par::seq());
        // FM-lite may shuffle boundary vertices of equal gain for balance,
        // but the cut must not get worse.
        let g = Graph::from_symmetric_matrix(&grid_2d(8, 8));
        let cut_before = Partition::new(before, 2).edge_cut(&g);
        let cut_after = Partition::new(part, 2).edge_cut(&g);
        assert!(cut_after <= cut_before);
    }

    #[test]
    fn deterministic() {
        // 150x150 grid: above VERTEX_GRAIN so the init really chunks.
        let (_, wg) = grid_wg(150);
        let init: Vec<u32> = (0..150 * 150).map(|v| ((v * 13) % 4) as u32).collect();
        let mut b = init.clone();
        kway_refine(&wg, &mut b, 4, 1.1, 4, 7, &Par::seq());
        for threads in [2usize, 4] {
            let pool = sf2d_par::Pool::new(threads);
            for h in [Par::new(threads, None), Par::new(threads, Some(&pool))] {
                let mut a = init.clone();
                kway_refine(&wg, &mut a, 4, 1.1, 4, 7, &h);
                assert_eq!(a, b, "threads {threads}");
            }
        }
    }
}
