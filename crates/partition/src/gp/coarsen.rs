//! Graph contraction for the coarsening phase.
//!
//! Matched pairs collapse into single coarse vertices; parallel edges merge
//! by summing weights and self-edges vanish. The `cmap` returned maps fine
//! vertices to coarse ids so partitions can be projected back down.
//!
//! Coarse-graph adjacency construction is the heaviest loop of a
//! multilevel bisection, and it is order-independent per coarse vertex:
//! row `cv` of the coarse CSR depends only on the members of `cv` and the
//! (already fixed) `cmap`. The parallel path therefore chunks the coarse
//! vertex range, builds each chunk's rows with private stamp/slot scratch,
//! and concatenates the chunks in index order — a deterministic merge that
//! is byte-identical to the sequential walk for any thread count.

use sf2d_par::Par;

use super::matching::UNMATCHED;
use super::tune::EDGE_GRAIN;
use super::work::WorkGraph;

/// Per-chunk partial CSR produced by the parallel scatter.
struct ChunkRows {
    /// Row lengths for the chunk's coarse vertices (in order).
    row_len: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<i64>,
    vwgt: Vec<i64>,
}

/// Contracts a graph along a matching, fanning the coarse-row construction
/// across `par`'s thread budget (sequential handles produce the identical
/// result). Returns the coarse graph and the fine→coarse vertex map.
pub fn contract(wg: &WorkGraph, mate: &[u32], par: &Par) -> (WorkGraph, Vec<u32>) {
    let nv = wg.nv();
    assert_eq!(mate.len(), nv);

    // Assign coarse ids: each matched pair and each unmatched vertex gets
    // one. The lower endpoint of a pair claims the id, so `reps[cv]` is the
    // first fine vertex of coarse vertex `cv` in fine order — walking reps
    // in id order reproduces the classic fine-order walk exactly.
    let mut cmap = vec![u32::MAX; nv];
    let mut reps: Vec<u32> = Vec::new();
    for v in 0..nv {
        if cmap[v] != u32::MAX {
            continue;
        }
        let m = mate[v];
        let cv = reps.len() as u32;
        cmap[v] = cv;
        if m != UNMATCHED {
            cmap[m as usize] = cv;
        }
        reps.push(v as u32);
    }
    let cnv = reps.len();
    let ncon = wg.ncon;

    // Merge adjacency per coarse vertex. A dense "last seen" stamp array
    // gives O(deg) merge per coarse vertex without hashing; each chunk
    // owns private scratch so chunks are independent.
    let chunks = par.map_chunks(cnv, EDGE_GRAIN, |_, range| {
        let mut stamp = vec![u32::MAX; cnv];
        let mut slot = vec![0usize; cnv];
        let mut rows = ChunkRows {
            row_len: Vec::with_capacity(range.len()),
            adjncy: Vec::new(),
            adjwgt: Vec::new(),
            vwgt: vec![0i64; range.len() * ncon],
        };
        for cv in range.clone() {
            let rep = reps[cv] as usize;
            let row_start = rows.adjncy.len();
            let mut members = [rep, usize::MAX];
            if mate[rep] != UNMATCHED {
                members[1] = mate[rep] as usize;
            }
            for &fv in members.iter().take_while(|&&m| m != usize::MAX) {
                for c in 0..ncon {
                    rows.vwgt[(cv - range.start) * ncon + c] += wg.vw(fv, c);
                }
                let (nbrs, wgts) = wg.neighbors(fv);
                for (&u, &w) in nbrs.iter().zip(wgts) {
                    let cu = cmap[u as usize] as usize;
                    if cu == cv {
                        continue; // internal edge disappears
                    }
                    if stamp[cu] == cv as u32 {
                        rows.adjwgt[slot[cu]] += w;
                    } else {
                        stamp[cu] = cv as u32;
                        slot[cu] = rows.adjncy.len();
                        rows.adjncy.push(cu as u32);
                        rows.adjwgt.push(w);
                    }
                }
            }
            rows.row_len.push(rows.adjncy.len() - row_start);
        }
        rows
    });

    // Deterministic merge: concatenate chunk outputs in chunk (= coarse id)
    // order.
    let mut xadj = Vec::with_capacity(cnv + 1);
    xadj.push(0usize);
    let mut adjncy: Vec<u32> = Vec::with_capacity(wg.adjncy.len());
    let mut adjwgt: Vec<i64> = Vec::with_capacity(wg.adjwgt.len());
    let mut vwgt = Vec::with_capacity(cnv * ncon);
    for chunk in chunks {
        let mut end = *xadj.last().unwrap();
        for len in chunk.row_len {
            end += len;
            xadj.push(end);
        }
        adjncy.extend_from_slice(&chunk.adjncy);
        adjwgt.extend_from_slice(&chunk.adjwgt);
        vwgt.extend_from_slice(&chunk.vwgt);
    }

    (
        WorkGraph {
            xadj,
            adjncy,
            adjwgt,
            ncon,
            vwgt,
        },
        cmap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::Graph;

    fn path4() -> WorkGraph {
        WorkGraph::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]))
    }

    #[test]
    fn contract_matched_path() {
        // Match (0,1) and (2,3): coarse graph is a single edge.
        let wg = path4();
        let mate = vec![1, 0, 3, 2];
        let (cg, cmap) = contract(&wg, &mate, &Par::seq());
        assert_eq!(cg.nv(), 2);
        assert_eq!(cmap, vec![0, 0, 1, 1]);
        assert_eq!(cg.neighbors(0).0, &[1]);
        assert_eq!(cg.neighbors(0).1, &[1]); // edge (1,2) survives with weight 1
                                             // Vertex weights sum: path vwgt = [1,2,2,1].
        assert_eq!(cg.vwgt, vec![3, 3]);
    }

    #[test]
    fn parallel_edges_merge() {
        // Square 0-1-2-3-0; match (0,1) and (2,3): coarse vertices joined by
        // the two edges (1,2) and (0,3) -> weight 2.
        let wg = WorkGraph::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
        let (cg, _) = contract(&wg, &[1, 0, 3, 2], &Par::seq());
        assert_eq!(cg.nv(), 2);
        assert_eq!(cg.neighbors(0).1, &[2]);
    }

    #[test]
    fn unmatched_vertices_survive() {
        let wg = path4();
        let mate = vec![1, 0, UNMATCHED, UNMATCHED];
        let (cg, cmap) = contract(&wg, &mate, &Par::seq());
        assert_eq!(cg.nv(), 3);
        assert_eq!(cmap, vec![0, 0, 1, 2]);
        assert_eq!(cg.neighbors(1).0, &[0, 2]);
    }

    #[test]
    fn total_weight_preserved() {
        let wg = path4();
        let (cg, _) = contract(&wg, &[1, 0, 3, 2], &Par::seq());
        assert_eq!(cg.total_wgt()[0], wg.total_wgt()[0]);
    }

    #[test]
    fn mc_weights_summed() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let wg = WorkGraph::from_graph_mc(&g);
        let (cg, _) = contract(&wg, &[1, 0], &Par::seq());
        assert_eq!(cg.nv(), 1);
        assert_eq!(cg.vwgt, vec![2, 2]); // rows: 1+1, nnz: 1+1
        assert!(cg.adjncy.is_empty());
    }

    #[test]
    fn parallel_contract_is_byte_identical() {
        // A denser pseudo-random graph so chunks actually merge parallel
        // edges: deterministic LCG edge list over 10k vertices (above
        // EDGE_GRAIN so the construction really chunks).
        let mut edges = Vec::new();
        let mut x = 12345u64;
        for _ in 0..60_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) % 10_000;
            let b = (x >> 13) % 10_000;
            if a != b {
                edges.push((a as u32, b as u32));
            }
        }
        let g = Graph::from_edges(10_000, &edges);
        for wg in [WorkGraph::from_graph(&g), WorkGraph::from_graph_mc(&g)] {
            // Greedy deterministic matching: pair consecutive unmatched ids.
            let mut mate = vec![UNMATCHED; 10_000];
            for v in (0..9_999).step_by(3) {
                mate[v] = v as u32 + 1;
                mate[v + 1] = v as u32;
            }
            let (seq_g, seq_map) = contract(&wg, &mate, &Par::seq());
            for threads in [2, 4, 7] {
                let pool = sf2d_par::Pool::new(threads);
                for par in [Par::new(threads, None), Par::new(threads, Some(&pool))] {
                    let (par_g, par_map) = contract(&wg, &mate, &par);
                    assert_eq!(par_map, seq_map, "threads {threads}");
                    assert_eq!(par_g.xadj, seq_g.xadj, "threads {threads}");
                    assert_eq!(par_g.adjncy, seq_g.adjncy, "threads {threads}");
                    assert_eq!(par_g.adjwgt, seq_g.adjwgt, "threads {threads}");
                    assert_eq!(par_g.vwgt, seq_g.vwgt, "threads {threads}");
                }
            }
        }
    }
}
