//! Graph contraction for the coarsening phase.
//!
//! Matched pairs collapse into single coarse vertices; parallel edges merge
//! by summing weights and self-edges vanish. The `cmap` returned maps fine
//! vertices to coarse ids so partitions can be projected back down.

use super::matching::UNMATCHED;
use super::work::WorkGraph;

/// Contracts a graph along a matching. Returns the coarse graph and the
/// fine→coarse vertex map.
pub fn contract(wg: &WorkGraph, mate: &[u32]) -> (WorkGraph, Vec<u32>) {
    let nv = wg.nv();
    assert_eq!(mate.len(), nv);

    // Assign coarse ids: each matched pair and each unmatched vertex gets
    // one. The lower endpoint of a pair claims the id.
    let mut cmap = vec![u32::MAX; nv];
    let mut cnv = 0u32;
    for v in 0..nv {
        if cmap[v] != u32::MAX {
            continue;
        }
        let m = mate[v];
        cmap[v] = cnv;
        if m != UNMATCHED {
            cmap[m as usize] = cnv;
        }
        cnv += 1;
    }
    let cnv = cnv as usize;

    // Merge adjacency. A dense "last seen" stamp array gives O(deg) merge
    // per coarse vertex without hashing.
    let ncon = wg.ncon;
    let mut xadj = Vec::with_capacity(cnv + 1);
    xadj.push(0usize);
    let mut adjncy: Vec<u32> = Vec::with_capacity(wg.adjncy.len());
    let mut adjwgt: Vec<i64> = Vec::with_capacity(wg.adjwgt.len());
    let mut vwgt = vec![0i64; cnv * ncon];
    let mut stamp = vec![u32::MAX; cnv];
    let mut slot = vec![0usize; cnv];

    // Iterate coarse vertices in id order by walking fine vertices.
    let mut done = vec![false; nv];
    for v in 0..nv {
        if done[v] {
            continue;
        }
        let cv = cmap[v] as usize;
        let row_start = adjncy.len();
        let mut members = [v, usize::MAX];
        if mate[v] != UNMATCHED {
            members[1] = mate[v] as usize;
        }
        for &fv in members.iter().take_while(|&&m| m != usize::MAX) {
            done[fv] = true;
            for c in 0..ncon {
                vwgt[cv * ncon + c] += wg.vw(fv, c);
            }
            let (nbrs, wgts) = wg.neighbors(fv);
            for (&u, &w) in nbrs.iter().zip(wgts) {
                let cu = cmap[u as usize] as usize;
                if cu == cv {
                    continue; // internal edge disappears
                }
                if stamp[cu] == cv as u32 {
                    adjwgt[slot[cu]] += w;
                } else {
                    stamp[cu] = cv as u32;
                    slot[cu] = adjncy.len();
                    adjncy.push(cu as u32);
                    adjwgt.push(w);
                }
            }
        }
        let _ = row_start;
        xadj.push(adjncy.len());
    }

    (
        WorkGraph {
            xadj,
            adjncy,
            adjwgt,
            ncon,
            vwgt,
        },
        cmap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::Graph;

    fn path4() -> WorkGraph {
        WorkGraph::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]))
    }

    #[test]
    fn contract_matched_path() {
        // Match (0,1) and (2,3): coarse graph is a single edge.
        let wg = path4();
        let mate = vec![1, 0, 3, 2];
        let (cg, cmap) = contract(&wg, &mate);
        assert_eq!(cg.nv(), 2);
        assert_eq!(cmap, vec![0, 0, 1, 1]);
        assert_eq!(cg.neighbors(0).0, &[1]);
        assert_eq!(cg.neighbors(0).1, &[1]); // edge (1,2) survives with weight 1
                                             // Vertex weights sum: path vwgt = [1,2,2,1].
        assert_eq!(cg.vwgt, vec![3, 3]);
    }

    #[test]
    fn parallel_edges_merge() {
        // Square 0-1-2-3-0; match (0,1) and (2,3): coarse vertices joined by
        // the two edges (1,2) and (0,3) -> weight 2.
        let wg = WorkGraph::from_graph(&Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
        let (cg, _) = contract(&wg, &[1, 0, 3, 2]);
        assert_eq!(cg.nv(), 2);
        assert_eq!(cg.neighbors(0).1, &[2]);
    }

    #[test]
    fn unmatched_vertices_survive() {
        let wg = path4();
        let mate = vec![1, 0, UNMATCHED, UNMATCHED];
        let (cg, cmap) = contract(&wg, &mate);
        assert_eq!(cg.nv(), 3);
        assert_eq!(cmap, vec![0, 0, 1, 2]);
        assert_eq!(cg.neighbors(1).0, &[0, 2]);
    }

    #[test]
    fn total_weight_preserved() {
        let wg = path4();
        let (cg, _) = contract(&wg, &[1, 0, 3, 2]);
        assert_eq!(cg.total_wgt()[0], wg.total_wgt()[0]);
    }

    #[test]
    fn mc_weights_summed() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let wg = WorkGraph::from_graph_mc(&g);
        let (cg, _) = contract(&wg, &[1, 0]);
        assert_eq!(cg.nv(), 1);
        assert_eq!(cg.vwgt, vec![2, 2]); // rows: 1+1, nnz: 1+1
        assert!(cg.adjncy.is_empty());
    }
}
