//! Heavy-edge matching (HEM) for the coarsening phase.
//!
//! Vertices are visited in random order; each unmatched vertex matches its
//! unmatched neighbour across the heaviest edge. Two guards adapt the
//! classic scheme to scale-free graphs:
//!
//! * a **weight cap** refuses matches whose combined weight could not be
//!   balanced later (hubs stay single rather than forming super-hubs);
//! * ties break toward the lower-degree neighbour, which empirically keeps
//!   more of the power-law tail mergeable at the next level.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

use super::work::WorkGraph;

/// Sentinel: vertex not matched (maps to itself at contraction).
pub const UNMATCHED: u32 = u32::MAX;

/// Computes a heavy-edge matching. Returns `mate[v]` = matched partner or
/// [`UNMATCHED`]. Matches are symmetric: `mate[mate[v]] == v`.
///
/// `max_vwgt[c]` caps the combined weight of a matched pair per constraint.
pub fn heavy_edge_matching(wg: &WorkGraph, max_vwgt: &[i64], rng: &mut ChaCha8Rng) -> Vec<u32> {
    let nv = wg.nv();
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.shuffle(rng);

    let mut mate = vec![UNMATCHED; nv];
    for &v in &order {
        let v = v as usize;
        if mate[v] != UNMATCHED {
            continue;
        }
        let (nbrs, wgts) = wg.neighbors(v);
        let mut best: Option<(i64, usize, u32)> = None; // (weight, -degree) best
        for (&u, &w) in nbrs.iter().zip(wgts) {
            let u = u as usize;
            if u == v || mate[u] != UNMATCHED {
                continue;
            }
            // Weight cap per constraint.
            let fits = (0..wg.ncon).all(|c| wg.vw(v, c) + wg.vw(u, c) <= max_vwgt[c]);
            if !fits {
                continue;
            }
            let deg = wg.xadj[u + 1] - wg.xadj[u];
            let cand = (w, usize::MAX - deg, u as u32);
            if best
                .map(|(bw, bd, _)| (w, usize::MAX - deg) > (bw, bd))
                .unwrap_or(true)
            {
                best = Some(cand);
            }
        }
        if let Some((_, _, u)) = best {
            mate[v] = u;
            mate[u as usize] = v as u32;
        }
    }
    mate
}

/// Fraction of vertices matched; coarsening stops when this stalls.
pub fn matched_fraction(mate: &[u32]) -> f64 {
    if mate.is_empty() {
        return 0.0;
    }
    let matched = mate.iter().filter(|&&m| m != UNMATCHED).count();
    matched as f64 / mate.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sf2d_graph::Graph;

    fn wg_from_edges(n: usize, edges: &[(u32, u32)]) -> WorkGraph {
        WorkGraph::from_graph(&Graph::from_edges(n, edges))
    }

    #[test]
    fn matching_is_symmetric_and_valid() {
        let wg = wg_from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (0, 7)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mate = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], &mut rng);
        for v in 0..8usize {
            let m = mate[v];
            if m != UNMATCHED {
                assert_eq!(mate[m as usize], v as u32, "asymmetric at {v}");
                assert_ne!(m, v as u32, "self-match");
                // Matched pairs must be adjacent.
                assert!(wg.neighbors(v).0.contains(&m));
            }
        }
    }

    #[test]
    fn heavy_edges_preferred() {
        // Triangle with one heavy edge (0-1 weight 5 via multi-edges).
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (0, 1), (0, 1), (0, 1), (1, 2), (0, 2)]);
        let wg = WorkGraph::from_graph(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mate = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], &mut rng);
        assert_eq!(mate[0], 1);
        assert_eq!(mate[1], 0);
        assert_eq!(mate[2], UNMATCHED);
    }

    #[test]
    fn weight_cap_blocks_heavy_pairs() {
        let wg = wg_from_edges(2, &[(0, 1)]);
        // Each endpoint has weight 1; cap of 1 forbids any match.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mate = heavy_edge_matching(&wg, &[1, i64::MAX], &mut rng);
        assert_eq!(mate, vec![UNMATCHED, UNMATCHED]);
    }

    #[test]
    fn matched_fraction_counts() {
        assert_eq!(matched_fraction(&[1, 0, UNMATCHED]), 2.0 / 3.0);
        assert_eq!(matched_fraction(&[]), 0.0);
    }

    #[test]
    fn path_graph_matches_most_vertices() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let wg = wg_from_edges(100, &edges);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mate = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], &mut rng);
        assert!(matched_fraction(&mate) > 0.6);
    }
}
