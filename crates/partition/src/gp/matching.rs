//! Heavy-edge matching (HEM) for the coarsening phase — parallel,
//! deterministic, round-based.
//!
//! The classic serial HEM walks vertices in random order and greedily
//! pairs each with its heaviest free neighbour; the walk order makes it
//! inherently sequential. This implementation uses **mutual local-max
//! handshaking** (Manne–Bisseling style) instead: each round, every free
//! vertex points at its best free neighbour under a fixed total preference
//! order, and exactly the mutual pairs (`cand[v] == u && cand[u] == v`)
//! marry. Both phases are pure functions of the previous round's state,
//! evaluated per vertex — so they parallelize as chunked fills whose
//! result is byte-identical for any thread count or chunk shape.
//!
//! **Progress:** the preference key `(edge weight, rank(u))` uses one
//! consistent total order `rank` on vertices, so the pointer graph of any
//! round always contains a 2-cycle while eligible edges remain (follow
//! pointers: weights are non-decreasing, hence equal around a cycle, and
//! the rank-maximal cycle vertex and its favourite must point at each
//! other). Every round therefore matches at least one pair; in practice
//! the salted-hash tie-break matches a constant fraction per round and
//! the loop converges in a handful of rounds (capped by
//! [`MATCH_ROUNDS_MAX`], and exited early when a round matches nothing).
//!
//! Two guards adapt the scheme to scale-free graphs, as before:
//!
//! * a **weight cap** refuses matches whose combined weight could not be
//!   balanced later (hubs stay single rather than forming super-hubs) —
//!   the cap check is pair-symmetric, so it cannot break mutuality;
//! * preference ties break toward the lower-degree neighbour, which
//!   empirically keeps more of the power-law tail mergeable at the next
//!   level; remaining ties fall to a salted hash (the per-level stand-in
//!   for the old random visit order) and finally the vertex id.

use std::cmp::Reverse;

use sf2d_par::{Par, SharedSlice};

use super::tune::{EDGE_GRAIN, MATCH_ROUNDS_MAX, VERTEX_GRAIN};
use super::work::WorkGraph;

/// Sentinel: vertex not matched (maps to itself at contraction).
pub const UNMATCHED: u32 = u32::MAX;

/// The salted total preference order on vertices (see [`rank`]).
type Rank = (Reverse<usize>, u64, u32);

/// Salted total order on vertices for preference tie-breaks: lower degree
/// first, then a salted splitmix hash, then the id. The salt varies per
/// matching call (drawn from the subtree RNG), so levels don't repeat the
/// same tie-break pattern — the determinism-preserving analogue of the
/// old per-level random shuffle.
#[inline]
fn rank(wg: &WorkGraph, u: usize, salt: u64) -> Rank {
    let deg = wg.xadj[u + 1] - wg.xadj[u];
    let mut h = u as u64 ^ salt;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
    (Reverse(deg), h ^ (h >> 31), u as u32)
}

/// Computes a heavy-edge matching. Returns `mate[v]` = matched partner or
/// [`UNMATCHED`]. Matches are symmetric: `mate[mate[v]] == v`.
///
/// `max_vwgt[c]` caps the combined weight of a matched pair per
/// constraint. `salt` seeds the tie-break order; `par` fans the candidate
/// and accept phases across threads (byte-identical for any budget).
pub fn heavy_edge_matching(wg: &WorkGraph, max_vwgt: &[i64], salt: u64, par: &Par) -> Vec<u32> {
    let nv = wg.nv();
    let mut mate = vec![UNMATCHED; nv];
    if nv == 0 {
        return mate;
    }
    let mut cand = vec![UNMATCHED; nv];
    for _round in 0..MATCH_ROUNDS_MAX {
        // Phase 1: every free vertex picks its best free neighbour. Reads
        // only the previous round's `mate`, writes only `cand[v]`.
        {
            let mate_ro: &[u32] = &mate;
            par.fill(&mut cand, EDGE_GRAIN, |v| {
                if mate_ro[v] != UNMATCHED {
                    return UNMATCHED;
                }
                let (nbrs, wgts) = wg.neighbors(v);
                let mut best: Option<(i64, Rank)> = None;
                for (&u, &w) in nbrs.iter().zip(wgts) {
                    let uu = u as usize;
                    if uu == v || mate_ro[uu] != UNMATCHED {
                        continue;
                    }
                    let fits = (0..wg.ncon).all(|c| wg.vw(v, c) + wg.vw(uu, c) <= max_vwgt[c]);
                    if !fits {
                        continue;
                    }
                    let key = (w, rank(wg, uu, salt));
                    if best.as_ref().map(|b| key > *b).unwrap_or(true) {
                        best = Some(key);
                    }
                }
                best.map(|(_, (_, _, u))| u).unwrap_or(UNMATCHED)
            });
        }
        // Phase 2: mutual pairs marry. Each index writes only `mate[v]`
        // (disjoint), reading only the frozen `cand`; the per-chunk match
        // counts merge through a fixed-shape tree fold.
        let accepted = {
            let cand_ro: &[u32] = &cand;
            let out = SharedSlice::new(&mut mate);
            par.reduce(
                nv,
                VERTEX_GRAIN,
                |_, range| {
                    let mut cnt = 0usize;
                    for v in range {
                        let u = cand_ro[v];
                        if u != UNMATCHED && cand_ro[u as usize] == v as u32 {
                            // SAFETY: index v is written by its own chunk only.
                            unsafe { out.write(v, u) };
                            cnt += 1;
                        }
                    }
                    cnt
                },
                |a, b| a + b,
            )
            .unwrap_or(0)
        };
        if accepted == 0 {
            break;
        }
    }
    mate
}

/// Fraction of vertices matched; coarsening stops when this stalls.
pub fn matched_fraction(mate: &[u32]) -> f64 {
    if mate.is_empty() {
        return 0.0;
    }
    let matched = mate.iter().filter(|&&m| m != UNMATCHED).count();
    matched as f64 / mate.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::Graph;

    fn wg_from_edges(n: usize, edges: &[(u32, u32)]) -> WorkGraph {
        WorkGraph::from_graph(&Graph::from_edges(n, edges))
    }

    #[test]
    fn matching_is_symmetric_and_valid() {
        let wg = wg_from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (0, 7)]);
        let mate = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], 1, &Par::seq());
        for v in 0..8usize {
            let m = mate[v];
            if m != UNMATCHED {
                assert_eq!(mate[m as usize], v as u32, "asymmetric at {v}");
                assert_ne!(m, v as u32, "self-match");
                // Matched pairs must be adjacent.
                assert!(wg.neighbors(v).0.contains(&m));
            }
        }
    }

    #[test]
    fn heavy_edges_preferred() {
        // Triangle with one heavy edge (0-1 weight 5 via multi-edges): the
        // heavy edge is mutually preferred in round one whatever the salt.
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (0, 1), (0, 1), (0, 1), (1, 2), (0, 2)]);
        let wg = WorkGraph::from_graph(&g);
        for salt in [0u64, 7, 12345] {
            let mate = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], salt, &Par::seq());
            assert_eq!(mate[0], 1, "salt {salt}");
            assert_eq!(mate[1], 0, "salt {salt}");
            assert_eq!(mate[2], UNMATCHED, "salt {salt}");
        }
    }

    #[test]
    fn weight_cap_blocks_heavy_pairs() {
        let wg = wg_from_edges(2, &[(0, 1)]);
        // Each endpoint has weight 1; cap of 1 forbids any match.
        let mate = heavy_edge_matching(&wg, &[1, i64::MAX], 2, &Par::seq());
        assert_eq!(mate, vec![UNMATCHED, UNMATCHED]);
    }

    #[test]
    fn matched_fraction_counts() {
        assert_eq!(matched_fraction(&[1, 0, UNMATCHED]), 2.0 / 3.0);
        assert_eq!(matched_fraction(&[]), 0.0);
    }

    #[test]
    fn path_graph_matches_most_vertices() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let wg = wg_from_edges(100, &edges);
        let mate = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], 3, &Par::seq());
        assert!(matched_fraction(&mate) > 0.6, "{}", matched_fraction(&mate));
    }

    #[test]
    fn parallel_matching_is_byte_identical() {
        // A denser pseudo-random graph; compare every thread count to the
        // sequential run for several salts.
        // 6000 vertices: above EDGE_GRAIN, so the fills really chunk.
        let mut edges = Vec::new();
        let mut x = 99u64;
        for _ in 0..30_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) % 6000;
            let b = (x >> 13) % 6000;
            if a != b {
                edges.push((a as u32, b as u32));
            }
        }
        let wg = wg_from_edges(6000, &edges);
        for salt in [0u64, 42] {
            let seq = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], salt, &Par::seq());
            for threads in [2usize, 4, 8] {
                let pool = sf2d_par::Pool::new(threads);
                for par in [Par::new(threads, None), Par::new(threads, Some(&pool))] {
                    let got = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], salt, &par);
                    assert_eq!(got, seq, "threads {threads} salt {salt}");
                }
            }
        }
    }

    #[test]
    fn salt_varies_the_tie_breaks() {
        // On a tie-heavy graph (unweighted cycle) different salts should
        // produce different (all valid) matchings — the stand-in for the
        // old random visit order.
        let edges: Vec<(u32, u32)> = (0..64u32).map(|i| (i, (i + 1) % 64)).collect();
        let wg = wg_from_edges(64, &edges);
        let a = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], 1, &Par::seq());
        let b = heavy_edge_matching(&wg, &[i64::MAX, i64::MAX], 2, &Par::seq());
        assert!(matched_fraction(&a) > 0.8);
        assert!(matched_fraction(&b) > 0.8);
        assert_ne!(a, b, "salts should reshuffle tie-breaks");
    }
}
