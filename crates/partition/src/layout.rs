//! The general layout abstraction.
//!
//! [`MatrixDist`] covers every *Cartesian* layout
//! in the paper, but §2.3 also surveys non-Cartesian 2D methods — the
//! fine-grain model and Mondriaan — where each nonzero is assigned
//! independently. [`NonzeroLayout`] is the common interface the distributed
//! matrix and the metrics accept, and [`FineLayout`] the fully general
//! per-nonzero implementation that [`mondriaan`](crate::mondriaan::mondriaan)
//! produces.

use sf2d_graph::{CsrMatrix, Vtx};

use crate::dist::MatrixDist;

/// Anything that assigns vector entries and nonzeros to ranks.
pub trait NonzeroLayout {
    /// Number of ranks.
    fn nprocs(&self) -> usize;
    /// Matrix dimension covered.
    fn n(&self) -> usize;
    /// Owner of vector entry `k` (domain = range distribution).
    fn vector_owner(&self, k: Vtx) -> u32;
    /// Owner of nonzero `a_ij`. Only called for stored entries.
    fn nonzero_owner(&self, i: Vtx, j: Vtx) -> u32;
}

impl NonzeroLayout for MatrixDist {
    fn nprocs(&self) -> usize {
        MatrixDist::nprocs(self)
    }
    fn n(&self) -> usize {
        MatrixDist::n(self)
    }
    fn vector_owner(&self, k: Vtx) -> u32 {
        MatrixDist::vector_owner(self, k)
    }
    fn nonzero_owner(&self, i: Vtx, j: Vtx) -> u32 {
        MatrixDist::nonzero_owner(self, i, j)
    }
}

/// A fully general per-nonzero assignment, tied to one matrix's pattern.
///
/// Owners are stored row-major, parallel to the matrix's CSR entries;
/// lookup is a binary search within the row.
#[derive(Debug, Clone)]
pub struct FineLayout {
    rowptr: Vec<usize>,
    colidx: Vec<Vtx>,
    owner: Vec<u32>,
    vec_owner: Vec<u32>,
    p: usize,
}

impl FineLayout {
    /// Builds from per-nonzero owners (in `a.iter()` order) and per-index
    /// vector owners.
    ///
    /// # Panics
    /// Panics on length mismatches or out-of-range ranks.
    pub fn new(a: &CsrMatrix, owner: Vec<u32>, vec_owner: Vec<u32>, p: usize) -> FineLayout {
        assert_eq!(owner.len(), a.nnz(), "one owner per nonzero");
        assert_eq!(vec_owner.len(), a.nrows(), "one owner per vector entry");
        assert_eq!(a.nrows(), a.ncols(), "square matrices only");
        assert!(
            owner.iter().all(|&r| (r as usize) < p),
            "nonzero owner out of range"
        );
        assert!(
            vec_owner.iter().all(|&r| (r as usize) < p),
            "vector owner out of range"
        );
        FineLayout {
            rowptr: a.rowptr().to_vec(),
            colidx: a.colidx().to_vec(),
            owner,
            vec_owner,
            p,
        }
    }

    /// Owners per nonzero, row-major (parallel to the matrix's entries).
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }
}

impl NonzeroLayout for FineLayout {
    fn nprocs(&self) -> usize {
        self.p
    }
    fn n(&self) -> usize {
        self.rowptr.len() - 1
    }
    fn vector_owner(&self, k: Vtx) -> u32 {
        self.vec_owner[k as usize]
    }
    fn nonzero_owner(&self, i: Vtx, j: Vtx) -> u32 {
        let (lo, hi) = (self.rowptr[i as usize], self.rowptr[i as usize + 1]);
        let pos = self.colidx[lo..hi]
            .binary_search(&j)
            .expect("nonzero_owner queried for a structural zero");
        self.owner[lo + pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::CooMatrix;

    fn small() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(1, 2, 1.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn fine_layout_lookup() {
        let a = small();
        // Entries in CSR order: (0,1), (1,0), (1,2), (2,1).
        let fl = FineLayout::new(&a, vec![0, 1, 2, 3], vec![0, 1, 2], 4);
        assert_eq!(fl.nonzero_owner(0, 1), 0);
        assert_eq!(fl.nonzero_owner(1, 0), 1);
        assert_eq!(fl.nonzero_owner(1, 2), 2);
        assert_eq!(fl.nonzero_owner(2, 1), 3);
        assert_eq!(fl.vector_owner(2), 2);
        assert_eq!(fl.nprocs(), 4);
        assert_eq!(fl.n(), 3);
    }

    #[test]
    fn matrix_dist_implements_trait() {
        fn takes_layout<L: NonzeroLayout>(l: &L) -> usize {
            l.nprocs()
        }
        let d = MatrixDist::block_1d(6, 3);
        assert_eq!(takes_layout(&d), 3);
    }

    #[test]
    #[should_panic(expected = "one owner per nonzero")]
    fn wrong_owner_count_rejected() {
        FineLayout::new(&small(), vec![0, 1], vec![0, 0, 0], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_rejected() {
        FineLayout::new(&small(), vec![0, 1, 2, 9], vec![0, 0, 0], 4);
    }
}
