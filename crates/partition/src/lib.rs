#![warn(missing_docs)]
// Loops that index several parallel arrays at once are clearer as range
// loops than as the zipped-iterator rewrites clippy suggests.
#![allow(clippy::needless_range_loop)]

//! # sf2d-partition
//!
//! Every data layout studied in the SC'13 paper, plus the partitioners that
//! feed them:
//!
//! * [`dist`] — the unified [`MatrixDist`] layout type.
//!   The paper's six layouts collapse onto one mechanism: a 1D part vector
//!   `rpart` (block, random, graph- or hypergraph-partitioned) used either
//!   directly (1D layouts) or pushed through **Algorithm 2**'s `(φ, ψ)`
//!   Cartesian nonzero map (2D layouts). `2D-Block` is Algorithm 2 applied
//!   to a block `rpart`, `2D-Random` to a random one, and `2D-GP/HP` — the
//!   paper's contribution — to a partitioner's output.
//! * [`gp`] — a deterministic parallel multilevel graph partitioner
//!   (heavy-edge matching, greedy graph growing, Fiduccia–Mattheyses
//!   refinement, task-parallel recursive bisection on the shared
//!   `SF2D_THREADS` scoped-thread budget, byte-identical for any thread
//!   count), standing in for ParMETIS, with a multiconstraint mode for
//!   the paper's `GP-MC` experiments.
//! * [`hg`] — a serial multilevel hypergraph partitioner on the column-net
//!   model with the connectivity−1 objective, standing in for Zoltan PHG.
//! * [`metrics`] — the quantities of the paper's Tables 3 and 5: nonzero
//!   and vector imbalance, max messages per process, total communication
//!   volume for the expand and fold phases.

pub mod dist;
pub mod gp;
pub mod hg;
pub mod layout;
pub mod metrics;
pub mod mondriaan;
pub mod spectral;
pub mod types;

pub use dist::{grid_shape, DistMode, MatrixDist};
pub use gp::rb::{GpStats, PhaseNanos};
pub use gp::{
    partition_graph, partition_graph_multiconstraint, partition_graph_multiconstraint_report,
    partition_graph_report, GpConfig, GpReport,
};
pub use hg::{partition_hypergraph_matrix, HgConfig};
pub use layout::{FineLayout, NonzeroLayout};
pub use metrics::{LayoutMetrics, PartitionQuality};
pub use mondriaan::{mondriaan, mondriaan_report, MondriaanConfig, MondriaanPhases};
pub use sf2d_par::{PoolStats, WorkerStats};
pub use spectral::{partition_spectral, SpectralConfig};
pub use types::Partition;
