//! Layout quality metrics — the columns of the paper's Tables 3 and 5.
//!
//! Given a matrix and a [`MatrixDist`](crate::dist::MatrixDist), computes exactly (not modelled):
//!
//! * nonzeros per rank → **nonzero imbalance** (max/avg);
//! * vector entries per rank → **vector imbalance**;
//! * per-rank message counts for the **expand** (send `x_j` to ranks owning
//!   column-`j` nonzeros) and **fold** (send partial `y_i` to the row
//!   owner) phases → **max messages per process**;
//! * per-rank send volumes in doubles → **total communication volume**.
//!
//! These quantities are platform-independent — the paper compares them
//! across its two clusters for exactly that reason — and they are the
//! inputs to `sf2d-sim`'s machine model.

use std::collections::HashSet;

use sf2d_graph::CsrMatrix;

use crate::layout::NonzeroLayout;

/// Exact communication and balance metrics of a layout on a matrix.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LayoutMetrics {
    /// Number of ranks.
    pub p: usize,
    /// Stored nonzeros per rank.
    pub nnz_per_rank: Vec<usize>,
    /// Vector entries per rank.
    pub vec_per_rank: Vec<usize>,
    /// Expand-phase messages sent per rank.
    pub expand_send_msgs: Vec<usize>,
    /// Expand-phase messages received per rank.
    pub expand_recv_msgs: Vec<usize>,
    /// Expand-phase doubles sent per rank.
    pub expand_send_vol: Vec<usize>,
    /// Fold-phase messages sent per rank.
    pub fold_send_msgs: Vec<usize>,
    /// Fold-phase messages received per rank.
    pub fold_recv_msgs: Vec<usize>,
    /// Fold-phase doubles sent per rank.
    pub fold_send_vol: Vec<usize>,
}

impl LayoutMetrics {
    /// Computes all metrics in `O(nnz)` time (plus one transpose).
    pub fn compute<L: NonzeroLayout + ?Sized>(a: &CsrMatrix, dist: &L) -> LayoutMetrics {
        assert_eq!(a.nrows(), a.ncols(), "metrics require a square matrix");
        assert_eq!(
            a.nrows(),
            dist.n(),
            "distribution covers a different dimension"
        );
        let n = a.nrows();
        let p = dist.nprocs();

        let mut nnz_per_rank = vec![0usize; p];
        let mut vec_per_rank = vec![0usize; p];
        for k in 0..n {
            vec_per_rank[dist.vector_owner(k as u32) as usize] += 1;
        }

        // Fold phase: per row, each rank holding nonzeros of that row and
        // different from the row owner sends one partial sum.
        let mut fold_send_vol = vec![0usize; p];
        let mut fold_pairs: HashSet<u64> = HashSet::new();
        let mut stamp = vec![u64::MAX; p];
        for i in 0..n {
            let owner = dist.vector_owner(i as u32);
            let (cols, _) = a.row(i);
            for &j in cols {
                let r = dist.nonzero_owner(i as u32, j) as usize;
                nnz_per_rank[r] += 1;
                if stamp[r] != i as u64 {
                    stamp[r] = i as u64;
                    if r as u32 != owner {
                        fold_send_vol[r] += 1;
                        fold_pairs.insert(r as u64 * p as u64 + owner as u64);
                    }
                }
            }
        }

        // Expand phase: per column, the vector owner sends x_j to each other
        // rank holding a nonzero in that column. Iterate columns via the
        // transpose pattern.
        let at = a.transpose();
        let mut expand_send_vol = vec![0usize; p];
        let mut expand_pairs: HashSet<u64> = HashSet::new();
        stamp.fill(u64::MAX);
        for j in 0..n {
            let owner = dist.vector_owner(j as u32);
            let (rows, _) = at.row(j);
            for &i in rows {
                let r = dist.nonzero_owner(i, j as u32) as usize;
                if stamp[r] != j as u64 {
                    stamp[r] = j as u64;
                    if r as u32 != owner {
                        expand_send_vol[owner as usize] += 1;
                        expand_pairs.insert(owner as u64 * p as u64 + r as u64);
                    }
                }
            }
        }

        let count = |pairs: &HashSet<u64>| -> (Vec<usize>, Vec<usize>) {
            let mut send = vec![0usize; p];
            let mut recv = vec![0usize; p];
            for &key in pairs {
                send[(key / p as u64) as usize] += 1;
                recv[(key % p as u64) as usize] += 1;
            }
            (send, recv)
        };
        let (expand_send_msgs, expand_recv_msgs) = count(&expand_pairs);
        let (fold_send_msgs, fold_recv_msgs) = count(&fold_pairs);

        LayoutMetrics {
            p,
            nnz_per_rank,
            vec_per_rank,
            expand_send_msgs,
            expand_recv_msgs,
            expand_send_vol,
            fold_send_msgs,
            fold_recv_msgs,
            fold_send_vol,
        }
    }

    /// Max/avg imbalance of a per-rank count vector.
    fn imbalance(v: &[usize]) -> f64 {
        let total: usize = v.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / v.len() as f64;
        *v.iter().max().unwrap() as f64 / avg
    }

    /// Nonzero imbalance (Table 3's "Imbal (nz)").
    pub fn nnz_imbalance(&self) -> f64 {
        Self::imbalance(&self.nnz_per_rank)
    }

    /// Vector-entry imbalance (Table 5's "Vector Imbal").
    pub fn vec_imbalance(&self) -> f64 {
        Self::imbalance(&self.vec_per_rank)
    }

    /// Max messages per process per SpMV (expand + fold sends, Table 3's
    /// "Max Msgs").
    pub fn max_msgs(&self) -> usize {
        (0..self.p)
            .map(|r| self.expand_send_msgs[r] + self.fold_send_msgs[r])
            .max()
            .unwrap_or(0)
    }

    /// Total communication volume in doubles per SpMV (Table 3's "Total CV").
    pub fn total_comm_volume(&self) -> usize {
        self.expand_send_vol.iter().sum::<usize>() + self.fold_send_vol.iter().sum::<usize>()
    }
}

/// Achieved quality of a k-way partition, per balance constraint.
///
/// The multilevel partitioner enforces its `ub` allowance **per
/// bisection**; imbalance compounds across recursive-bisection levels, so
/// the final k-way imbalance can silently exceed the paper's 5% tolerance
/// even though every bisection was within its own allowance. The GP entry
/// points therefore measure and report the *achieved* k-way figure here
/// (and to the `sf2d-obs` registry) so callers like `table3` can flag
/// offending layouts instead of trusting the per-bisection knob.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionQuality {
    /// Number of parts.
    pub k: usize,
    /// Achieved max/avg part-weight imbalance per balance constraint
    /// (one entry for `ncon = 1`, two for GP-MC).
    pub imbalance: Vec<f64>,
    /// Weighted edge cut of the partition.
    pub edge_cut: i64,
    /// The tolerance the caller asked for (the k-way allowance, e.g. 1.05).
    pub tolerance: f64,
}

impl PartitionQuality {
    /// Measures the achieved quality of `part` under per-constraint vertex
    /// `weights` (each a full `nv`-length slice).
    pub fn measure(
        part: &crate::types::Partition,
        weights: &[Vec<i64>],
        edge_cut: i64,
        tolerance: f64,
    ) -> PartitionQuality {
        PartitionQuality {
            k: part.k,
            imbalance: weights.iter().map(|w| part.imbalance(w)).collect(),
            edge_cut,
            tolerance,
        }
    }

    /// True when every constraint's achieved imbalance is within the
    /// requested tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.imbalance.iter().all(|&x| x <= self.tolerance + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::MatrixDist;
    use crate::types::Partition;
    use sf2d_graph::CooMatrix;

    /// 4-cycle adjacency on 4 vertices.
    fn cycle4() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            coo.push_sym(u, v, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn one_d_block_on_cycle() {
        let a = cycle4();
        let d = MatrixDist::block_1d(4, 2);
        let m = LayoutMetrics::compute(&a, &d);
        assert_eq!(m.nnz_per_rank, vec![4, 4]);
        assert_eq!(m.vec_per_rank, vec![2, 2]);
        // Expand: rank 0 needs x_2 (row 1 has a_{1,2}) wait—rank 0 owns rows
        // 0,1: needs x_3 (row 0) and x_2 (row 1): both from rank 1 -> one
        // message carrying 2 doubles; symmetric for rank 1.
        assert_eq!(m.expand_send_msgs, vec![1, 1]);
        assert_eq!(m.expand_send_vol, vec![2, 2]);
        // No fold phase for 1D.
        assert_eq!(m.fold_send_msgs, vec![0, 0]);
        assert_eq!(m.total_comm_volume(), 4);
        assert_eq!(m.max_msgs(), 1);
        assert_eq!(m.nnz_imbalance(), 1.0);
    }

    #[test]
    fn single_rank_has_no_comm() {
        let a = cycle4();
        let d = MatrixDist::block_1d(4, 1);
        let m = LayoutMetrics::compute(&a, &d);
        assert_eq!(m.total_comm_volume(), 0);
        assert_eq!(m.max_msgs(), 0);
        assert_eq!(m.nnz_per_rank, vec![8]);
    }

    #[test]
    fn nonzeros_conserved_across_layouts() {
        let a = cycle4();
        for d in [
            MatrixDist::block_1d(4, 2),
            MatrixDist::random_1d(4, 3, 1),
            MatrixDist::block_2d(4, 2, 2),
            MatrixDist::random_2d(4, 2, 2, 1),
        ] {
            let m = LayoutMetrics::compute(&a, &d);
            assert_eq!(m.nnz_per_rank.iter().sum::<usize>(), a.nnz());
            assert_eq!(m.vec_per_rank.iter().sum::<usize>(), 4);
        }
    }

    #[test]
    fn two_d_message_bound_holds() {
        // Dense-ish random symmetric matrix, 2D block on a 2x3 grid: no rank
        // may send more than pr+pc-2 = 3 messages.
        let mut coo = CooMatrix::new(12, 12);
        for i in 0..12u32 {
            for j in 0..12u32 {
                if i != j && (i * 7 + j * 3) % 4 == 0 {
                    coo.push(i, j, 1.0);
                }
            }
        }
        let a = CsrMatrix::from_coo(&coo).plus_transpose().unwrap();
        let d = MatrixDist::block_2d(12, 2, 3);
        let m = LayoutMetrics::compute(&a, &d);
        assert!(
            m.max_msgs() <= d.message_bound(),
            "{} > {}",
            m.max_msgs(),
            d.message_bound()
        );
    }

    #[test]
    fn one_d_gp_expand_volume_equals_lambda_minus_one() {
        // The column-net connectivity-1 equals the 1D expand volume.
        let a = cycle4();
        let part = Partition::new(vec![0, 0, 1, 1], 2);
        let d = MatrixDist::from_partition_1d(&part);
        let m = LayoutMetrics::compute(&a, &d);
        let h = crate::hg::hypergraph::Hypergraph::column_net_model(&a);
        assert_eq!(
            m.expand_send_vol.iter().sum::<usize>() as i64,
            h.connectivity_minus_one(&part.part, 2)
        );
    }

    #[test]
    fn partition_quality_reports_achieved_kway_imbalance() {
        // Three parts with unit weights 2/1/1: imbalance = 2 / (4/3) = 1.5,
        // well past a 1.05 tolerance even though each "bisection" could have
        // looked fine in isolation.
        let part = Partition::new(vec![0, 0, 1, 2], 3);
        let q = PartitionQuality::measure(&part, &[vec![1, 1, 1, 1]], 7, 1.05);
        assert_eq!(q.k, 3);
        assert_eq!(q.edge_cut, 7);
        assert!((q.imbalance[0] - 1.5).abs() < 1e-12);
        assert!(!q.within_tolerance());
        // And the figure matches Partition::imbalance exactly — quality is
        // the achieved k-way number, not the per-bisection allowance.
        assert_eq!(q.imbalance[0], part.imbalance(&[1, 1, 1, 1]));

        let balanced = Partition::new(vec![0, 1, 0, 1], 2);
        let q = PartitionQuality::measure(&balanced, &[vec![1, 1, 1, 1]], 4, 1.05);
        assert!(q.within_tolerance());
    }

    #[test]
    fn partition_quality_multiconstraint() {
        // Constraint 0 balanced, constraint 1 skewed: within_tolerance must
        // consider every constraint.
        let part = Partition::new(vec![0, 0, 1, 1], 2);
        let rows = vec![1i64, 1, 1, 1];
        let nnz = vec![10i64, 10, 1, 1];
        let q = PartitionQuality::measure(&part, &[rows, nnz], 0, 1.05);
        assert!((q.imbalance[0] - 1.0).abs() < 1e-12);
        assert!(q.imbalance[1] > 1.5);
        assert!(!q.within_tolerance());
    }

    #[test]
    fn diagonal_entries_never_communicate() {
        let a = CsrMatrix::identity(8);
        for d in [
            MatrixDist::block_2d(8, 2, 2),
            MatrixDist::random_1d(8, 4, 2),
        ] {
            let m = LayoutMetrics::compute(&a, &d);
            assert_eq!(m.total_comm_volume(), 0);
        }
    }
}
