//! The k-way partition type shared by the graph and hypergraph partitioners.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use sf2d_graph::{Graph, GraphError};

/// A k-way assignment of vertices (matrix rows) to parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `part[v]` is the part of vertex `v`, in `0..k`.
    pub part: Vec<u32>,
    /// Number of parts.
    pub k: usize,
}

impl Partition {
    /// Wraps a part vector, validating the range.
    ///
    /// # Panics
    /// Panics if any entry is `>= k`.
    pub fn new(part: Vec<u32>, k: usize) -> Partition {
        assert!(
            part.iter().all(|&p| (p as usize) < k),
            "part id out of range"
        );
        Partition { part, k }
    }

    /// The all-zeros trivial partition.
    pub fn trivial(n: usize) -> Partition {
        Partition {
            part: vec![0; n],
            k: 1,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.part.len()
    }

    /// True when there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.part.is_empty()
    }

    /// Sum of the given per-vertex weights in each part.
    pub fn part_weights(&self, wgt: &[i64]) -> Vec<i64> {
        assert_eq!(wgt.len(), self.part.len());
        let mut sums = vec![0i64; self.k];
        for (&p, &w) in self.part.iter().zip(wgt) {
            sums[p as usize] += w;
        }
        sums
    }

    /// Load imbalance under the given weights: `max / avg` over parts
    /// (1.0 = perfect). Matches the paper's definition ("maximum number of
    /// nonzeros per process divided by the average", §5.2).
    pub fn imbalance(&self, wgt: &[i64]) -> f64 {
        let sums = self.part_weights(wgt);
        let total: i64 = sums.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.k as f64;
        sums.iter().copied().max().unwrap_or(0) as f64 / avg
    }

    /// Total weight of cut edges (each undirected edge counted once).
    pub fn edge_cut(&self, g: &Graph) -> f64 {
        let mut cut = 0.0;
        for u in 0..g.nv() {
            let (nbrs, wgts) = g.neighbors(u);
            for (&v, &w) in nbrs.iter().zip(wgts) {
                if self.part[u] != self.part[v as usize] {
                    cut += w;
                }
            }
        }
        cut / 2.0
    }

    /// Writes the partition in the METIS convention: one part id per line.
    /// Reusable across analyses, as the paper's pre-partitioning workflow
    /// assumes (§5.1).
    pub fn write<W: Write>(&self, writer: W) -> Result<(), GraphError> {
        let mut w = BufWriter::new(writer);
        for &p in &self.part {
            writeln!(w, "{p}")?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a one-part-id-per-line partition file; `k` is inferred as
    /// `max + 1`.
    pub fn read<R: Read>(reader: R) -> Result<Partition, GraphError> {
        let mut part = Vec::new();
        for (lineno, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let p: u32 = t.parse().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                msg: format!("bad part id: {e}"),
            })?;
            part.push(p);
        }
        let k = part
            .iter()
            .copied()
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(1);
        Ok(Partition { part, k })
    }

    /// 1D communication volume of the partition: for each vertex, the
    /// number of *other* parts its neighbourhood touches (the λ−1 metric of
    /// the column-net hypergraph model). This is exactly the number of
    /// doubles sent in the expand phase of a 1D row distribution.
    pub fn comm_volume(&self, g: &Graph) -> usize {
        let mut vol = 0usize;
        let mut mark = vec![u32::MAX; self.k];
        for u in 0..g.nv() {
            let pu = self.part[u];
            let (nbrs, _) = g.neighbors(u);
            for &v in nbrs {
                let pv = self.part[v as usize];
                if pv != pu && mark[pv as usize] != u as u32 {
                    mark[pv as usize] = u as u32;
                    vol += 1;
                }
            }
        }
        vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // Vertices 0-2 and 3-5 are triangles, joined by edge (2,3).
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn part_weights_and_imbalance() {
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let w = [1i64, 2, 3, 4];
        assert_eq!(p.part_weights(&w), vec![3, 7]);
        assert!((p.imbalance(&w) - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance_is_one() {
        let p = Partition::new(vec![0, 1, 0, 1], 2);
        assert_eq!(p.imbalance(&[1, 1, 1, 1]), 1.0);
    }

    #[test]
    fn edge_cut_counts_cut_edges_once() {
        let g = two_triangles();
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 1.0); // only (2,3) is cut
        let bad = Partition::new(vec![0, 1, 0, 1, 0, 1], 2);
        assert!(bad.edge_cut(&g) > 3.0);
    }

    #[test]
    fn comm_volume_is_boundary_vertex_count_for_bisection() {
        let g = two_triangles();
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        // Vertices 2 and 3 are boundary: each sends its value to one other
        // part -> volume 2.
        assert_eq!(p.comm_volume(&g), 2);
    }

    #[test]
    fn comm_volume_counts_distinct_parts() {
        // Star: center 0 with 3 leaves in 3 different parts.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let p = Partition::new(vec![0, 1, 2, 3], 4);
        // Center sends to 3 parts; each leaf sends to 1 (the center's).
        assert_eq!(p.comm_volume(&g), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_part_rejected() {
        Partition::new(vec![0, 2], 2);
    }

    #[test]
    fn file_roundtrip() {
        let p = Partition::new(vec![0, 3, 1, 3, 2], 4);
        let mut buf = Vec::new();
        p.write(&mut buf).unwrap();
        let back = Partition::read(buf.as_slice()).unwrap();
        assert_eq!(back.part, p.part);
        assert_eq!(back.k, 4);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Partition::read("0\nxyz\n".as_bytes()).is_err());
        // Empty file: trivial single-part partition of zero vertices.
        let empty = Partition::read("".as_bytes()).unwrap();
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.k, 1);
    }
}
