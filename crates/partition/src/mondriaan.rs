//! A Mondriaan-style non-Cartesian 2D partitioner (Vastenhouw & Bisseling
//! \[33\]) — the comparison the paper's §6 leaves as future work.
//!
//! Mondriaan recursively bisects the *nonzero set*: at every node it tries
//! splitting by rows and by columns (each a hypergraph bisection balancing
//! nonzeros, minimizing cut nets = communication volume) and keeps the
//! cheaper direction. The result assigns each nonzero independently, so —
//! unlike the paper's Cartesian method — it has no `O(√p)` bound on
//! messages per process, trading message count for volume. The `ablations`
//! harness binary quantifies that trade against 2D-GP.
//!
//! The vector distribution is chosen greedily afterwards: each entry goes
//! to a rank that owns nonzeros in its row (so the fold for that entry is
//! partly local), ties broken toward the least-loaded rank.

use std::time::Instant;

use sf2d_graph::{CsrMatrix, Vtx};
use sf2d_par::SharedSlice;

use crate::gp::tune::MONDRIAAN_FORK_CUTOFF;
use crate::hg::hypergraph::Hypergraph;
use crate::hg::refine::cut_of;
use crate::hg::{multilevel_bisect, HgConfig};
use crate::layout::FineLayout;

/// Per-phase wall time of one [`mondriaan`] run, in nanoseconds, measured
/// on the orchestrating thread (fork-join subtree time therefore lands in
/// `split` as elapsed time, not CPU time). Timings are diagnostics only —
/// never part of the determinism contract.
#[derive(Debug, Default, Clone, Copy)]
pub struct MondriaanPhases {
    /// Recursive hypergraph bisection of the nonzero set.
    pub split: u64,
    /// Greedy vector-entry assignment.
    pub assign: u64,
}

/// Tuning knobs for the Mondriaan partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MondriaanConfig {
    /// Seed for the underlying hypergraph bisections.
    pub seed: u64,
    /// Hypergraph bisection settings.
    pub hg: HgConfig,
    /// Evaluate both split directions at every node (slower, better). When
    /// false, directions simply alternate (the original paper's cheap
    /// variant).
    pub try_both: bool,
    /// Scoped-thread budget for the fork-join recursion; `0` (the default)
    /// resolves the shared `SF2D_THREADS` environment variable. Subtree
    /// seeds are path-derived (`cfg.seed ^ salt`, children `2s`/`2s+1`),
    /// so any value produces a byte-identical owner vector.
    pub threads: usize,
}

impl Default for MondriaanConfig {
    fn default() -> Self {
        MondriaanConfig {
            seed: 0,
            hg: HgConfig::default(),
            try_both: true,
            threads: 0,
        }
    }
}

/// Partitions the nonzeros of a square matrix into `p` parts.
pub fn mondriaan(a: &CsrMatrix, p: usize, cfg: &MondriaanConfig) -> FineLayout {
    mondriaan_report(a, p, cfg).0
}

/// As [`mondriaan`], also returning per-phase wall times (for the
/// benchmark harness's speedup attribution).
pub fn mondriaan_report(
    a: &CsrMatrix,
    p: usize,
    cfg: &MondriaanConfig,
) -> (FineLayout, MondriaanPhases) {
    assert!(p >= 1);
    assert_eq!(a.nrows(), a.ncols(), "square matrices only");
    let threads = sf2d_par::resolve_threads(cfg.threads);
    let nnz = a.nnz();
    // Row index per stored nonzero (columns already live in the CSR).
    let mut rows = Vec::with_capacity(nnz);
    for i in 0..a.nrows() {
        rows.extend(std::iter::repeat_n(i as Vtx, a.row_nnz(i)));
    }
    let cols = a.colidx();

    let mut phases = MondriaanPhases::default();
    let mut owner = vec![0u32; nnz];
    if p > 1 {
        let all: Vec<u32> = (0..nnz as u32).collect();
        let out = SharedSlice::new(&mut owner);
        let t = Instant::now();
        let bisections = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            "mondriaan:recursive-bisection",
            rec(&rows, cols, all, p, 0, cfg, &out, 1, true, threads)
        );
        phases.split = t.elapsed().as_nanos() as u64;
        sf2d_obs::counter!("partition.mondriaan.bisections", 0, bisections);
    }

    let t = Instant::now();
    let vec_owner = sf2d_obs::trace_span!(
        sf2d_obs::PhaseKind::Partition,
        "mondriaan:vector-assign",
        assign_vector(a, &owner, p)
    );
    phases.assign = t.elapsed().as_nanos() as u64;
    (FineLayout::new(a, owner, vec_owner, p), phases)
}

/// Recursive bisection of a nonzero subset (`idxs` are flat CSR positions).
/// Sibling calls receive disjoint `idxs` and hence write disjoint `owner`
/// entries — the [`SharedSlice`] contract that lets them run as fork-join
/// tasks. Returns the number of bisections performed in this subtree.
#[allow(clippy::too_many_arguments)]
fn rec(
    rows: &[Vtx],
    cols: &[Vtx],
    idxs: Vec<u32>,
    k: usize,
    offset: u32,
    cfg: &MondriaanConfig,
    owner: &SharedSlice<u32>,
    salt: u64,
    row_dir_hint: bool,
    threads: usize,
) -> u64 {
    if k == 1 || idxs.len() <= 1 {
        for &i in &idxs {
            // SAFETY: sibling subtrees hold disjoint `idxs` sets.
            unsafe { owner.write(i as usize, offset) };
        }
        return 0;
    }
    let k1 = k / 2;
    let k2 = k - k1;
    let frac = k1 as f64 / k as f64;
    let hcfg = HgConfig {
        seed: cfg.seed ^ salt,
        ..cfg.hg
    };

    // A split along `dim` groups nonzeros by their row (or column) id and
    // bisects those groups; the other dimension's ids become the nets.
    let split = |by_rows: bool| -> (Vec<bool>, i64) {
        let (key, net): (&[Vtx], &[Vtx]) = if by_rows { (rows, cols) } else { (cols, rows) };
        let (h, key_of_group, group_of_key) = build_split_hypergraph(key, net, &idxs);
        if h.nv() < 2 {
            // Degenerate: everything in one row/column; cannot split here.
            return (vec![false; idxs.len()], i64::MAX);
        }
        let side = multilevel_bisect(&h, frac, &hcfg, salt);
        let cut = cut_of(&h, &side);
        let _ = key_of_group;
        let nz_side: Vec<bool> = idxs
            .iter()
            .map(|&i| side[group_of_key[key[i as usize] as usize] as usize] == 1)
            .collect();
        (nz_side, cut)
    };

    let (nz_side, _dir_used_rows) = if cfg.try_both {
        let (row_side, row_cut) = split(true);
        let (col_side, col_cut) = split(false);
        if row_cut <= col_cut {
            (row_side, true)
        } else {
            (col_side, false)
        }
    } else {
        let (side, cut) = split(row_dir_hint);
        if cut == i64::MAX {
            // Fall back to the other direction on degenerate subsets.
            let (other, _) = split(!row_dir_hint);
            (other, !row_dir_hint)
        } else {
            (side, row_dir_hint)
        }
    };

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (&i, &s) in idxs.iter().zip(&nz_side) {
        if s {
            right.push(i);
        } else {
            left.push(i);
        }
    }
    // Guard against empty sides (tiny/degenerate subsets): split evenly.
    if left.is_empty() || right.is_empty() {
        let mid = idxs.len() * k1 / k;
        left = idxs[..mid].to_vec();
        right = idxs[mid..].to_vec();
    }
    // Raised cutoff (see `gp::tune`): each fork costs a scoped-thread
    // spawn, only worth it for genuinely large sibling nonzero sets.
    let fork =
        threads >= 2 && k1 > 1 && k2 > 1 && left.len().min(right.len()) >= MONDRIAAN_FORK_CUTOFF;
    let (t0, t1) = if fork {
        sf2d_par::split_threads(threads, left.len(), right.len())
    } else {
        (threads, threads)
    };
    let (b0, b1) = sf2d_par::join(
        fork,
        || {
            rec(
                rows,
                cols,
                left,
                k1,
                offset,
                cfg,
                owner,
                2 * salt,
                !_dir_used_rows,
                t0,
            )
        },
        || {
            rec(
                rows,
                cols,
                right,
                k2,
                offset + k1 as u32,
                cfg,
                owner,
                2 * salt + 1,
                !_dir_used_rows,
                t1,
            )
        },
    );
    1 + b0 + b1
}

/// Builds the hypergraph for one split direction: vertices = distinct `key`
/// ids among the subset (weight = nonzeros carried), nets = distinct `net`
/// ids with the key-groups they touch as pins.
///
/// Returns `(hypergraph, group -> key id, key id -> group)`.
type SplitHypergraph = (Hypergraph, Vec<Vtx>, Vec<u32>);

fn build_split_hypergraph(key: &[Vtx], net: &[Vtx], idxs: &[u32]) -> SplitHypergraph {
    // Compact the key space.
    let max_key = idxs.iter().map(|&i| key[i as usize]).max().unwrap_or(0) as usize;
    let mut group_of_key = vec![u32::MAX; max_key + 1];
    let mut key_of_group: Vec<Vtx> = Vec::new();
    let mut vwgt: Vec<i64> = Vec::new();
    for &i in idxs {
        let k = key[i as usize] as usize;
        if group_of_key[k] == u32::MAX {
            group_of_key[k] = key_of_group.len() as u32;
            key_of_group.push(k as Vtx);
            vwgt.push(0);
        }
        vwgt[group_of_key[k] as usize] += 1;
    }

    // Nets: group (net id -> pins) via sort over (net, group) pairs.
    let mut pairs: Vec<(Vtx, u32)> = idxs
        .iter()
        .map(|&i| (net[i as usize], group_of_key[key[i as usize] as usize]))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut net_pins: Vec<Vec<u32>> = Vec::new();
    let mut cur_net = None;
    for (n, g) in pairs {
        if cur_net != Some(n) {
            cur_net = Some(n);
            net_pins.push(Vec::new());
        }
        net_pins.last_mut().unwrap().push(g);
    }

    let h = Hypergraph::from_pins(key_of_group.len(), &net_pins, vwgt);
    (h, key_of_group, group_of_key)
}

/// Greedy vector assignment: entry `k` goes to the candidate rank owning
/// the most nonzeros in row `k`, ties and empty rows resolved toward the
/// least-loaded rank.
fn assign_vector(a: &CsrMatrix, owner: &[u32], p: usize) -> Vec<u32> {
    let n = a.nrows();
    let mut load = vec![0usize; p];
    let mut vec_owner = vec![0u32; n];
    let mut counts: Vec<(u32, u32)> = Vec::new(); // (rank, count) scratch
    for i in 0..n {
        let (lo, hi) = (a.rowptr()[i], a.rowptr()[i + 1]);
        counts.clear();
        for &r in &owner[lo..hi] {
            match counts.iter_mut().find(|(rank, _)| *rank == r) {
                Some((_, c)) => *c += 1,
                None => counts.push((r, 1)),
            }
        }
        let chosen = counts
            .iter()
            .max_by_key(|&&(rank, c)| (c, std::cmp::Reverse(load[rank as usize])))
            .map(|&(rank, _)| rank)
            .unwrap_or_else(|| {
                // Empty row: least-loaded rank.
                (0..p as u32).min_by_key(|&r| load[r as usize]).unwrap()
            });
        vec_owner[i] = chosen;
        load[chosen as usize] += 1;
    }
    vec_owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NonzeroLayout;
    use crate::metrics::LayoutMetrics;
    use crate::MatrixDist;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};

    #[test]
    fn covers_every_nonzero_in_range() {
        let a = rmat(&RmatConfig::graph500(7), 3);
        let fl = mondriaan(&a, 8, &MondriaanConfig::default());
        assert_eq!(fl.owners().len(), a.nnz());
        assert!(fl.owners().iter().all(|&r| r < 8));
        // Every rank used.
        let mut used = vec![false; 8];
        for &r in fl.owners() {
            used[r as usize] = true;
        }
        assert!(used.iter().all(|&u| u), "{used:?}");
    }

    #[test]
    fn balances_nonzeros() {
        let a = rmat(&RmatConfig::graph500(8), 5);
        let fl = mondriaan(&a, 8, &MondriaanConfig::default());
        let m = LayoutMetrics::compute(&a, &fl);
        assert!(m.nnz_imbalance() < 1.5, "imbalance {}", m.nnz_imbalance());
    }

    #[test]
    fn volume_competitive_with_2d_block_on_structure() {
        // On a mesh, Mondriaan should move far fewer doubles than 2D block.
        let a = grid_2d(24, 24);
        let fl = mondriaan(&a, 16, &MondriaanConfig::default());
        let m_mon = LayoutMetrics::compute(&a, &fl);
        let m_blk = LayoutMetrics::compute(&a, &MatrixDist::block_2d(a.nrows(), 4, 4));
        assert!(
            m_mon.total_comm_volume() < m_blk.total_comm_volume(),
            "mondriaan {} vs 2d-block {}",
            m_mon.total_comm_volume(),
            m_blk.total_comm_volume()
        );
    }

    #[test]
    fn deterministic() {
        let a = rmat(&RmatConfig::graph500(6), 9);
        let f1 = mondriaan(&a, 4, &MondriaanConfig::default());
        let f2 = mondriaan(&a, 4, &MondriaanConfig::default());
        assert_eq!(f1.owners(), f2.owners());
    }

    #[test]
    fn thread_count_independent() {
        // Scale 11 ≈ 60k nonzeros: the first split's sides (~30k) cross
        // MONDRIAAN_FORK_CUTOFF, so the forked path really runs.
        let a = rmat(&RmatConfig::graph500(11), 4);
        let mut cfg = MondriaanConfig {
            threads: 1,
            ..Default::default()
        };
        let seq = mondriaan(&a, 8, &cfg);
        for threads in [2, 4, 8] {
            cfg.threads = threads;
            let par = mondriaan(&a, 8, &cfg);
            assert_eq!(par.owners(), seq.owners(), "threads {threads}");
        }
    }

    #[test]
    fn single_part_trivial() {
        let a = grid_2d(4, 4);
        let fl = mondriaan(&a, 1, &MondriaanConfig::default());
        assert!(fl.owners().iter().all(|&r| r == 0));
        assert_eq!(fl.nprocs(), 1);
    }

    #[test]
    fn alternate_direction_variant_works() {
        let a = rmat(&RmatConfig::graph500(7), 2);
        let cfg = MondriaanConfig {
            try_both: false,
            ..Default::default()
        };
        let fl = mondriaan(&a, 8, &cfg);
        let m = LayoutMetrics::compute(&a, &fl);
        assert!(m.nnz_imbalance() < 2.0);
    }
}
