//! Layout diagnosis: who is the straggler, and why.
//!
//! The BSP model makes every phase as slow as its slowest rank, so the
//! interesting question for a layout is *which rank bounds each phase and
//! what it is paying for* (messages? bytes? flops?). This module fills a
//! per-rank [`MetricsRegistry`] straight off the compiled schedules'
//! frozen cost vectors — the exact per-rank charges
//! [`spmv`](crate::spmv::spmv) puts on the ledger, no ad-hoc recounting —
//! and diagnoses each phase from those counters. The `sf2d diagnose` CLI
//! subcommand prints it.

use sf2d_obs::{BoundTerm, MetricsRegistry, RankSample};
use sf2d_sim::cost::{Phase, PhaseCost};
use sf2d_sim::Machine;

use crate::distmat::DistCsrMatrix;

/// What dominates a rank's phase time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Per-message latency (α · msgs).
    Latency,
    /// Bandwidth (β · bytes).
    Bandwidth,
    /// Compute (γ · flops).
    Compute,
}

impl Bottleneck {
    fn of(machine: &Machine, c: &PhaseCost) -> Bottleneck {
        // One classification rule for the whole workspace: delegate to the
        // trace analyzer's term attribution.
        let s = RankSample {
            rank: 0,
            time: 0.0,
            msgs: c.msgs,
            bytes: c.bytes,
            flops: c.flops,
        };
        match BoundTerm::of(&machine.cost_params(), &s) {
            BoundTerm::Latency => Bottleneck::Latency,
            BoundTerm::Bandwidth => Bottleneck::Bandwidth,
            BoundTerm::Compute => Bottleneck::Compute,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::Latency => "latency",
            Bottleneck::Bandwidth => "bandwidth",
            Bottleneck::Compute => "compute",
        }
    }
}

/// Counter-name slug of a phase, as used by [`spmv_metrics`] keys
/// (`spmv.<slug>.msgs` / `.bytes` / `.flops`).
pub fn phase_slug(phase: Phase) -> &'static str {
    match phase {
        Phase::Expand => "expand",
        Phase::LocalCompute => "local",
        Phase::Multiply => "multiply",
        Phase::Fold => "fold",
        Phase::Merge => "merge",
        Phase::Sum => "sum",
        Phase::VectorOp => "vecop",
        Phase::Collective => "collective",
        Phase::Retransmit => "retransmit",
        Phase::Recovery => "recovery",
        Phase::Broadcast => "broadcast",
    }
}

/// The per-phase per-rank cost table of one SpMV, read straight off the
/// compiled schedules' frozen cost vectors — i.e. exactly what
/// [`spmv`](crate::spmv::spmv) charges the ledger per superstep.
pub fn phase_cost_table(a: &DistCsrMatrix) -> [(Phase, &[PhaseCost]); 4] {
    let c = &a.compiled;
    [
        (Phase::Expand, c.expand_costs.as_slice()),
        (Phase::LocalCompute, c.compute_costs.as_slice()),
        (Phase::Fold, c.fold_costs.as_slice()),
        (Phase::Sum, c.sum_costs.as_slice()),
    ]
}

/// Fills a [`MetricsRegistry`] describing one SpMV on this matrix:
///
/// * counters `spmv.<phase>.msgs|bytes|flops` per rank (from the frozen
///   compiled cost vectors);
/// * histogram `spmv.msg_bytes` — size of every individual expand/fold
///   message (log2 buckets);
/// * histogram `spmv.rank_flops` — per-rank local-compute flops, whose
///   spread is the flop-imbalance picture.
pub fn spmv_metrics(a: &DistCsrMatrix) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for (phase, costs) in phase_cost_table(a) {
        let slug = phase_slug(phase);
        for (r, c) in costs.iter().enumerate() {
            reg.add(&format!("spmv.{slug}.msgs"), r as u32, c.msgs);
            reg.add(&format!("spmv.{slug}.bytes"), r as u32, c.bytes);
            reg.add(&format!("spmv.{slug}.flops"), r as u32, c.flops);
        }
    }
    for plan in [&a.import, &a.export] {
        for out in &plan.sends {
            for (_dst, gids) in out {
                reg.observe("spmv.msg_bytes", 8 * gids.len() as u64);
            }
        }
    }
    for c in &a.compiled.compute_costs {
        reg.observe("spmv.rank_flops", c.flops);
    }
    reg
}

/// One phase of the SpMV, analyzed.
#[derive(Debug, Clone)]
pub struct PhaseDiagnosis {
    /// Which phase.
    pub phase: Phase,
    /// Seconds the phase takes (= the straggler's time).
    pub time: f64,
    /// Mean rank time — `time / mean` is the phase's own imbalance.
    pub mean_time: f64,
    /// The straggler rank.
    pub straggler: usize,
    /// The straggler's cost detail.
    pub straggler_cost: PhaseCost,
    /// What the straggler is paying for.
    pub bottleneck: Bottleneck,
}

/// Computes the per-phase diagnosis of one SpMV under `machine`, by way
/// of the matrix's [`spmv_metrics`] registry.
pub fn diagnose_spmv(a: &DistCsrMatrix, machine: &Machine) -> Vec<PhaseDiagnosis> {
    diagnose_from_metrics(&spmv_metrics(a), a.nprocs(), machine)
}

/// Diagnoses the four SpMV phases from a registry shaped like
/// [`spmv_metrics`] output — per-rank `spmv.<phase>.msgs|bytes|flops`
/// counters — without touching the matrix again.
pub fn diagnose_from_metrics(
    reg: &MetricsRegistry,
    p: usize,
    machine: &Machine,
) -> Vec<PhaseDiagnosis> {
    assert!(p >= 1, "at least one rank");
    [Phase::Expand, Phase::LocalCompute, Phase::Fold, Phase::Sum]
        .into_iter()
        .map(|phase| {
            let slug = phase_slug(phase);
            let costs: Vec<PhaseCost> = (0..p as u32)
                .map(|r| PhaseCost {
                    msgs: reg.counter(&format!("spmv.{slug}.msgs"), r),
                    bytes: reg.counter(&format!("spmv.{slug}.bytes"), r),
                    flops: reg.counter(&format!("spmv.{slug}.flops"), r),
                })
                .collect();
            let times: Vec<f64> = costs.iter().map(|c| machine.phase_time(c)).collect();
            let (straggler, &time) = times
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one rank");
            let mean_time = times.iter().sum::<f64>() / times.len() as f64;
            PhaseDiagnosis {
                phase,
                time,
                mean_time,
                straggler,
                straggler_cost: costs[straggler],
                bottleneck: Bottleneck::of(machine, &costs[straggler]),
            }
        })
        .collect()
}

/// Renders the diagnosis as an aligned text table.
pub fn render(diag: &[PhaseDiagnosis]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let total: f64 = diag.iter().map(|d| d.time).sum();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>8} {:>10} {:>10} {:>12} {:>12}  bound by",
        "phase", "time (s)", "share", "straggler", "imbal", "msgs", "bytes"
    );
    for d in diag {
        let _ = writeln!(
            out,
            "{:<14} {:>12.3e} {:>7.1}% {:>10} {:>10.2} {:>12} {:>12}  {}",
            format!("{:?}", d.phase),
            d.time,
            if total > 0.0 {
                100.0 * d.time / total
            } else {
                0.0
            },
            d.straggler,
            if d.mean_time > 0.0 {
                d.time / d.mean_time
            } else {
                1.0
            },
            d.straggler_cost.msgs,
            d.straggler_cost.bytes,
            d.bottleneck.label(),
        );
    }
    let _ = writeln!(out, "total per SpMV: {total:.3e} s");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};

    fn demo() -> DistCsrMatrix {
        let mut coo = sf2d_graph::CooMatrix::new(32, 32);
        for i in 0..32u32 {
            coo.push_sym(i, (i + 1) % 32, 1.0);
            coo.push_sym(0, i.max(1), 1.0); // hub at 0
        }
        let a = sf2d_graph::CsrMatrix::from_coo(&coo);
        DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(32, 2, 2))
    }

    #[test]
    fn diagnosis_matches_the_ledger() {
        // The sum of phase times must equal what an actual SpMV charges.
        let dm = demo();
        let machine = Machine::cab();
        let diag = diagnose_spmv(&dm, &machine);
        let predicted: f64 = diag.iter().map(|d| d.time).sum();

        let x = crate::DistVector::random(std::sync::Arc::clone(&dm.vmap), 1);
        let mut y = crate::DistVector::zeros(std::sync::Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(machine);
        crate::spmv(&dm, &x, &mut y, &mut ledger);
        assert!(
            (predicted - ledger.total).abs() < 1e-15 + 1e-9 * ledger.total,
            "{predicted} vs {ledger_total}",
            ledger_total = ledger.total
        );
    }

    #[test]
    fn phases_present_and_bottlenecks_sane() {
        let dm = demo();
        let diag = diagnose_spmv(&dm, &Machine::cab());
        assert_eq!(diag.len(), 4);
        assert_eq!(diag[0].phase, Phase::Expand);
        // At this tiny scale latency dominates communication phases.
        assert_eq!(diag[0].bottleneck, Bottleneck::Latency);
        // Local compute is bound by flops by construction.
        assert_eq!(diag[1].bottleneck, Bottleneck::Compute);
        assert!(diag[0].straggler < 4);
    }

    #[test]
    fn render_is_readable() {
        let dm = demo();
        let diag = diagnose_spmv(&dm, &Machine::cab());
        let text = render(&diag);
        assert!(text.contains("Expand"));
        assert!(text.contains("total per SpMV"));
        assert!(text.contains("latency") || text.contains("bandwidth"));
    }

    #[test]
    fn metrics_registry_agrees_with_the_plans() {
        // The registry's message/byte counters come from the compiled cost
        // vectors; the plans' own accounting must agree with them — the
        // counts are the same numbers, recorded once.
        let dm = demo();
        let reg = spmv_metrics(&dm);
        let send_msgs: u64 = dm.import.sends.iter().map(|s| s.len() as u64).sum();
        let recv_msgs: u64 = dm.import.recvs.iter().map(|r| r.len() as u64).sum();
        // Expand counters charge both endpoints of each message.
        assert_eq!(reg.sum("spmv.expand.msgs"), send_msgs + recv_msgs);
        let expand_bytes: u64 = 16 * dm.import.total_volume() as u64; // 8 B × 2 endpoints
        assert_eq!(reg.sum("spmv.expand.bytes"), expand_bytes);
        // The message-size histogram saw every planned message once.
        let planned_msgs: usize = [&dm.import, &dm.export]
            .iter()
            .flat_map(|p| p.sends.iter())
            .map(|s| s.len())
            .sum();
        let h = reg.histogram("spmv.msg_bytes").unwrap();
        assert_eq!(h.count as usize, planned_msgs);
        assert_eq!(
            h.sum as usize,
            8 * (dm.import.total_volume() + dm.export.total_volume())
        );
        // Flop-imbalance histogram: one observation per rank.
        assert_eq!(reg.histogram("spmv.rank_flops").unwrap().count, 4);
    }

    #[test]
    fn diagnosis_from_metrics_matches_direct_diagnosis() {
        let dm = demo();
        let machine = Machine::cab();
        let direct = diagnose_spmv(&dm, &machine);
        let via_reg = diagnose_from_metrics(&spmv_metrics(&dm), dm.nprocs(), &machine);
        assert_eq!(direct.len(), via_reg.len());
        for (d, v) in direct.iter().zip(&via_reg) {
            assert_eq!(d.phase, v.phase);
            assert_eq!(d.time.to_bits(), v.time.to_bits());
            assert_eq!(d.straggler, v.straggler);
            assert_eq!(d.straggler_cost, v.straggler_cost);
            assert_eq!(d.bottleneck, v.bottleneck);
        }
    }

    #[test]
    fn max_rank_counter_names_the_straggler() {
        // The registry's bottleneck reduction and the diagnosis agree on
        // what bounds the expand phase: on a latency-only machine the
        // straggler pays exactly the max per-rank message count (the two
        // reductions may name different ranks on exact ties).
        let dm = demo();
        let m = Machine {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            name: "msgs-only",
        };
        let reg = spmv_metrics(&dm);
        let diag = diagnose_from_metrics(&reg, dm.nprocs(), &m);
        let (_, max_msgs) = reg.max("spmv.expand.msgs").unwrap();
        assert_eq!(diag[0].straggler_cost.msgs, max_msgs);
        assert_eq!(diag[0].time, max_msgs as f64);
    }
}

/// Predicted SpMV time under a node-aware (hierarchical) machine: each
/// expand/fold message is priced by whether its endpoints share a node,
/// compute by γ — the robustness check for the flat α-β-γ conclusions.
pub fn spmv_time_hierarchical(a: &DistCsrMatrix, nm: &sf2d_sim::hierarchy::NodeModel) -> f64 {
    let p = a.nprocs();
    let plan_traffic = |plan: &crate::plan::CommPlan, r: usize| {
        let sends: Vec<(usize, usize)> = plan.sends[r]
            .iter()
            .map(|(d, g)| (*d as usize, g.len()))
            .collect();
        let recvs: Vec<(usize, usize)> = plan.recvs[r]
            .iter()
            .map(|(s, g)| (*s as usize, g.len()))
            .collect();
        (sends, recvs)
    };
    let mut total = 0.0;
    // Expand and fold: BSP max over ranks of the node-aware comm time.
    for plan in [&a.import, &a.export] {
        let t = (0..p)
            .map(|r| {
                let (s, rx) = plan_traffic(plan, r);
                nm.comm_time(r, &s, &rx)
            })
            .fold(0.0f64, f64::max);
        total += t;
    }
    // Local compute and sum.
    let compute = a
        .blocks
        .iter()
        .map(|b| nm.gamma * 2.0 * b.local.nnz() as f64)
        .fold(0.0f64, f64::max);
    total + compute
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::hierarchy::NodeModel;
    use sf2d_sim::Machine;

    #[test]
    fn flat_node_model_matches_flat_machine_comm() {
        // With node_size = 1 and matching parameters, the hierarchical
        // prediction equals the ledger's Expand + Fold + LocalCompute.
        let mut coo = sf2d_graph::CooMatrix::new(64, 64);
        for i in 0..64u32 {
            coo.push_sym(i, (i + 7) % 64, 1.0);
            coo.push_sym(i, (i + 13) % 64, 1.0);
        }
        let a = sf2d_graph::CsrMatrix::from_coo(&coo);
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(64, 4, 4));
        let m = Machine::cab();
        let nm = NodeModel::flat(m.alpha, m.beta, m.gamma);
        let hier = spmv_time_hierarchical(&dm, &nm);
        let diag = diagnose_spmv(&dm, &m);
        let flat: f64 = diag
            .iter()
            .filter(|d| {
                matches!(
                    d.phase,
                    sf2d_sim::Phase::Expand | sf2d_sim::Phase::Fold | sf2d_sim::Phase::LocalCompute
                )
            })
            .map(|d| d.time)
            .sum();
        assert!(
            (hier - flat).abs() < 1e-12 * flat.max(1e-30),
            "{hier} vs {flat}"
        );
    }

    #[test]
    fn intra_node_locality_reduces_cost() {
        // A layout whose communication stays within 16-rank nodes should be
        // cheaper under cab16 than the flat network price.
        let mut coo = sf2d_graph::CooMatrix::new(256, 256);
        for i in 0..256u32 {
            coo.push_sym(i, (i + 1) % 256, 1.0);
        }
        let a = sf2d_graph::CsrMatrix::from_coo(&coo);
        // Block layout on a ring: neighbours are in adjacent ranks, mostly
        // same node.
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_1d(256, 64));
        let nm = NodeModel::cab16();
        let flat = NodeModel::flat(nm.alpha_remote, nm.beta_remote, nm.gamma);
        assert!(spmv_time_hierarchical(&dm, &nm) < spmv_time_hierarchical(&dm, &flat));
    }
}
