//! Layout diagnosis: who is the straggler, and why.
//!
//! The BSP model makes every phase as slow as its slowest rank, so the
//! interesting question for a layout is *which rank bounds each phase and
//! what it is paying for* (messages? bytes? flops?). This module computes
//! the per-phase breakdown without running an SpMV — the same per-rank
//! costs [`spmv`](crate::spmv::spmv) would charge — and names the
//! bottleneck term. The `sf2d diagnose` CLI subcommand prints it.

use sf2d_sim::cost::{Phase, PhaseCost};
use sf2d_sim::Machine;

use crate::distmat::DistCsrMatrix;

/// What dominates a rank's phase time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Per-message latency (α · msgs).
    Latency,
    /// Bandwidth (β · bytes).
    Bandwidth,
    /// Compute (γ · flops).
    Compute,
}

impl Bottleneck {
    fn of(machine: &Machine, c: &PhaseCost) -> Bottleneck {
        let a = machine.alpha * c.msgs as f64;
        let b = machine.beta * c.bytes as f64;
        let g = machine.gamma * c.flops as f64;
        if a >= b && a >= g {
            Bottleneck::Latency
        } else if b >= g {
            Bottleneck::Bandwidth
        } else {
            Bottleneck::Compute
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::Latency => "latency",
            Bottleneck::Bandwidth => "bandwidth",
            Bottleneck::Compute => "compute",
        }
    }
}

/// One phase of the SpMV, analyzed.
#[derive(Debug, Clone)]
pub struct PhaseDiagnosis {
    /// Which phase.
    pub phase: Phase,
    /// Seconds the phase takes (= the straggler's time).
    pub time: f64,
    /// Mean rank time — `time / mean` is the phase's own imbalance.
    pub mean_time: f64,
    /// The straggler rank.
    pub straggler: usize,
    /// The straggler's cost detail.
    pub straggler_cost: PhaseCost,
    /// What the straggler is paying for.
    pub bottleneck: Bottleneck,
}

/// Computes the per-phase diagnosis of one SpMV under `machine`.
pub fn diagnose_spmv(a: &DistCsrMatrix, machine: &Machine) -> Vec<PhaseDiagnosis> {
    let p = a.nprocs();
    let mut phases: Vec<(Phase, Vec<PhaseCost>)> = Vec::with_capacity(4);

    phases.push((Phase::Expand, a.import.phase_costs()));
    let compute: Vec<PhaseCost> = a
        .blocks
        .iter()
        .map(|b| PhaseCost::compute(2 * b.local.nnz() as u64))
        .collect();
    phases.push((Phase::LocalCompute, compute));
    phases.push((Phase::Fold, a.export.phase_costs()));
    let mut sum = vec![PhaseCost::default(); p];
    for (r, s) in sum.iter_mut().enumerate() {
        let local_rows = a.blocks[r]
            .rowmap
            .iter()
            .filter(|&&g| a.vmap.owner(g) == r as u32)
            .count() as u64;
        let received: u64 = a.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
        s.flops = local_rows + received;
    }
    phases.push((Phase::Sum, sum));

    phases
        .into_iter()
        .map(|(phase, costs)| {
            let times: Vec<f64> = costs.iter().map(|c| machine.phase_time(c)).collect();
            let (straggler, &time) = times
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one rank");
            let mean_time = times.iter().sum::<f64>() / times.len() as f64;
            PhaseDiagnosis {
                phase,
                time,
                mean_time,
                straggler,
                straggler_cost: costs[straggler],
                bottleneck: Bottleneck::of(machine, &costs[straggler]),
            }
        })
        .collect()
}

/// Renders the diagnosis as an aligned text table.
pub fn render(diag: &[PhaseDiagnosis]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let total: f64 = diag.iter().map(|d| d.time).sum();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>8} {:>10} {:>10} {:>12} {:>12}  bound by",
        "phase", "time (s)", "share", "straggler", "imbal", "msgs", "bytes"
    );
    for d in diag {
        let _ = writeln!(
            out,
            "{:<14} {:>12.3e} {:>7.1}% {:>10} {:>10.2} {:>12} {:>12}  {}",
            format!("{:?}", d.phase),
            d.time,
            if total > 0.0 {
                100.0 * d.time / total
            } else {
                0.0
            },
            d.straggler,
            if d.mean_time > 0.0 {
                d.time / d.mean_time
            } else {
                1.0
            },
            d.straggler_cost.msgs,
            d.straggler_cost.bytes,
            d.bottleneck.label(),
        );
    }
    let _ = writeln!(out, "total per SpMV: {total:.3e} s");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};

    fn demo() -> DistCsrMatrix {
        let mut coo = sf2d_graph::CooMatrix::new(32, 32);
        for i in 0..32u32 {
            coo.push_sym(i, (i + 1) % 32, 1.0);
            coo.push_sym(0, i.max(1), 1.0); // hub at 0
        }
        let a = sf2d_graph::CsrMatrix::from_coo(&coo);
        DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(32, 2, 2))
    }

    #[test]
    fn diagnosis_matches_the_ledger() {
        // The sum of phase times must equal what an actual SpMV charges.
        let dm = demo();
        let machine = Machine::cab();
        let diag = diagnose_spmv(&dm, &machine);
        let predicted: f64 = diag.iter().map(|d| d.time).sum();

        let x = crate::DistVector::random(std::sync::Arc::clone(&dm.vmap), 1);
        let mut y = crate::DistVector::zeros(std::sync::Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(machine);
        crate::spmv(&dm, &x, &mut y, &mut ledger);
        assert!(
            (predicted - ledger.total).abs() < 1e-15 + 1e-9 * ledger.total,
            "{predicted} vs {ledger_total}",
            ledger_total = ledger.total
        );
    }

    #[test]
    fn phases_present_and_bottlenecks_sane() {
        let dm = demo();
        let diag = diagnose_spmv(&dm, &Machine::cab());
        assert_eq!(diag.len(), 4);
        assert_eq!(diag[0].phase, Phase::Expand);
        // At this tiny scale latency dominates communication phases.
        assert_eq!(diag[0].bottleneck, Bottleneck::Latency);
        // Local compute is bound by flops by construction.
        assert_eq!(diag[1].bottleneck, Bottleneck::Compute);
        assert!(diag[0].straggler < 4);
    }

    #[test]
    fn render_is_readable() {
        let dm = demo();
        let diag = diagnose_spmv(&dm, &Machine::cab());
        let text = render(&diag);
        assert!(text.contains("Expand"));
        assert!(text.contains("total per SpMV"));
        assert!(text.contains("latency") || text.contains("bandwidth"));
    }
}

/// Predicted SpMV time under a node-aware (hierarchical) machine: each
/// expand/fold message is priced by whether its endpoints share a node,
/// compute by γ — the robustness check for the flat α-β-γ conclusions.
pub fn spmv_time_hierarchical(a: &DistCsrMatrix, nm: &sf2d_sim::hierarchy::NodeModel) -> f64 {
    let p = a.nprocs();
    let plan_traffic = |plan: &crate::plan::CommPlan, r: usize| {
        let sends: Vec<(usize, usize)> = plan.sends[r]
            .iter()
            .map(|(d, g)| (*d as usize, g.len()))
            .collect();
        let recvs: Vec<(usize, usize)> = plan.recvs[r]
            .iter()
            .map(|(s, g)| (*s as usize, g.len()))
            .collect();
        (sends, recvs)
    };
    let mut total = 0.0;
    // Expand and fold: BSP max over ranks of the node-aware comm time.
    for plan in [&a.import, &a.export] {
        let t = (0..p)
            .map(|r| {
                let (s, rx) = plan_traffic(plan, r);
                nm.comm_time(r, &s, &rx)
            })
            .fold(0.0f64, f64::max);
        total += t;
    }
    // Local compute and sum.
    let compute = a
        .blocks
        .iter()
        .map(|b| nm.gamma * 2.0 * b.local.nnz() as f64)
        .fold(0.0f64, f64::max);
    total + compute
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::hierarchy::NodeModel;
    use sf2d_sim::Machine;

    #[test]
    fn flat_node_model_matches_flat_machine_comm() {
        // With node_size = 1 and matching parameters, the hierarchical
        // prediction equals the ledger's Expand + Fold + LocalCompute.
        let mut coo = sf2d_graph::CooMatrix::new(64, 64);
        for i in 0..64u32 {
            coo.push_sym(i, (i + 7) % 64, 1.0);
            coo.push_sym(i, (i + 13) % 64, 1.0);
        }
        let a = sf2d_graph::CsrMatrix::from_coo(&coo);
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(64, 4, 4));
        let m = Machine::cab();
        let nm = NodeModel::flat(m.alpha, m.beta, m.gamma);
        let hier = spmv_time_hierarchical(&dm, &nm);
        let diag = diagnose_spmv(&dm, &m);
        let flat: f64 = diag
            .iter()
            .filter(|d| {
                matches!(
                    d.phase,
                    sf2d_sim::Phase::Expand | sf2d_sim::Phase::Fold | sf2d_sim::Phase::LocalCompute
                )
            })
            .map(|d| d.time)
            .sum();
        assert!(
            (hier - flat).abs() < 1e-12 * flat.max(1e-30),
            "{hier} vs {flat}"
        );
    }

    #[test]
    fn intra_node_locality_reduces_cost() {
        // A layout whose communication stays within 16-rank nodes should be
        // cheaper under cab16 than the flat network price.
        let mut coo = sf2d_graph::CooMatrix::new(256, 256);
        for i in 0..256u32 {
            coo.push_sym(i, (i + 1) % 256, 1.0);
        }
        let a = sf2d_graph::CsrMatrix::from_coo(&coo);
        // Block layout on a ring: neighbours are in adjacent ranks, mostly
        // same node.
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_1d(256, 64));
        let nm = NodeModel::cab16();
        let flat = NodeModel::flat(nm.alpha_remote, nm.beta_remote, nm.gamma);
        assert!(spmv_time_hierarchical(&dm, &nm) < spmv_time_hierarchical(&dm, &flat));
    }
}
