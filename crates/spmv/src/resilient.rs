//! Resilient SpMV: chaos-routed communication plus checkpoint/restart.
//!
//! [`spmv_chaos`] is [`spmv_ref`](crate::reference::spmv_ref) with the
//! plan executors routed through a [`ChaosRuntime`]: the verify-retry
//! protocol heals every injected fault, so the **delivered values are
//! bit-identical** to a fault-free run — only the ledger differs, by
//! exactly the [`Phase::Retransmit`] supersteps that itemize the extra
//! traffic. At rate 0 those supersteps are skipped entirely and the run
//! is byte-identical (values *and* ledger) to the plain reference.
//!
//! [`power_iterate_chaos`] wraps the 100-iteration SpMV loop of the
//! Table 3 experiment with superstep-boundary checkpointing: the iterate
//! is snapshotted every [`CHECKPOINT_EVERY`] iterations (a node-local
//! memory copy, free of charge like [`DistVector::copy_from`]); when the
//! fault plan crashes a rank at an iteration boundary the loop restores
//! the last checkpoint, bills the restore under [`Phase::Recovery`]
//! (every rank re-reads its slice of the snapshot), and re-executes.
//! Because crash decisions are consumed once per epoch
//! ([`ChaosRuntime::take_crash`]) the replay terminates, and because the
//! chaos protocol always delivers correct values the recovered run
//! converges to the **same bits** as the fault-free loop.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_sim::fault::{bill_retransmit, ChaosRuntime};

use crate::distmat::DistCsrMatrix;
use crate::map::VectorMap;
use crate::multivec::DistVector;
use crate::operator::LinearOperator;
use crate::plan::CommPlan;

/// Iterations between checkpoints in [`power_iterate_chaos`].
pub const CHECKPOINT_EVERY: usize = 10;

/// [`CommPlan::execute_gather`] with the traffic routed through the
/// chaos runtime. Returns the received `(gid, value)` pairs — identical
/// to the plain executor's — plus the per-rank extra cost of any faults.
pub fn gather_chaos(
    plan: &CommPlan,
    source: &VectorMap,
    locals: &[Vec<f64>],
    rt: &mut ChaosRuntime,
) -> (Vec<Vec<(u32, f64)>>, Vec<PhaseCost>) {
    let p = plan.nprocs();
    assert_eq!(locals.len(), p);
    let sends: Vec<Vec<(u32, Vec<f64>)>> = plan
        .sends
        .iter()
        .enumerate()
        .map(|(r, out)| {
            out.iter()
                .map(|(dst, gids)| {
                    let vals: Vec<f64> = gids.iter().map(|&g| locals[r][source.lid(g)]).collect();
                    (*dst, vals)
                })
                .collect()
        })
        .collect();
    let (delivered, extra) = rt.route(p, sends);

    let pairs = delivered
        .into_iter()
        .enumerate()
        .map(|(r, inbox)| {
            let mut out = Vec::new();
            debug_assert_eq!(inbox.len(), plan.recvs[r].len());
            for (msg, (src, gids)) in inbox.iter().zip(&plan.recvs[r]) {
                assert_eq!(msg.src, *src, "plan/traffic mismatch at rank {r}");
                assert_eq!(msg.data.len(), gids.len(), "short message at rank {r}");
                out.extend(gids.iter().copied().zip(msg.data.iter().copied()));
            }
            out
        })
        .collect();
    (pairs, extra)
}

/// [`CommPlan::execute_scatter_add`] with the traffic routed through
/// the chaos runtime. Accumulates identically to the plain executor and
/// returns the per-rank extra cost of any faults.
pub fn scatter_add_chaos(
    plan: &CommPlan,
    target: &VectorMap,
    contributions: &[Vec<(u32, f64)>],
    locals: &mut [Vec<f64>],
    rt: &mut ChaosRuntime,
) -> Vec<PhaseCost> {
    let p = plan.nprocs();
    assert_eq!(contributions.len(), p);
    let sends: Vec<Vec<(u32, Vec<f64>)>> = (0..p)
        .map(|r| {
            let mut lookup: HashMap<u32, f64> = contributions[r].iter().copied().collect();
            plan.recvs[r]
                .iter()
                .map(|(owner, gids)| {
                    let vals: Vec<f64> = gids
                        .iter()
                        .map(|g| lookup.remove(g).expect("missing contribution"))
                        .collect();
                    (*owner, vals)
                })
                .collect()
        })
        .collect();
    let (delivered, extra) = rt.route(p, sends);
    for (r, inbox) in delivered.into_iter().enumerate() {
        let expect = &plan.sends[r];
        debug_assert_eq!(inbox.len(), expect.len());
        for (msg, (dst, gids)) in inbox.iter().zip(expect) {
            assert_eq!(msg.src, *dst, "reverse plan mismatch at rank {r}");
            for (&gid, &val) in gids.iter().zip(&msg.data) {
                locals[r][target.lid(gid)] += val;
            }
        }
    }
    extra
}

/// `y = A x` under fault injection: the four supersteps of
/// [`spmv_ref`](crate::reference::spmv_ref) with chaos-routed expand and
/// fold, each followed by a [`Phase::Retransmit`] superstep when (and
/// only when) faults cost something. Values are always bit-identical to
/// the fault-free run; at rate 0 the ledger is too.
pub fn spmv_chaos(
    a: &DistCsrMatrix,
    x: &DistVector,
    y: &mut DistVector,
    ledger: &mut CostLedger,
    rt: &mut ChaosRuntime,
) {
    let p = a.nprocs();
    assert!(
        Arc::ptr_eq(&x.map, &a.vmap) || x.map.same_distribution(&a.vmap),
        "x map mismatch"
    );
    assert!(
        Arc::ptr_eq(&y.map, &a.vmap) || y.map.same_distribution(&a.vmap),
        "y map mismatch"
    );

    // Phase 1 — expand, through the misbehaving wire.
    let (imported, extra) = gather_chaos(&a.import, &a.vmap, &x.locals, rt);
    ledger.superstep(Phase::Expand, &a.import.phase_costs());
    bill_retransmit(ledger, &extra);

    // Phase 2 — local compute (faults never reach this: the protocol
    // hands over verified values only).
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(p);
    let mut compute_costs = Vec::with_capacity(p);
    for r in 0..p {
        let block = &a.blocks[r];
        let mut xcols = vec![0.0; block.colmap.len()];
        for (lid, &g) in block.colmap.iter().enumerate() {
            if a.vmap.owner(g) == r as u32 {
                xcols[lid] = x.locals[r][a.vmap.lid(g)];
            }
        }
        for &(g, v) in &imported[r] {
            xcols[block.col_lid(g)] = v;
        }
        partials.push(block.local.spmv_dense(&xcols));
        compute_costs.push(PhaseCost::compute(2 * block.local.nnz() as u64));
    }
    ledger.superstep(Phase::LocalCompute, &compute_costs);

    // Phases 3/4 — fold + sum, the fold through the misbehaving wire.
    for l in &mut y.locals {
        l.fill(0.0);
    }
    let mut contributions: Vec<Vec<(u32, f64)>> = vec![Vec::new(); p];
    let mut sum_costs = vec![PhaseCost::default(); p];
    for r in 0..p {
        let block = &a.blocks[r];
        for (li, &g) in block.rowmap.iter().enumerate() {
            if a.vmap.owner(g) == r as u32 {
                y.locals[r][a.vmap.lid(g)] += partials[r][li];
                sum_costs[r].flops += 1;
            } else {
                contributions[r].push((g, partials[r][li]));
            }
        }
    }
    ledger.superstep(Phase::Fold, &a.export.phase_costs());
    let extra = scatter_add_chaos(&a.export, &a.vmap, &contributions, &mut y.locals, rt);
    bill_retransmit(ledger, &extra);
    for r in 0..p {
        let received: u64 = a.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
        sum_costs[r].flops += received;
    }
    ledger.superstep(Phase::Sum, &sum_costs);
}

/// Normalizes `x` in place (norm + scale, both costed) and returns the
/// norm. The shared inner step of the two power-iteration loops.
fn normalize(x: &mut DistVector, ledger: &mut CostLedger) -> f64 {
    let nrm = x.norm2(ledger);
    assert!(nrm > 0.0, "power iteration hit the zero vector");
    x.scale(1.0 / nrm, ledger);
    nrm
}

/// The fault-free oracle for [`power_iterate_chaos`]: `iters` rounds of
/// `x ← A x / ‖A x‖` through the reference SpMV. Returns the final
/// normalized iterate.
pub fn power_iterate(
    a: &DistCsrMatrix,
    x0: &DistVector,
    iters: usize,
    ledger: &mut CostLedger,
) -> DistVector {
    let mut x = x0.clone();
    let mut y = DistVector::zeros(Arc::clone(&a.vmap));
    for _ in 0..iters {
        crate::reference::spmv_ref(a, &x, &mut y, ledger);
        normalize(&mut y, ledger);
        std::mem::swap(&mut x, &mut y);
    }
    x
}

/// [`power_iterate`] under fault injection, with superstep-boundary
/// checkpoint/restart:
///
/// * every [`CHECKPOINT_EVERY`] iterations the iterate is snapshotted
///   (node-local memory copy — free, like [`DistVector::copy_from`]);
/// * at each iteration boundary the loop polls
///   [`ChaosRuntime::take_crash`] with the iteration index as the epoch;
///   on a crash it restores the snapshot and bills one
///   [`Phase::Recovery`] superstep — each rank re-reads its `8·n_local`
///   snapshot bytes — then re-executes from the checkpoint;
/// * injected message faults inside each SpMV are healed and billed by
///   [`spmv_chaos`].
///
/// The returned iterate is **bit-identical** to the fault-free
/// [`power_iterate`] result for any seed/rate, and at rate 0 the ledger
/// is byte-identical too.
pub fn power_iterate_chaos(
    a: &DistCsrMatrix,
    x0: &DistVector,
    iters: usize,
    ledger: &mut CostLedger,
    rt: &mut ChaosRuntime,
) -> DistVector {
    let p = a.nprocs();
    let mut x = x0.clone();
    let mut y = DistVector::zeros(Arc::clone(&a.vmap));
    let mut checkpoint = x.clone();
    let mut checkpoint_iter = 0usize;
    let mut i = 0usize;
    while i < iters {
        if i.is_multiple_of(CHECKPOINT_EVERY) {
            checkpoint.copy_from(&x);
            checkpoint_iter = i;
        }
        if rt.take_crash(i as u64) {
            // A rank died: roll every rank back to the last snapshot and
            // charge the restore reads.
            x.copy_from(&checkpoint);
            let restore: Vec<PhaseCost> = (0..p)
                .map(|r| PhaseCost::comm(1, 8 * a.vmap.nlocal(r) as u64))
                .collect();
            ledger.superstep(Phase::Recovery, &restore);
            i = checkpoint_iter;
            continue;
        }
        spmv_chaos(a, &x, &mut y, ledger, rt);
        normalize(&mut y, ledger);
        std::mem::swap(&mut x, &mut y);
        i += 1;
    }
    x
}

/// `y = A x` through [`spmv_chaos`] behind the [`LinearOperator`]
/// interface, so the eigensolver's operator applications run under
/// fault injection. The chaos runtime is shared via `RefCell` (the
/// trait's `apply` takes `&self`) — callers keep a handle to read the
/// fault statistics afterwards.
pub struct ChaosSpmvOp<'a> {
    /// The distributed matrix.
    pub a: &'a DistCsrMatrix,
    /// The shared chaos runtime.
    pub rt: &'a RefCell<ChaosRuntime>,
}

impl LinearOperator for ChaosSpmvOp<'_> {
    fn vmap(&self) -> &Arc<VectorMap> {
        &self.a.vmap
    }

    fn apply(&self, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
        spmv_chaos(self.a, x, y, ledger, &mut self.rt.borrow_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::spmv_ref;
    use sf2d_gen::{rmat, RmatConfig};
    use sf2d_partition::MatrixDist;
    use sf2d_sim::sf2d_chaos::{FaultKind, FaultScript};
    use sf2d_sim::Machine;

    fn dist_matrix(scale: u32, p: usize) -> DistCsrMatrix {
        let a = rmat(&RmatConfig::graph500(scale), 8);
        let pr = (1..=p)
            .rev()
            .find(|d| p.is_multiple_of(*d) && *d * *d <= p)
            .unwrap();
        let d = MatrixDist::block_2d(a.nrows(), pr as u32, (p / pr) as u32);
        DistCsrMatrix::from_global(&a, &d)
    }

    fn seeded_x(a: &DistCsrMatrix) -> DistVector {
        DistVector::random(Arc::clone(&a.vmap), 11)
    }

    #[test]
    fn rate_zero_spmv_is_byte_identical_to_reference() {
        for p in [4usize, 16] {
            let a = dist_matrix(7, p);
            let x = seeded_x(&a);
            let mut y_ref = DistVector::zeros(Arc::clone(&a.vmap));
            let mut y_chaos = DistVector::zeros(Arc::clone(&a.vmap));
            let mut led_ref = CostLedger::new(Machine::cab());
            let mut led_chaos = CostLedger::new(Machine::cab());
            spmv_ref(&a, &x, &mut y_ref, &mut led_ref);
            let mut rt = ChaosRuntime::seeded(99, 0.0);
            spmv_chaos(&a, &x, &mut y_chaos, &mut led_chaos, &mut rt);
            assert_eq!(y_ref.locals, y_chaos.locals, "p={p}");
            assert_eq!(led_ref.total, led_chaos.total, "p={p}");
            assert_eq!(led_ref.steps, led_chaos.steps, "p={p}");
            assert_eq!(led_ref.by_phase, led_chaos.by_phase, "p={p}");
            assert!(!rt.stats.any());
        }
    }

    #[test]
    fn faulty_spmv_values_match_reference_and_bill_retransmit() {
        let a = dist_matrix(7, 16);
        let x = seeded_x(&a);
        let mut y_ref = DistVector::zeros(Arc::clone(&a.vmap));
        let mut led_ref = CostLedger::new(Machine::cab());
        spmv_ref(&a, &x, &mut y_ref, &mut led_ref);

        for seed in [1u64, 0xBEEF] {
            let mut y = DistVector::zeros(Arc::clone(&a.vmap));
            let mut ledger = CostLedger::new(Machine::cab());
            let mut rt = ChaosRuntime::seeded(seed, 0.3);
            spmv_chaos(&a, &x, &mut y, &mut ledger, &mut rt);
            assert_eq!(y.locals, y_ref.locals, "seed {seed}");
            assert!(rt.stats.message_faults() > 0, "seed {seed}: {:?}", rt.stats);
            assert!(
                ledger
                    .by_phase
                    .get(&Phase::Retransmit)
                    .copied()
                    .unwrap_or(0.0)
                    > 0.0,
                "seed {seed}"
            );
            assert!(ledger.total > led_ref.total, "faults must cost time");
        }
    }

    #[test]
    fn scripted_expand_drop_bills_exactly_one_retransmit_step() {
        let a = dist_matrix(6, 4);
        let x = seeded_x(&a);
        // Fault the first expand message of the first superstep (step 0);
        // the fold round (step 1) stays clean.
        let (src, (dst, gids)) = a
            .import
            .sends
            .iter()
            .enumerate()
            .find_map(|(r, out)| out.first().map(|m| (r, m.clone())))
            .expect("expand plan moves something");
        let script = FaultScript::default().fault(0, src as u32, dst, 0, FaultKind::Drop);
        let mut rt = ChaosRuntime::scripted(script);
        let mut y = DistVector::zeros(Arc::clone(&a.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv_chaos(&a, &x, &mut y, &mut ledger, &mut rt);

        let mut y_ref = DistVector::zeros(Arc::clone(&a.vmap));
        let mut led_ref = CostLedger::new(Machine::cab());
        spmv_ref(&a, &x, &mut y_ref, &mut led_ref);
        assert_eq!(y.locals, y_ref.locals);
        assert_eq!(rt.stats.drops, 1);
        // Exactly one extra superstep: the retransmit after the expand.
        assert_eq!(ledger.steps, led_ref.steps + 1);
        let payload = 8 * gids.len() as u64;
        let m = Machine::cab();
        let want = (m.alpha * 2.0 + m.beta * (payload + 8) as f64).max(m.alpha + m.beta * 8.0);
        assert!((ledger.by_phase[&Phase::Retransmit] - want).abs() < 1e-18);
    }

    #[test]
    fn power_iterate_chaos_recovers_to_fault_free_bits() {
        let a = dist_matrix(6, 4);
        let x0 = seeded_x(&a);
        let mut led_gold = CostLedger::new(Machine::cab());
        let gold = power_iterate(&a, &x0, 25, &mut led_gold);

        // Seeded chaos: message faults plus (deterministically) whatever
        // crashes the plan draws.
        let mut ledger = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::seeded(0xC0FFEE, 0.25);
        let got = power_iterate_chaos(&a, &x0, 25, &mut ledger, &mut rt);
        assert_eq!(got.locals, gold.locals, "recovered bits differ");

        // Scripted crash at iteration 17 (after the iter-10 checkpoint):
        // the loop must rewind to 10, bill a Recovery step, and still
        // land on the gold bits.
        let mut ledger = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::scripted(FaultScript::default().crash(17));
        let got = power_iterate_chaos(&a, &x0, 25, &mut ledger, &mut rt);
        assert_eq!(got.locals, gold.locals);
        assert_eq!(rt.stats.crashes, 1);
        let recovery = ledger.by_phase[&Phase::Recovery];
        assert!(recovery > 0.0);
        // Restore = one superstep of per-rank snapshot reads, plus the
        // replayed iterations 10..17.
        let m = Machine::cab();
        let max_local = (0..4).map(|r| a.vmap.nlocal(r)).max().unwrap() as f64;
        let want = m.alpha + m.beta * 8.0 * max_local;
        assert!((recovery - want).abs() < 1e-18);
        assert_eq!(ledger.steps, led_gold.steps + 1 + 7 * (led_gold.steps / 25));
    }

    #[test]
    fn rate_zero_power_iteration_ledger_is_byte_identical() {
        let a = dist_matrix(6, 4);
        let x0 = seeded_x(&a);
        let mut led_gold = CostLedger::new(Machine::cab());
        let gold = power_iterate(&a, &x0, 12, &mut led_gold);
        let mut ledger = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::seeded(5, 0.0);
        let got = power_iterate_chaos(&a, &x0, 12, &mut ledger, &mut rt);
        assert_eq!(got.locals, gold.locals);
        assert_eq!(ledger.total, led_gold.total);
        assert_eq!(ledger.steps, led_gold.steps);
        assert_eq!(ledger.by_phase, led_gold.by_phase);
    }

    #[test]
    fn chaos_op_applies_the_matrix() {
        let a = dist_matrix(6, 4);
        let x = seeded_x(&a);
        let rt = RefCell::new(ChaosRuntime::seeded(3, 0.2));
        let op = ChaosSpmvOp { a: &a, rt: &rt };
        let mut y = DistVector::zeros(Arc::clone(&a.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        op.apply(&x, &mut y, &mut ledger);
        let mut y_ref = DistVector::zeros(Arc::clone(&a.vmap));
        let mut led_ref = CostLedger::new(Machine::cab());
        spmv_ref(&a, &x, &mut y_ref, &mut led_ref);
        assert_eq!(y.locals, y_ref.locals);
    }
}
