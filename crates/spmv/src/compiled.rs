//! Compiled local-index schedules for the 4-phase SpMV — the plan
//! *compilation* step of Epetra's `FillComplete()`.
//!
//! [`CommPlan`](crate::plan::CommPlan) stores the communication structure
//! in **global ids**; executing it directly means every SpMV re-resolves
//! `owner(gid)` / `lid(gid)` / `col_lid(gid)` for every entry. Since the
//! maps are immutable after construction, all of those lookups can be done
//! once: this module lowers the plans plus the row/column maps into flat
//! local-index copy lists, so the per-iteration path is array indexing
//! only. Message payloads are bare `Vec<f64>` buffers that live in the
//! [`SpmvWorkspace`] and are read **in place** by the destination rank
//! (each unpack entry records the sender's buffer slot), so the steady
//! state allocates nothing; the bytes accounted to the ledger still equal
//! the plan's volume exactly. The static per-phase [`PhaseCost`] vectors
//! are precomputed here too, so a ledger superstep is a slice reduce.
//!
//! The compiled schedules change *nothing* observable: results are
//! bit-identical to the gid-based reference executor
//! ([`reference`](crate::reference)), and the [`CostLedger`] charges are
//! byte-for-byte the same — this optimizes the simulator's real wall
//! clock, not the modeled time.
//!
//! [`CostLedger`]: sf2d_sim::cost::CostLedger

use sf2d_sim::cost::PhaseCost;

use crate::distmat::RankBlock;
use crate::map::VectorMap;
use crate::plan::CommPlan;

/// One rank's compiled expand-phase schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankExpandPlan {
    /// `(src_lid, xcols_lid)` pairs for locally-owned column entries:
    /// `xcols[xcols_lid] = x_local[src_lid]`, in column-map order.
    pub owned: Vec<(u32, u32)>,
    /// Per outgoing message, aligned with `import.sends[r]`: the
    /// destination rank and the local ids (into this rank's `x` slice)
    /// whose values to pack, in plan order.
    pub pack: Vec<(u32, Vec<u32>)>,
    /// Per incoming message, aligned with `import.recvs[r]`: the source
    /// rank, the slot in the source's `pack` list holding this message's
    /// payload, and the `xcols` positions the arriving values land in.
    pub unpack: Vec<(u32, u32, Vec<u32>)>,
}

/// One rank's compiled fold-phase schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFoldPlan {
    /// `(partial_idx, y_lid)` pairs for locally-owned rows:
    /// `y_local[y_lid] += partials[partial_idx]`, in row-map order.
    pub owned: Vec<(u32, u32)>,
    /// Per outgoing message, aligned with `export.recvs[r]`: the owning
    /// rank and the indices into `partials` whose values to ship.
    pub pack: Vec<(u32, Vec<u32>)>,
    /// Per incoming message, aligned with `export.sends[r]`: the source
    /// rank, the slot in the source's `pack` list holding this message's
    /// payload, and the `y` local ids the arriving partials are added to.
    pub unpack: Vec<(u32, u32, Vec<u32>)>,
    /// Sum-phase flops this rank is charged per SpMV column: one per
    /// locally-summed owned row plus one per received fold value (matches
    /// the reference executor's accounting exactly).
    pub sum_flops: u64,
}

/// The full compiled schedule: one expand and one fold plan per rank.
///
/// Built once by [`DistCsrMatrix::from_global`] and reused by every
/// [`spmv`](crate::spmv::spmv) / [`spmm`](crate::spmv::spmm) call.
///
/// [`DistCsrMatrix::from_global`]: crate::distmat::DistCsrMatrix::from_global
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSpmv {
    /// Per-rank expand schedules.
    pub expand: Vec<RankExpandPlan>,
    /// Per-rank fold schedules.
    pub fold: Vec<RankFoldPlan>,
    /// Per-rank expand-phase costs (= `import.phase_costs()`), frozen.
    pub expand_costs: Vec<PhaseCost>,
    /// Per-rank local-compute costs (2 flops per local nonzero), frozen.
    pub compute_costs: Vec<PhaseCost>,
    /// Per-rank fold-phase costs (= `export.phase_costs()`), frozen.
    pub fold_costs: Vec<PhaseCost>,
    /// Per-rank sum-phase costs (one flop per `sum_flops`), frozen.
    pub sum_costs: Vec<PhaseCost>,
}

impl CompiledSpmv {
    /// Lowers the gid-based plans and maps into local-index schedules.
    /// All gid resolution the reference executor performs per call happens
    /// here, once.
    pub fn compile(
        vmap: &VectorMap,
        blocks: &[RankBlock],
        import: &CommPlan,
        export: &CommPlan,
    ) -> CompiledSpmv {
        let p = blocks.len();
        let mut expand = Vec::with_capacity(p);
        let mut fold = Vec::with_capacity(p);
        for (r, block) in blocks.iter().enumerate() {
            // Expand: owned colmap entries copy straight from the local x
            // slice; remote entries arrive via the import plan.
            let owned: Vec<(u32, u32)> = block
                .colmap
                .iter()
                .enumerate()
                .filter(|&(_, &g)| vmap.owner(g) == r as u32)
                .map(|(lid, &g)| (vmap.lid(g) as u32, lid as u32))
                .collect();
            let pack: Vec<(u32, Vec<u32>)> = import.sends[r]
                .iter()
                .map(|(dst, gids)| (*dst, gids.iter().map(|&g| vmap.lid(g) as u32).collect()))
                .collect();
            let unpack: Vec<(u32, u32, Vec<u32>)> = import.recvs[r]
                .iter()
                .map(|(src, gids)| {
                    let slot = import.sends[*src as usize]
                        .iter()
                        .position(|(dst, _)| *dst == r as u32)
                        .expect("import plan symmetry") as u32;
                    (
                        *src,
                        slot,
                        gids.iter().map(|&g| block.col_lid(g) as u32).collect(),
                    )
                })
                .collect();
            expand.push(RankExpandPlan {
                owned,
                pack,
                unpack,
            });

            // Fold: owned rows sum locally; the rest ship to their owner.
            // `partials` is indexed by row-map position, so pack lists are
            // row-map positions and unpack lists are y local ids.
            let owned: Vec<(u32, u32)> = block
                .rowmap
                .iter()
                .enumerate()
                .filter(|&(_, &g)| vmap.owner(g) == r as u32)
                .map(|(li, &g)| (li as u32, vmap.lid(g) as u32))
                .collect();
            let pack: Vec<(u32, Vec<u32>)> = export.recvs[r]
                .iter()
                .map(|(owner, gids)| {
                    (
                        *owner,
                        gids.iter()
                            .map(|&g| {
                                block.rowmap.binary_search(&g).expect("gid in row map") as u32
                            })
                            .collect(),
                    )
                })
                .collect();
            let unpack: Vec<(u32, u32, Vec<u32>)> = export.sends[r]
                .iter()
                .map(|(src, gids)| {
                    let slot = export.recvs[*src as usize]
                        .iter()
                        .position(|(owner, _)| *owner == r as u32)
                        .expect("export plan symmetry") as u32;
                    (
                        *src,
                        slot,
                        gids.iter().map(|&g| vmap.lid(g) as u32).collect(),
                    )
                })
                .collect();
            let received: u64 = unpack.iter().map(|(_, _, lids)| lids.len() as u64).sum();
            let sum_flops = owned.len() as u64 + received;
            fold.push(RankFoldPlan {
                owned,
                pack,
                unpack,
                sum_flops,
            });
        }
        // The per-phase cost vectors never change after FillComplete —
        // freeze them so a superstep charge is a slice reduce, not a plan
        // traversal.
        let expand_costs = import.phase_costs();
        let fold_costs = export.phase_costs();
        let compute_costs = blocks
            .iter()
            .map(|b| PhaseCost::compute(2 * b.local.nnz() as u64))
            .collect();
        let sum_costs = fold
            .iter()
            .map(|f: &RankFoldPlan| PhaseCost::compute(f.sum_flops))
            .collect();
        CompiledSpmv {
            expand,
            fold,
            expand_costs,
            compute_costs,
            fold_costs,
            sum_costs,
        }
    }
}

/// Per-rank scratch buffers for one SpMV/SpMM execution.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    /// Column-aligned x values (`colmap.len()` entries).
    pub xcols: Vec<f64>,
    /// Per-local-row partial sums (`rowmap.len()` entries).
    pub partials: Vec<f64>,
}

/// Reusable scratch space for [`spmv`](crate::spmv::spmv) /
/// [`spmm`](crate::spmv::spmm): the per-rank `xcols` / `partials` buffers
/// that the reference executor allocates fresh on every call.
///
/// A workspace is not tied to a matrix — buffers are (re)sized on first
/// use with each matrix — so one workspace can serve a whole solve. The
/// `threads` knob selects how many OS threads the phase-local work (pack,
/// local SpMV, unpack, scatter-add) fans out across; any value produces
/// bit-identical results because ranks only ever touch disjoint slices.
#[derive(Debug, Clone)]
pub struct SpmvWorkspace {
    /// Number of OS threads for phase-local work (1 = fully sequential).
    pub threads: usize,
    pub(crate) ranks: Vec<RankScratch>,
    /// Per-rank expand-phase send payloads, aligned with each rank's
    /// compiled `pack` list. Destination ranks read them in place (the
    /// compiled unpack entries carry the sender's slot), so the simulated
    /// transport is zero-copy and allocation-free at steady state.
    pub(crate) expand_bufs: Vec<Vec<Vec<f64>>>,
    /// Per-rank fold-phase send payloads, same discipline.
    pub(crate) fold_bufs: Vec<Vec<Vec<f64>>>,
}

impl SpmvWorkspace {
    /// A sequential (single-threaded) workspace.
    pub fn new() -> SpmvWorkspace {
        SpmvWorkspace::with_threads(1)
    }

    /// A workspace whose phase-local work fans out across `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> SpmvWorkspace {
        SpmvWorkspace {
            threads: threads.max(1),
            ranks: Vec::new(),
            expand_bufs: Vec::new(),
            fold_bufs: Vec::new(),
        }
    }

    /// Sizes the per-rank buffers for `blocks`, reusing allocations where
    /// they already fit.
    pub(crate) fn ensure(&mut self, blocks: &[RankBlock], compiled: &CompiledSpmv) {
        self.ranks.resize_with(blocks.len(), RankScratch::default);
        for (scratch, block) in self.ranks.iter_mut().zip(blocks) {
            scratch.xcols.resize(block.colmap.len(), 0.0);
            scratch.partials.resize(block.rowmap.len(), 0.0);
        }
        self.expand_bufs.resize_with(blocks.len(), Vec::new);
        for (bufs, plan) in self.expand_bufs.iter_mut().zip(&compiled.expand) {
            bufs.resize_with(plan.pack.len(), Vec::new);
        }
        self.fold_bufs.resize_with(blocks.len(), Vec::new);
        for (bufs, plan) in self.fold_bufs.iter_mut().zip(&compiled.fold) {
            bufs.resize_with(plan.pack.len(), Vec::new);
        }
    }
}

impl Default for SpmvWorkspace {
    fn default() -> SpmvWorkspace {
        SpmvWorkspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distmat::DistCsrMatrix;
    use sf2d_gen::{rmat, RmatConfig};
    use sf2d_partition::MatrixDist;

    fn dist_matrix() -> DistCsrMatrix {
        let a = rmat(&RmatConfig::graph500(6), 5);
        let d = MatrixDist::block_2d(a.nrows(), 2, 3);
        DistCsrMatrix::from_global(&a, &d)
    }

    #[test]
    fn expand_schedule_is_aligned_with_the_import_plan() {
        let dm = dist_matrix();
        for r in 0..dm.nprocs() {
            let plan = &dm.compiled.expand[r];
            assert_eq!(plan.pack.len(), dm.import.sends[r].len());
            assert_eq!(plan.unpack.len(), dm.import.recvs[r].len());
            // Pack lids resolve to exactly the gids the plan ships.
            for ((dst, lids), (pdst, gids)) in plan.pack.iter().zip(&dm.import.sends[r]) {
                assert_eq!(dst, pdst);
                for (&lid, &g) in lids.iter().zip(gids) {
                    assert_eq!(dm.vmap.gids(r)[lid as usize], g);
                }
            }
            // Unpack positions land on the matching colmap entries, and
            // each slot points at the sender's message for this rank.
            for ((src, slot, lids), (psrc, gids)) in plan.unpack.iter().zip(&dm.import.recvs[r]) {
                assert_eq!(src, psrc);
                let (dst, sent) = &dm.import.sends[*src as usize][*slot as usize];
                assert_eq!(*dst, r as u32);
                assert_eq!(sent, gids);
                for (&lid, &g) in lids.iter().zip(gids) {
                    assert_eq!(dm.blocks[r].colmap[lid as usize], g);
                }
            }
        }
    }

    #[test]
    fn owned_lists_cover_exactly_the_local_entries() {
        let dm = dist_matrix();
        for r in 0..dm.nprocs() {
            let block = &dm.blocks[r];
            let owned_cols = block
                .colmap
                .iter()
                .filter(|&&g| dm.vmap.owner(g) == r as u32)
                .count();
            assert_eq!(dm.compiled.expand[r].owned.len(), owned_cols);
            for &(src, dst) in &dm.compiled.expand[r].owned {
                let g = block.colmap[dst as usize];
                assert_eq!(dm.vmap.owner(g), r as u32);
                assert_eq!(dm.vmap.lid(g), src as usize);
            }
            let owned_rows = block
                .rowmap
                .iter()
                .filter(|&&g| dm.vmap.owner(g) == r as u32)
                .count();
            assert_eq!(dm.compiled.fold[r].owned.len(), owned_rows);
        }
    }

    #[test]
    fn sum_flops_match_the_reference_accounting() {
        let dm = dist_matrix();
        for r in 0..dm.nprocs() {
            let received: u64 = dm.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
            let owned = dm.compiled.fold[r].owned.len() as u64;
            assert_eq!(dm.compiled.fold[r].sum_flops, owned + received);
        }
    }

    #[test]
    fn workspace_resizes_to_the_matrix() {
        let dm = dist_matrix();
        let mut ws = SpmvWorkspace::new();
        assert_eq!(ws.threads, 1);
        ws.ensure(&dm.blocks, &dm.compiled);
        for (scratch, block) in ws.ranks.iter().zip(&dm.blocks) {
            assert_eq!(scratch.xcols.len(), block.colmap.len());
            assert_eq!(scratch.partials.len(), block.rowmap.len());
        }
        for (bufs, plan) in ws.expand_bufs.iter().zip(&dm.compiled.expand) {
            assert_eq!(bufs.len(), plan.pack.len());
        }
        for (bufs, plan) in ws.fold_bufs.iter().zip(&dm.compiled.fold) {
            assert_eq!(bufs.len(), plan.pack.len());
        }
        // Re-ensuring with the same matrix is a no-op resize.
        ws.ensure(&dm.blocks, &dm.compiled);
        assert_eq!(ws.ranks.len(), dm.nprocs());
        assert_eq!(SpmvWorkspace::with_threads(0).threads, 1);
    }
}
