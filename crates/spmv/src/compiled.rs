//! Compiled local-index schedules for the 4-phase SpMV — the plan
//! *compilation* step of Epetra's `FillComplete()`, stored compressed.
//!
//! [`CommPlan`](crate::plan::CommPlan) stores the communication structure
//! in **global ids**; executing it directly means every SpMV re-resolves
//! `owner(gid)` / `lid(gid)` / `col_lid(gid)` for every entry. Since the
//! maps are immutable after construction, all of those lookups can be done
//! once: this module lowers the plans plus the row/column maps into flat
//! local-index copy lists, so the per-iteration path is array indexing
//! only. The static per-phase [`PhaseCost`] vectors are precomputed here
//! too, so a ledger superstep is a slice reduce.
//!
//! **Storage** is built for paper-scale rank counts (p = 16,384). At high
//! p the per-rank blocks go hypersparse (Buluç & Gilbert): every index
//! list is tiny and highly redundant across ranks, so replicating
//! `Vec<Vec<u32>>`-of-`Vec` plans per rank would drown in allocator
//! headers. Instead every index list lives in one shared u32 arena (the
//! *plan store*), **deduplicated by content**, and the per-rank schedules
//! are flat entry arrays holding [`IdxSpan`] offset-range views into it.
//! Message payloads are flat per-rank `f64` buffers in the
//! [`SpmvWorkspace`], one allocation per rank (not per message), read
//! **in place** by the destination rank at the sender's precomputed
//! payload offset — the zero-copy simulated transport, allocation-free at
//! steady state; the bytes accounted to the ledger still equal the plan's
//! volume exactly.
//!
//! **Construction** parallelizes: [`CompiledSpmv::compile_with`] fans the
//! pure per-rank lowering across OS threads (optionally on a persistent
//! [`Pool`]) and then interns the results serially in rank order, so the
//! compiled plan is byte-identical to the serial [`CompiledSpmv::compile`]
//! for any thread count — property-tested in
//! `tests/proptest_parallel_compile.rs`.
//!
//! The compiled schedules change *nothing* observable: results are
//! bit-identical to the gid-based reference executor
//! ([`reference`](crate::reference)), and the [`CostLedger`] charges are
//! byte-for-byte the same — this optimizes the simulator's real wall
//! clock and live memory, not the modeled time.
//!
//! [`CostLedger`]: sf2d_sim::cost::CostLedger
//! [`Pool`]: sf2d_sim::sf2d_par::Pool

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use sf2d_sim::cost::PhaseCost;
use sf2d_sim::sf2d_par::{par_ranks_with, Pool};

use crate::distmat::RankBlock;
use crate::map::VectorMap;
use crate::plan::CommPlan;

/// An offset-range view into the shared index arena (u32 offsets: plans
/// stay addressable up to 4G shared indices, far beyond scale-20 inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IdxSpan {
    /// Start offset in the arena.
    pub off: u32,
    /// Number of u32 entries.
    pub len: u32,
}

impl IdxSpan {
    /// The arena range this span covers.
    #[inline]
    pub fn range(self) -> Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }

    /// Number of entries.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True when the span is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One outgoing message of a rank's compiled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackEntry {
    /// Destination rank.
    pub peer: u32,
    /// Local ids whose values to pack, in plan order (arena span).
    pub lids: IdxSpan,
    /// Offset of this message's payload in the sender's flat per-rank
    /// send buffer, in width-1 doubles (multiply by `ncols` for SpMM).
    pub payload_off: u32,
}

/// One incoming message of a rank's compiled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnpackEntry {
    /// Source rank.
    pub src: u32,
    /// Slot in the source's pack list holding this message.
    pub slot: u32,
    /// The source's precomputed `payload_off` for that slot — so reading
    /// a payload in place costs no lookup into the sender's plan.
    pub payload_off: u32,
    /// Local positions the arriving values land in (arena span).
    pub lids: IdxSpan,
}

/// One phase's compiled schedule for **all** ranks: flat entry arrays with
/// per-rank offset tables, plus per-rank owned-copy spans — everything
/// indexing into the [`CompiledSpmv`]'s shared arena.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhasePlan {
    /// Per-rank owned-copy pairs, interleaved `(a, b)` in one arena span
    /// of `2·n` entries. Expand: `(src_lid, xcols_lid)`; fold:
    /// `(partial_idx, y_lid)`.
    owned: Vec<IdxSpan>,
    /// All ranks' pack entries, concatenated in rank order.
    pack: Vec<PackEntry>,
    /// Per-rank ranges into `pack` (`p + 1` offsets).
    pack_off: Vec<u32>,
    /// All ranks' unpack entries, concatenated in rank order.
    unpack: Vec<UnpackEntry>,
    /// Per-rank ranges into `unpack` (`p + 1` offsets).
    unpack_off: Vec<u32>,
    /// Per-rank total send-payload length in width-1 doubles — what the
    /// workspace's flat per-rank send buffer must hold.
    payload: Vec<u32>,
}

impl PhasePlan {
    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.owned.len()
    }

    /// Rank `r`'s pack entries.
    #[inline]
    pub fn pack_entries(&self, r: usize) -> &[PackEntry] {
        &self.pack[self.pack_off[r] as usize..self.pack_off[r + 1] as usize]
    }

    /// Rank `r`'s unpack entries.
    #[inline]
    pub fn unpack_entries(&self, r: usize) -> &[UnpackEntry] {
        &self.unpack[self.unpack_off[r] as usize..self.unpack_off[r + 1] as usize]
    }

    /// Rank `r`'s total send-payload length in width-1 doubles.
    #[inline]
    pub fn payload_doubles(&self, r: usize) -> usize {
        self.payload[r] as usize
    }

    /// The rank view joining this plan with the shared arena.
    #[inline]
    fn rank<'a>(&'a self, arena: &'a [u32], r: usize) -> RankPlan<'a> {
        RankPlan {
            arena,
            owned: self.owned[r],
            pack: self.pack_entries(r),
            unpack: self.unpack_entries(r),
        }
    }
}

/// One rank's schedule for one phase: a cheap `Copy` view borrowing the
/// shared arena — the executor-facing face of the compressed plan store.
#[derive(Debug, Clone, Copy)]
pub struct RankPlan<'a> {
    arena: &'a [u32],
    owned: IdxSpan,
    pack: &'a [PackEntry],
    unpack: &'a [UnpackEntry],
}

impl<'a> RankPlan<'a> {
    /// Resolves a span to its arena slice.
    #[inline]
    pub fn lids(self, span: IdxSpan) -> &'a [u32] {
        &self.arena[span.range()]
    }

    /// Owned-copy pairs. Expand: `xcols[b] = x_local[a]`; fold:
    /// `y_local[b] += partials[a]`.
    #[inline]
    pub fn owned_pairs(self) -> impl Iterator<Item = (u32, u32)> + 'a {
        self.arena[self.owned.range()]
            .chunks_exact(2)
            .map(|c| (c[0], c[1]))
    }

    /// Number of owned-copy pairs.
    pub fn n_owned(self) -> usize {
        self.owned.len() / 2
    }

    /// Outgoing messages as `(peer, lids, payload_off)`, in plan order
    /// (which is also payload order: offsets ascend).
    #[inline]
    pub fn packs(self) -> impl Iterator<Item = (u32, &'a [u32], u32)> + 'a {
        let arena = self.arena;
        self.pack
            .iter()
            .map(move |e| (e.peer, &arena[e.lids.range()], e.payload_off))
    }

    /// One outgoing message by slot.
    #[inline]
    pub fn pack(self, slot: usize) -> (u32, &'a [u32], u32) {
        let e = &self.pack[slot];
        (e.peer, &self.arena[e.lids.range()], e.payload_off)
    }

    /// Number of outgoing messages.
    pub fn npacks(self) -> usize {
        self.pack.len()
    }

    /// Incoming messages as `(src, slot, payload_off, lids)` — the
    /// payload offset is the *sender's*, for reading its flat buffer in
    /// place.
    #[inline]
    pub fn unpacks(self) -> impl Iterator<Item = (u32, u32, u32, &'a [u32])> + 'a {
        let arena = self.arena;
        self.unpack
            .iter()
            .map(move |e| (e.src, e.slot, e.payload_off, &arena[e.lids.range()]))
    }

    /// Number of incoming messages.
    pub fn nunpacks(self) -> usize {
        self.unpack.len()
    }
}

/// The full compiled schedule: shared index arena plus one [`PhasePlan`]
/// per phase and the frozen per-rank cost vectors.
///
/// Built once by [`DistCsrMatrix::from_global`] and reused by every
/// [`spmv`](crate::spmv::spmv) / [`spmm`](crate::spmv::spmm) call.
///
/// [`DistCsrMatrix::from_global`]: crate::distmat::DistCsrMatrix::from_global
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSpmv {
    /// The shared, content-deduplicated index arena (the plan store).
    arena: Vec<u32>,
    /// Expand-phase schedules for all ranks.
    pub expand: PhasePlan,
    /// Fold-phase schedules for all ranks.
    pub fold: PhasePlan,
    /// Per-rank expand-phase costs (= `import.phase_costs()`), frozen.
    pub expand_costs: Vec<PhaseCost>,
    /// Per-rank local-compute costs (2 flops per local nonzero), frozen.
    pub compute_costs: Vec<PhaseCost>,
    /// Per-rank fold-phase costs (= `export.phase_costs()`), frozen.
    pub fold_costs: Vec<PhaseCost>,
    /// Per-rank sum-phase costs (one flop per locally-summed owned row
    /// plus one per received fold value), frozen.
    pub sum_costs: Vec<PhaseCost>,
}

/// One rank's schedules before interning: plain nested vectors, built by
/// the (parallelizable) pure per-rank lowering pass.
#[derive(Debug, Clone, Default)]
struct RawRank {
    e_owned: Vec<u32>,
    e_pack: Vec<(u32, Vec<u32>)>,
    e_unpack: Vec<(u32, u32, Vec<u32>)>,
    f_owned: Vec<u32>,
    f_pack: Vec<(u32, Vec<u32>)>,
    f_unpack: Vec<(u32, u32, Vec<u32>)>,
    sum_flops: u64,
}

/// Lowers one rank's schedules (the loop body of the old serial compile).
/// Pure in `r` given the shared inputs, so fanning it across threads is
/// trivially byte-identical.
fn lower_rank(
    r: usize,
    vmap: &VectorMap,
    block: &RankBlock,
    import: &CommPlan,
    export: &CommPlan,
) -> RawRank {
    // Expand: owned colmap entries copy straight from the local x slice;
    // remote entries arrive via the import plan.
    let mut e_owned = Vec::new();
    for (lid, &g) in block.colmap.iter().enumerate() {
        if vmap.owner(g) == r as u32 {
            e_owned.push(vmap.lid(g) as u32);
            e_owned.push(lid as u32);
        }
    }
    let e_pack: Vec<(u32, Vec<u32>)> = import.sends[r]
        .iter()
        .map(|(dst, gids)| (*dst, gids.iter().map(|&g| vmap.lid(g) as u32).collect()))
        .collect();
    let e_unpack: Vec<(u32, u32, Vec<u32>)> = import.recvs[r]
        .iter()
        .map(|(src, gids)| {
            // Sends are destination-ascending, so the slot lookup is a
            // binary search, not the linear scan that made compilation
            // O(messages²) per rank pair at high p.
            let slot = import.sends[*src as usize]
                .binary_search_by_key(&(r as u32), |(dst, _)| *dst)
                .expect("import plan symmetry") as u32;
            (
                *src,
                slot,
                gids.iter().map(|&g| block.col_lid(g) as u32).collect(),
            )
        })
        .collect();

    // Fold: owned rows sum locally; the rest ship to their owner.
    // `partials` is indexed by row-map position, so pack lists are
    // row-map positions and unpack lists are y local ids.
    let mut f_owned = Vec::new();
    for (li, &g) in block.rowmap.iter().enumerate() {
        if vmap.owner(g) == r as u32 {
            f_owned.push(li as u32);
            f_owned.push(vmap.lid(g) as u32);
        }
    }
    let f_pack: Vec<(u32, Vec<u32>)> = export.recvs[r]
        .iter()
        .map(|(owner, gids)| {
            (
                *owner,
                gids.iter()
                    .map(|&g| block.rowmap.binary_search(&g).expect("gid in row map") as u32)
                    .collect(),
            )
        })
        .collect();
    let f_unpack: Vec<(u32, u32, Vec<u32>)> = export.sends[r]
        .iter()
        .map(|(src, gids)| {
            let slot = export.recvs[*src as usize]
                .binary_search_by_key(&(r as u32), |(owner, _)| *owner)
                .expect("export plan symmetry") as u32;
            (
                *src,
                slot,
                gids.iter().map(|&g| vmap.lid(g) as u32).collect(),
            )
        })
        .collect();
    let received: u64 = f_unpack.iter().map(|(_, _, lids)| lids.len() as u64).sum();
    let sum_flops = f_owned.len() as u64 / 2 + received;
    RawRank {
        e_owned,
        e_pack,
        e_unpack,
        f_owned,
        f_pack,
        f_unpack,
        sum_flops,
    }
}

/// Content-deduplicating arena interner. Interning happens serially in
/// rank order, so the arena layout is a pure function of the raw plans —
/// the parallel and serial compile paths produce identical bytes.
#[derive(Default)]
struct Interner {
    arena: Vec<u32>,
    /// Segment hash → spans with that hash (collisions resolved by
    /// comparing contents against the arena).
    seen: HashMap<u64, Vec<IdxSpan>>,
}

impl Interner {
    fn intern(&mut self, seg: &[u32]) -> IdxSpan {
        if seg.is_empty() {
            return IdxSpan { off: 0, len: 0 };
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seg.hash(&mut h);
        let key = h.finish();
        if let Some(cands) = self.seen.get(&key) {
            for &s in cands {
                if &self.arena[s.range()] == seg {
                    return s;
                }
            }
        }
        let off = self.arena.len();
        assert!(
            off + seg.len() <= u32::MAX as usize,
            "plan store overflow: the shared index arena would exceed u32 addressing \
             ({} + {} entries)",
            off,
            seg.len()
        );
        self.arena.extend_from_slice(seg);
        let span = IdxSpan {
            off: off as u32,
            len: seg.len() as u32,
        };
        self.seen.entry(key).or_default().push(span);
        span
    }
}

/// Interns one phase's raw per-rank lists into a [`PhasePlan`].
/// `payload_prefix[r][k]` must give the payload offset of rank `r`'s
/// `k`-th message (prefix sums of its pack lengths).
fn intern_phase<'r>(
    interner: &mut Interner,
    raws: impl Iterator<
        Item = (
            &'r Vec<u32>,
            &'r [(u32, Vec<u32>)],
            &'r [(u32, u32, Vec<u32>)],
        ),
    >,
    payload_prefix: &[Vec<u32>],
) -> PhasePlan {
    let mut plan = PhasePlan::default();
    plan.pack_off.push(0);
    plan.unpack_off.push(0);
    for (r, (owned, pack, unpack)) in raws.enumerate() {
        plan.owned.push(interner.intern(owned));
        for (k, (peer, lids)) in pack.iter().enumerate() {
            plan.pack.push(PackEntry {
                peer: *peer,
                lids: interner.intern(lids),
                payload_off: payload_prefix[r][k],
            });
        }
        plan.pack_off.push(plan.pack.len() as u32);
        for (src, slot, lids) in unpack {
            plan.unpack.push(UnpackEntry {
                src: *src,
                slot: *slot,
                payload_off: payload_prefix[*src as usize][*slot as usize],
                lids: interner.intern(lids),
            });
        }
        plan.unpack_off.push(plan.unpack.len() as u32);
        plan.payload
            .push(*payload_prefix[r].last().expect("prefix has p+1 entries"));
    }
    plan
}

/// Payload prefix sums for one phase: `out[r][k]` = offset (in width-1
/// doubles) of rank `r`'s `k`-th message in its flat send buffer;
/// `out[r][npacks]` = the buffer's total length.
fn payload_prefixes<'r>(packs: impl Iterator<Item = &'r [(u32, Vec<u32>)]>) -> Vec<Vec<u32>> {
    packs
        .map(|pack| {
            let mut offs = Vec::with_capacity(pack.len() + 1);
            let mut acc = 0u32;
            offs.push(0);
            for (_, lids) in pack {
                acc = acc
                    .checked_add(lids.len() as u32)
                    .expect("per-rank payload fits u32");
                offs.push(acc);
            }
            offs
        })
        .collect()
}

impl CompiledSpmv {
    /// Lowers the gid-based plans and maps into local-index schedules,
    /// serially. All gid resolution the reference executor performs per
    /// call happens here, once.
    pub fn compile(
        vmap: &VectorMap,
        blocks: &[RankBlock],
        import: &CommPlan,
        export: &CommPlan,
    ) -> CompiledSpmv {
        CompiledSpmv::compile_with(vmap, blocks, import, export, 1, None)
    }

    /// [`compile`](CompiledSpmv::compile) with the pure per-rank lowering
    /// fanned across `threads` OS threads (on the persistent `pool` when
    /// given). Interning stays serial in rank order, so the result is
    /// **byte-identical** to the serial compile for any thread count.
    pub fn compile_with(
        vmap: &VectorMap,
        blocks: &[RankBlock],
        import: &CommPlan,
        export: &CommPlan,
        threads: usize,
        pool: Option<&Pool>,
    ) -> CompiledSpmv {
        let p = blocks.len();
        // Stage 1 — parallel: lower every rank independently.
        let mut raw: Vec<RawRank> = Vec::new();
        raw.resize_with(p, RawRank::default);
        par_ranks_with(threads, pool, &mut raw, |r, slot| {
            *slot = lower_rank(r, vmap, &blocks[r], import, export);
        });

        // Stage 2 — serial: intern into the shared arena in rank order
        // (deterministic layout, shared segments stored once).
        let e_prefix = payload_prefixes(raw.iter().map(|rr| rr.e_pack.as_slice()));
        let f_prefix = payload_prefixes(raw.iter().map(|rr| rr.f_pack.as_slice()));
        let mut interner = Interner::default();
        let expand = intern_phase(
            &mut interner,
            raw.iter()
                .map(|rr| (&rr.e_owned, rr.e_pack.as_slice(), rr.e_unpack.as_slice())),
            &e_prefix,
        );
        let fold = intern_phase(
            &mut interner,
            raw.iter()
                .map(|rr| (&rr.f_owned, rr.f_pack.as_slice(), rr.f_unpack.as_slice())),
            &f_prefix,
        );

        // The per-phase cost vectors never change after FillComplete —
        // freeze them so a superstep charge is a slice reduce, not a plan
        // traversal.
        let expand_costs = import.phase_costs();
        let fold_costs = export.phase_costs();
        let compute_costs = blocks
            .iter()
            .map(|b| PhaseCost::compute(2 * b.local.nnz() as u64))
            .collect();
        let sum_costs = raw
            .iter()
            .map(|rr| PhaseCost::compute(rr.sum_flops))
            .collect();
        CompiledSpmv {
            arena: interner.arena,
            expand,
            fold,
            expand_costs,
            compute_costs,
            fold_costs,
            sum_costs,
        }
    }

    /// Rank `r`'s expand-phase schedule view.
    #[inline]
    pub fn expand_rank(&self, r: usize) -> RankPlan<'_> {
        self.expand.rank(&self.arena, r)
    }

    /// Rank `r`'s fold-phase schedule view.
    #[inline]
    pub fn fold_rank(&self, r: usize) -> RankPlan<'_> {
        self.fold.rank(&self.arena, r)
    }

    /// Sum-phase flops charged to rank `r` per SpMV column.
    pub fn sum_flops(&self, r: usize) -> u64 {
        self.sum_costs[r].flops
    }

    /// Entries in the shared index arena (after deduplication).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Actual heap footprint of the compressed plan store: arena, entry
    /// arrays, offset tables, and the frozen cost vectors.
    pub fn plan_bytes(&self) -> u64 {
        use std::mem::size_of;
        let phase = |pl: &PhasePlan| -> u64 {
            (pl.owned.len() * size_of::<IdxSpan>()
                + pl.pack.len() * size_of::<PackEntry>()
                + pl.unpack.len() * size_of::<UnpackEntry>()
                + (pl.pack_off.len() + pl.unpack_off.len() + pl.payload.len()) * 4)
                as u64
        };
        (self.arena.len() * 4) as u64
            + phase(&self.expand)
            + phase(&self.fold)
            + (4 * self.expand_costs.len() * size_of::<PhaseCost>()) as u64
    }

    /// What the same schedules would occupy in the pre-compression
    /// replicated representation (per-rank structs of nested `Vec`s, one
    /// heap list per message, no cross-rank sharing) — the denominator of
    /// the compressed-vs-replicated comparison in `BENCH_scale.json`.
    /// Heap payloads plus `Vec` / tuple headers; allocator per-block
    /// overhead is *not* counted, so the estimate is conservative.
    pub fn replicated_plan_bytes(&self) -> u64 {
        use std::mem::size_of;
        let vec_hdr = size_of::<Vec<u32>>() as u64;
        let mut total = 0u64;
        for pl in [&self.expand, &self.fold] {
            for r in 0..pl.nranks() {
                // owned: Vec<(u32, u32)>
                total += vec_hdr + 8 * (pl.owned[r].len() / 2) as u64;
                // pack: Vec<(u32, Vec<u32>)>
                total += vec_hdr;
                for e in pl.pack_entries(r) {
                    total += size_of::<(u32, Vec<u32>)>() as u64 + 4 * e.lids.len as u64;
                }
                // unpack: Vec<(u32, u32, Vec<u32>)>
                total += vec_hdr;
                for e in pl.unpack_entries(r) {
                    total += size_of::<(u32, u32, Vec<u32>)>() as u64 + 4 * e.lids.len as u64;
                }
            }
            // The per-rank struct list itself.
            total += vec_hdr + (pl.nranks() * 3 * size_of::<Vec<u32>>()) as u64;
        }
        total + (4 * self.expand_costs.len() * size_of::<PhaseCost>()) as u64
    }
}

/// Reusable scratch space for [`spmv`](crate::spmv::spmv) /
/// [`spmm`](crate::spmv::spmm): one arena for the per-rank `xcols` /
/// `partials` scratch and one flat `f64` send buffer per rank per phase.
///
/// A workspace is not tied to a matrix — buffers are (re)sized on first
/// use with each matrix — so one workspace can serve a whole solve. The
/// `threads` knob selects how many OS threads the phase-local work (pack,
/// local SpMV, unpack, scatter-add) fans out across; any value produces
/// bit-identical results because ranks only ever touch disjoint slices.
///
/// With a **live-memory budget** ([`SpmvWorkspace::with_budget`]), the
/// unpack/compute/fold work executes in contiguous rank *waves* planned by
/// [`sf2d_sim::wave::plan_waves`]: the scratch arena holds only the
/// largest wave instead of all `p` ranks, and results (ledger included)
/// stay byte-identical because each rank's work reads only state frozen
/// before its phase. The send buffers stay resident either way — they are
/// the simulated network, read in place across waves.
#[derive(Debug, Clone)]
pub struct SpmvWorkspace {
    /// Number of OS threads for phase-local work (1 = fully sequential).
    pub threads: usize,
    /// Live-memory budget in bytes for the scratch arena, or `None` for
    /// all-resident execution (a single wave).
    budget: Option<u64>,
    /// The reusable xcols/partials arena, sized for the largest wave.
    pub(crate) scratch: Vec<f64>,
    /// Per-rank flat expand-phase send payloads (one allocation per rank;
    /// messages at the plan's payload offsets). Destination ranks read
    /// them in place, so the simulated transport is zero-copy.
    pub(crate) expand_bufs: Vec<Vec<f64>>,
    /// Per-rank fold-phase send payloads, same discipline.
    pub(crate) fold_bufs: Vec<Vec<f64>>,
    /// The wave plan for the current (matrix, width, budget).
    pub(crate) waves: Vec<Range<usize>>,
}

impl SpmvWorkspace {
    /// A sequential (single-threaded) workspace.
    pub fn new() -> SpmvWorkspace {
        SpmvWorkspace::with_threads(1)
    }

    /// A workspace whose phase-local work fans out across `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> SpmvWorkspace {
        SpmvWorkspace {
            threads: threads.max(1),
            budget: None,
            scratch: Vec::new(),
            expand_bufs: Vec::new(),
            fold_bufs: Vec::new(),
            waves: Vec::new(),
        }
    }

    /// Caps the live scratch arena at `bytes`: per-rank work then runs in
    /// rank waves whose combined `xcols` + `partials` footprint fits (a
    /// single rank larger than the budget still gets a wave of its own —
    /// best effort, never failure). Results are byte-identical to the
    /// unbudgeted workspace.
    pub fn with_budget(mut self, bytes: u64) -> SpmvWorkspace {
        self.budget = Some(bytes);
        self
    }

    /// Sets or clears the live-memory budget (see
    /// [`with_budget`](SpmvWorkspace::with_budget)).
    pub fn set_budget(&mut self, bytes: Option<u64>) {
        self.budget = bytes;
    }

    /// The configured scratch budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Number of waves the last execution was planned into (1 when
    /// unbudgeted; 0 before first use).
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Current scratch-arena footprint in bytes — with a budget, the
    /// largest wave's footprint rather than the whole matrix's.
    pub fn scratch_bytes(&self) -> u64 {
        (self.scratch.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Sizes the buffers for `blocks` at SpMM width `width` (1 for SpMV),
    /// plans the waves, and reuses allocations where they already fit.
    pub(crate) fn ensure(&mut self, blocks: &[RankBlock], compiled: &CompiledSpmv, width: usize) {
        let per_rank: Vec<u64> = blocks
            .iter()
            .map(|b| 8 * (b.colmap.len() + width * b.rowmap.len()) as u64)
            .collect();
        self.waves = sf2d_sim::wave::plan_waves(&per_rank, self.budget);
        let need = sf2d_sim::wave::max_wave_bytes(&per_rank, &self.waves) as usize / 8;
        if self.scratch.len() < need {
            self.scratch.resize(need, 0.0);
        }
        self.expand_bufs.resize_with(blocks.len(), Vec::new);
        self.fold_bufs.resize_with(blocks.len(), Vec::new);
        for (r, buf) in self.expand_bufs.iter_mut().enumerate() {
            buf.reserve(compiled.expand.payload_doubles(r) * width);
        }
        for (r, buf) in self.fold_bufs.iter_mut().enumerate() {
            buf.reserve(compiled.fold.payload_doubles(r) * width);
        }
    }
}

impl Default for SpmvWorkspace {
    fn default() -> SpmvWorkspace {
        SpmvWorkspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distmat::DistCsrMatrix;
    use sf2d_gen::{rmat, RmatConfig};
    use sf2d_partition::MatrixDist;

    fn dist_matrix() -> DistCsrMatrix {
        let a = rmat(&RmatConfig::graph500(6), 5);
        let d = MatrixDist::block_2d(a.nrows(), 2, 3);
        DistCsrMatrix::from_global(&a, &d)
    }

    #[test]
    fn expand_schedule_is_aligned_with_the_import_plan() {
        let dm = dist_matrix();
        for r in 0..dm.nprocs() {
            let plan = dm.compiled.expand_rank(r);
            assert_eq!(plan.npacks(), dm.import.sends[r].len());
            assert_eq!(plan.nunpacks(), dm.import.recvs[r].len());
            // Pack lids resolve to exactly the gids the plan ships, and
            // payload offsets are the prefix sums of message lengths.
            let mut expect_off = 0u32;
            for ((dst, lids, off), (pdst, gids)) in plan.packs().zip(&dm.import.sends[r]) {
                assert_eq!(dst, *pdst);
                assert_eq!(off, expect_off);
                expect_off += lids.len() as u32;
                for (&lid, &g) in lids.iter().zip(gids) {
                    assert_eq!(dm.vmap.gids(r)[lid as usize], g);
                }
            }
            assert_eq!(dm.compiled.expand.payload_doubles(r), expect_off as usize);
            // Unpack positions land on the matching colmap entries, and
            // each slot points at the sender's message for this rank at
            // the sender's recorded payload offset.
            for ((src, slot, off, lids), (psrc, gids)) in plan.unpacks().zip(&dm.import.recvs[r]) {
                assert_eq!(src, *psrc);
                let (dst, sent, soff) = dm.compiled.expand_rank(src as usize).pack(slot as usize);
                assert_eq!(dst, r as u32);
                assert_eq!(off, soff);
                assert_eq!(sent.len(), gids.len());
                for (&lid, &g) in lids.iter().zip(gids) {
                    assert_eq!(dm.blocks[r].colmap[lid as usize], g);
                }
            }
        }
    }

    #[test]
    fn owned_lists_cover_exactly_the_local_entries() {
        let dm = dist_matrix();
        for r in 0..dm.nprocs() {
            let block = &dm.blocks[r];
            let owned_cols = block
                .colmap
                .iter()
                .filter(|&&g| dm.vmap.owner(g) == r as u32)
                .count();
            assert_eq!(dm.compiled.expand_rank(r).n_owned(), owned_cols);
            for (src, dst) in dm.compiled.expand_rank(r).owned_pairs() {
                let g = block.colmap[dst as usize];
                assert_eq!(dm.vmap.owner(g), r as u32);
                assert_eq!(dm.vmap.lid(g), src as usize);
            }
            let owned_rows = block
                .rowmap
                .iter()
                .filter(|&&g| dm.vmap.owner(g) == r as u32)
                .count();
            assert_eq!(dm.compiled.fold_rank(r).n_owned(), owned_rows);
        }
    }

    #[test]
    fn sum_flops_match_the_reference_accounting() {
        let dm = dist_matrix();
        for r in 0..dm.nprocs() {
            let received: u64 = dm.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
            let owned = dm.compiled.fold_rank(r).n_owned() as u64;
            assert_eq!(dm.compiled.sum_flops(r), owned + received);
        }
    }

    #[test]
    fn parallel_compile_is_byte_identical_to_serial() {
        let a = rmat(&RmatConfig::graph500(7), 9);
        let d = MatrixDist::random_2d(a.nrows(), 2, 3, 4);
        let dm = DistCsrMatrix::from_global(&a, &d);
        for threads in [2usize, 5] {
            let par = CompiledSpmv::compile_with(
                &dm.vmap, &dm.blocks, &dm.import, &dm.export, threads, None,
            );
            assert_eq!(par, dm.compiled, "threads {threads}");
        }
        let pool = sf2d_sim::sf2d_par::Pool::new(3);
        let pooled = CompiledSpmv::compile_with(
            &dm.vmap,
            &dm.blocks,
            &dm.import,
            &dm.export,
            3,
            Some(&pool),
        );
        assert_eq!(pooled, dm.compiled);
    }

    #[test]
    fn arena_dedups_shared_segments_and_compression_wins() {
        // A block-1d layout over a dense-ish band graph: many ranks ship
        // structurally identical lid lists, which must be stored once.
        let dm = dist_matrix();
        let c = &dm.compiled;
        // Total entries the schedules *reference* vs entries stored.
        let mut referenced = 0usize;
        for pl in [&c.expand, &c.fold] {
            for r in 0..pl.nranks() {
                referenced += c.expand_rank(0).lids(pl.owned[r]).len();
                for e in pl.pack_entries(r) {
                    referenced += e.lids.len();
                }
                for e in pl.unpack_entries(r) {
                    referenced += e.lids.len();
                }
            }
        }
        assert!(
            c.arena_len() <= referenced,
            "arena {} > referenced {}",
            c.arena_len(),
            referenced
        );
        assert!(c.plan_bytes() > 0);
        assert!(
            c.plan_bytes() < c.replicated_plan_bytes(),
            "compressed {} not below replicated {}",
            c.plan_bytes(),
            c.replicated_plan_bytes()
        );
    }

    #[test]
    fn interner_dedups_by_content_not_hash() {
        let mut i = Interner::default();
        let a = i.intern(&[1, 2, 3]);
        let b = i.intern(&[4, 5]);
        let c = i.intern(&[1, 2, 3]);
        assert_eq!(a, c, "identical segments share a span");
        assert_ne!(a, b);
        assert_eq!(i.arena, vec![1, 2, 3, 4, 5]);
        assert_eq!(i.intern(&[]), IdxSpan { off: 0, len: 0 });
    }

    #[test]
    fn workspace_resizes_to_the_matrix() {
        let dm = dist_matrix();
        let mut ws = SpmvWorkspace::new();
        assert_eq!(ws.threads, 1);
        assert_eq!(ws.wave_count(), 0);
        ws.ensure(&dm.blocks, &dm.compiled, 1);
        // Unbudgeted: one wave, scratch holds every rank's xcols+partials.
        assert_eq!(ws.wave_count(), 1);
        let want: usize = dm
            .blocks
            .iter()
            .map(|b| b.colmap.len() + b.rowmap.len())
            .sum();
        assert_eq!(ws.scratch.len(), want);
        assert_eq!(ws.expand_bufs.len(), dm.nprocs());
        assert_eq!(ws.fold_bufs.len(), dm.nprocs());
        // Re-ensuring with the same matrix is a no-op resize.
        ws.ensure(&dm.blocks, &dm.compiled, 1);
        assert_eq!(ws.scratch.len(), want);
        assert_eq!(SpmvWorkspace::with_threads(0).threads, 1);
    }

    #[test]
    fn budgeted_workspace_plans_multiple_waves_with_smaller_scratch() {
        let dm = dist_matrix();
        let mut resident = SpmvWorkspace::new();
        resident.ensure(&dm.blocks, &dm.compiled, 1);
        let full = resident.scratch_bytes();
        // Budget far below the full footprint: more waves, less scratch.
        let mut ws = SpmvWorkspace::new().with_budget(full / 3);
        assert_eq!(ws.budget(), Some(full / 3));
        ws.ensure(&dm.blocks, &dm.compiled, 1);
        assert!(ws.wave_count() > 1, "waves {}", ws.wave_count());
        assert!(
            ws.scratch_bytes() < full,
            "budgeted scratch {} not below resident {}",
            ws.scratch_bytes(),
            full
        );
        // Waves cover all ranks contiguously.
        let flat: Vec<usize> = ws.waves.iter().flat_map(|w| w.clone()).collect();
        assert_eq!(flat, (0..dm.nprocs()).collect::<Vec<_>>());
    }
}
