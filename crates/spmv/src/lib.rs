#![warn(missing_docs)]
// Loops that index several parallel arrays at once are clearer as range
// loops than as the zipped-iterator rewrites clippy suggests.
#![allow(clippy::needless_range_loop)]

//! # sf2d-spmv
//!
//! Epetra-style distributed sparse matrices and the 4-phase parallel SpMV
//! of the paper's §2.1 and §4, executed on `sf2d-sim`'s logical ranks.
//!
//! The Epetra concepts map over directly:
//!
//! | Epetra | here |
//! |---|---|
//! | `Epetra_Map` (vector / domain / range map) | [`VectorMap`] |
//! | row map / column map of `Epetra_CrsMatrix` | [`RankBlock::rowmap` / `colmap`](distmat::RankBlock) |
//! | `Epetra_Import` (expand) / `Epetra_Export` (fold) | [`CommPlan`] |
//! | `FillComplete()` | [`DistCsrMatrix::from_global`](distmat::DistCsrMatrix::from_global) |
//!
//! As in Epetra, the four maps fully determine the communication; the
//! importer and exporter are constructed transparently from them, and the
//! communication is point-to-point.

pub mod compiled;
pub mod diagnose;
pub mod distmat;
pub mod map;
pub mod migrate;
pub mod multivec;
pub mod operator;
pub mod plan;
pub mod reference;
pub mod resilient;
pub mod spmv;

pub use compiled::{
    CompiledSpmv, IdxSpan, PackEntry, PhasePlan, RankPlan, SpmvWorkspace, UnpackEntry,
};
pub use diagnose::{diagnose_spmv, Bottleneck, PhaseDiagnosis};
pub use distmat::{DistCsrMatrix, RankBlock};
pub use map::VectorMap;
pub use migrate::MigrationPlan;
pub use multivec::{DistMultiVector, DistVector};
pub use operator::{LinearOperator, NormalizedLaplacianOp, PlainSpmvOp, ShiftedOp};
pub use plan::CommPlan;
pub use resilient::{
    gather_chaos, power_iterate, power_iterate_chaos, scatter_add_chaos, spmv_chaos, ChaosSpmvOp,
    CHECKPOINT_EVERY,
};
pub use spmv::{
    gather_executions, spmm, spmm_chaos_with, spmm_with, spmv, spmv_chaos_with, spmv_with,
};
