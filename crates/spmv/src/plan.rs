//! Communication plans: the Import (expand) and Export (fold) of Epetra.
//!
//! A [`CommPlan`] is built once from the maps (like Epetra's
//! `FillComplete()`), then executed every SpMV. Messages carry only values
//! — the index lists live in the plan on both sides — so communication
//! volume is exactly "number of doubles sent", the unit of the paper's
//! Table 3.

use sf2d_sim::cost::PhaseCost;
use sf2d_sim::runtime::route_sequential;

use crate::map::VectorMap;

/// A static point-to-point communication plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommPlan {
    p: usize,
    /// `sends[rank]` = `(dst, global ids whose values to send)`, destinations
    /// ascending, gids ascending within each destination.
    pub sends: Vec<Vec<(u32, Vec<u32>)>>,
    /// Mirror image: `recvs[rank]` = `(src, gids that will arrive)`.
    pub recvs: Vec<Vec<(u32, Vec<u32>)>>,
}

impl CommPlan {
    /// Builds a gather plan: rank `r` needs the values of `needed[r]`
    /// (sorted gids); each is supplied by its owner in `source`. Gids owned
    /// by `r` itself are skipped (no self-messages).
    pub fn gather(needed: &[Vec<u32>], source: &VectorMap) -> CommPlan {
        let p = source.nprocs();
        assert_eq!(needed.len(), p, "one needed-list per rank");
        let mut sends: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); p];
        let mut recvs: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); p];

        // Group each rank's needs by owner; needed lists are sorted, so the
        // per-owner gid lists come out sorted too.
        for (r, need) in needed.iter().enumerate() {
            // A real assert (not debug_assert): plans are built once per
            // matrix, the check is linear, and an unsorted need-list would
            // silently desync the compiled pack/unpack schedules.
            assert!(
                need.windows(2).all(|w| w[0] < w[1]),
                "needed list must be sorted"
            );
            // Group by owner via (owner, gid) pairs and a stable sort —
            // not a `vec![Vec::new(); p]` scratch table, which would make
            // plan construction O(p²) across ranks and dominate
            // FillComplete at p = 16,384 where most ranks need only a
            // handful of remote gids. The stable sort keeps gids
            // ascending within each owner; owners come out ascending.
            let mut pairs: Vec<(u32, u32)> = need
                .iter()
                .map(|&gid| (source.owner(gid), gid))
                .filter(|&(o, _)| o as usize != r)
                .collect();
            pairs.sort_by_key(|&(o, _)| o);
            let mut i = 0;
            while i < pairs.len() {
                let owner = pairs[i].0;
                let start = i;
                while i < pairs.len() && pairs[i].0 == owner {
                    i += 1;
                }
                recvs[r].push((owner, pairs[start..i].iter().map(|&(_, g)| g).collect()));
            }
        }
        // Mirror receives into sends, destination-ascending.
        for r in 0..p {
            for (src, gids) in &recvs[r] {
                sends[*src as usize].push((r as u32, gids.clone()));
            }
        }
        for s in &mut sends {
            s.sort_by_key(|(dst, _)| *dst);
        }
        CommPlan { p, sends, recvs }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// Send-side cost per rank: one message per destination, 8 bytes per
    /// value.
    pub fn send_costs(&self) -> Vec<PhaseCost> {
        self.sends
            .iter()
            .map(|out| {
                let msgs = out.len() as u64;
                let doubles: u64 = out.iter().map(|(_, g)| g.len() as u64).sum();
                PhaseCost::comm(msgs, 8 * doubles)
            })
            .collect()
    }

    /// Full per-rank phase cost: each message charges latency and bytes at
    /// **both** endpoints. This is what the SpMV phases use — a hub rank
    /// that receives from everyone pays for it, which is how receive-side
    /// hot spots slow the paper's block layouts.
    pub fn phase_costs(&self) -> Vec<PhaseCost> {
        let mut costs = self.send_costs();
        for (r, inbox) in self.recvs.iter().enumerate() {
            let msgs = inbox.len() as u64;
            let doubles: u64 = inbox.iter().map(|(_, g)| g.len() as u64).sum();
            costs[r] = costs[r].add(&PhaseCost::comm(msgs, 8 * doubles));
        }
        costs
    }

    /// Total doubles moved by one execution (each planned gid is one
    /// double in flight, so the runtime's traffic accounting applies
    /// directly to the plan's send lists).
    pub fn total_volume(&self) -> usize {
        sf2d_sim::runtime::traffic_volume(&self.sends)
    }

    /// Max messages sent by any rank.
    pub fn max_send_msgs(&self) -> usize {
        self.sends.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Executes the plan as a **gather**: values live in `locals` (aligned
    /// to `source`'s local orders); returns, per rank, the received
    /// `(gid, value)` pairs, sources ascending (deterministic).
    pub fn execute_gather(&self, source: &VectorMap, locals: &[Vec<f64>]) -> Vec<Vec<(u32, f64)>> {
        assert_eq!(locals.len(), self.p);
        let sends: Vec<Vec<(u32, Vec<f64>)>> = self
            .sends
            .iter()
            .enumerate()
            .map(|(r, out)| {
                out.iter()
                    .map(|(dst, gids)| {
                        let vals: Vec<f64> =
                            gids.iter().map(|&g| locals[r][source.lid(g)]).collect();
                        (*dst, vals)
                    })
                    .collect()
            })
            .collect();
        let delivered = route_sequential(self.p, sends);

        // Pair arriving values with the gids the plan says they carry.
        delivered
            .into_iter()
            .enumerate()
            .map(|(r, inbox)| {
                let mut out = Vec::new();
                debug_assert_eq!(inbox.len(), self.recvs[r].len());
                for (msg, (src, gids)) in inbox.iter().zip(&self.recvs[r]) {
                    assert_eq!(msg.src, *src, "plan/traffic mismatch at rank {r}");
                    assert_eq!(msg.data.len(), gids.len(), "short message at rank {r}");
                    out.extend(gids.iter().copied().zip(msg.data.iter().copied()));
                }
                out
            })
            .collect()
    }

    /// Executes the plan in reverse as a **scatter-add** (the fold/export):
    /// rank `r` holds `contributions[r]` = values for the gids in its
    /// *recv* lists (i.e. the plan was built with `gather(contributed,
    /// target)`), which travel back to the gid owners and are summed into
    /// `locals` there.
    ///
    /// This mirrors Epetra: an `Export` is an `Import` executed backwards.
    pub fn execute_scatter_add(
        &self,
        target: &VectorMap,
        contributions: &[Vec<(u32, f64)>],
        locals: &mut [Vec<f64>],
    ) {
        assert_eq!(contributions.len(), self.p);
        // Reverse traffic: what `recvs[r]` describes, rank r now sends.
        let sends: Vec<Vec<(u32, Vec<f64>)>> = (0..self.p)
            .map(|r| {
                let mut lookup: std::collections::HashMap<u32, f64> =
                    contributions[r].iter().copied().collect();
                self.recvs[r]
                    .iter()
                    .map(|(owner, gids)| {
                        let vals: Vec<f64> = gids
                            .iter()
                            .map(|g| lookup.remove(g).expect("missing contribution"))
                            .collect();
                        (*owner, vals)
                    })
                    .collect()
            })
            .collect();
        let delivered = route_sequential(self.p, sends);
        for (r, inbox) in delivered.into_iter().enumerate() {
            // The reverse of `sends[r]` arrives here; match against the
            // forward plan's send lists to recover gids.
            let expect = &self.sends[r];
            debug_assert_eq!(inbox.len(), expect.len());
            for (msg, (dst, gids)) in inbox.iter().zip(expect) {
                assert_eq!(msg.src, *dst, "reverse plan mismatch at rank {r}");
                for (&gid, &val) in gids.iter().zip(&msg.data) {
                    locals[r][target.lid(gid)] += val;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_partition::MatrixDist;

    fn map3() -> VectorMap {
        // 6 entries, block over 3 ranks: rank r owns {2r, 2r+1}.
        VectorMap::from_dist(&MatrixDist::block_1d(6, 3))
    }

    #[test]
    fn gather_plan_structure() {
        let m = map3();
        // Rank 0 needs gid 2 (rank 1) and 5 (rank 2); rank 2 needs 0.
        let needed = vec![vec![2, 5], vec![], vec![0]];
        let plan = CommPlan::gather(&needed, &m);
        assert_eq!(plan.recvs[0], vec![(1, vec![2]), (2, vec![5])]);
        assert_eq!(plan.sends[1], vec![(0, vec![2])]);
        assert_eq!(plan.sends[2], vec![(0, vec![5])]);
        assert_eq!(plan.sends[0], vec![(2, vec![0])]);
        assert_eq!(plan.total_volume(), 3);
        assert_eq!(plan.max_send_msgs(), 1);
    }

    #[test]
    fn own_gids_skipped() {
        let m = map3();
        let needed = vec![vec![0, 1, 2], vec![], vec![]];
        let plan = CommPlan::gather(&needed, &m);
        assert_eq!(plan.total_volume(), 1); // only gid 2 is remote
    }

    #[test]
    fn gather_execution_moves_values() {
        let m = map3();
        let needed = vec![vec![2, 5], vec![0], vec![1]];
        let plan = CommPlan::gather(&needed, &m);
        // locals[r][lid] = gid value = gid * 10.
        let locals: Vec<Vec<f64>> = (0..3)
            .map(|r| m.gids(r).iter().map(|&g| g as f64 * 10.0).collect())
            .collect();
        let got = plan.execute_gather(&m, &locals);
        assert_eq!(got[0], vec![(2, 20.0), (5, 50.0)]);
        assert_eq!(got[1], vec![(0, 0.0)]);
        assert_eq!(got[2], vec![(1, 10.0)]);
    }

    #[test]
    fn scatter_add_accumulates_at_owner() {
        let m = map3();
        // Ranks 0 and 1 both contribute to gid 4 (owned by rank 2).
        let contributed = vec![vec![4], vec![4], vec![]];
        let plan = CommPlan::gather(&contributed, &m);
        let mut locals: Vec<Vec<f64>> = (0..3).map(|r| vec![0.0; m.nlocal(r)]).collect();
        let contributions = vec![vec![(4u32, 1.5)], vec![(4u32, 2.5)], vec![]];
        plan.execute_scatter_add(&m, &contributions, &mut locals);
        assert_eq!(locals[2][m.lid(4)], 4.0);
        assert_eq!(locals[0], vec![0.0, 0.0]);
    }

    #[test]
    fn costs_match_plan_shape() {
        let m = map3();
        let needed = vec![vec![2, 3, 4, 5], vec![], vec![]];
        let plan = CommPlan::gather(&needed, &m);
        let costs = plan.send_costs();
        // Rank 1 sends {2,3}, rank 2 sends {4,5}: 1 msg, 16 bytes each.
        assert_eq!(costs[1].msgs, 1);
        assert_eq!(costs[1].bytes, 16);
        assert_eq!(costs[0].msgs, 0);
        assert_eq!(plan.total_volume(), 4);
    }

    #[test]
    fn empty_plan_is_free() {
        let m = map3();
        let plan = CommPlan::gather(&vec![vec![]; 3], &m);
        assert_eq!(plan.total_volume(), 0);
        let locals: Vec<Vec<f64>> = (0..3).map(|r| vec![1.0; m.nlocal(r)]).collect();
        let got = plan.execute_gather(&m, &locals);
        assert!(got.iter().all(|g| g.is_empty()));
    }
}
