//! The vector map: which rank owns each global vector entry.
//!
//! Plays the role of Epetra's domain/range `Epetra_Map` plus its directory:
//! O(1) owner and local-id lookup for any global id. In the paper's setup
//! `x` and `y` share one distribution (no remap between iterations), so a
//! single `VectorMap` serves as both domain and range map.

use sf2d_partition::NonzeroLayout;

/// Global-to-(rank, local id) mapping for vector entries.
#[derive(Debug, Clone)]
pub struct VectorMap {
    /// Owner rank per global id.
    owner: Vec<u32>,
    /// Local id within the owner, per global id.
    lid: Vec<u32>,
    /// Global ids per rank, ascending (the rank's local ordering).
    gids: Vec<Vec<u32>>,
}

impl VectorMap {
    /// Builds the map from a layout's vector ownership.
    pub fn from_dist<L: NonzeroLayout + ?Sized>(dist: &L) -> VectorMap {
        let n = dist.n();
        let p = dist.nprocs();
        let mut owner = Vec::with_capacity(n);
        let mut gids: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut lid = vec![0u32; n];
        for k in 0..n {
            let o = dist.vector_owner(k as u32);
            owner.push(o);
            lid[k] = gids[o as usize].len() as u32;
            gids[o as usize].push(k as u32);
        }
        VectorMap { owner, lid, gids }
    }

    /// Number of global entries.
    #[inline]
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// Number of ranks.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.gids.len()
    }

    /// Owner rank of global id `gid`.
    #[inline]
    pub fn owner(&self, gid: u32) -> u32 {
        self.owner[gid as usize]
    }

    /// Local id of `gid` within its owner.
    #[inline]
    pub fn lid(&self, gid: u32) -> usize {
        self.lid[gid as usize] as usize
    }

    /// The global ids owned by `rank`, in local order (ascending).
    #[inline]
    pub fn gids(&self, rank: usize) -> &[u32] {
        &self.gids[rank]
    }

    /// Number of entries owned by `rank`.
    #[inline]
    pub fn nlocal(&self, rank: usize) -> usize {
        self.gids[rank].len()
    }

    /// Whether two maps describe the **same distribution** — identical
    /// owner and local-id assignment for every global entry. This is the
    /// structural compatibility check the SpMV kernels require: two maps
    /// of equal length but different ownership would silently misalign
    /// every local slice.
    pub fn same_distribution(&self, other: &VectorMap) -> bool {
        self.owner == other.owner && self.lid == other.lid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_partition::MatrixDist;

    #[test]
    fn block_map_structure() {
        let d = MatrixDist::block_1d(10, 3);
        let m = VectorMap::from_dist(&d);
        assert_eq!(m.n(), 10);
        assert_eq!(m.nprocs(), 3);
        assert_eq!(m.gids(0), &[0, 1, 2, 3]);
        assert_eq!(m.gids(2), &[7, 8, 9]);
        assert_eq!(m.owner(5), 1);
        assert_eq!(m.lid(5), 1);
    }

    #[test]
    fn lids_are_consistent_with_gid_lists() {
        let d = MatrixDist::random_1d(100, 7, 3);
        let m = VectorMap::from_dist(&d);
        for gid in 0..100u32 {
            let o = m.owner(gid) as usize;
            assert_eq!(m.gids(o)[m.lid(gid)], gid);
        }
        // Every entry owned exactly once.
        let total: usize = (0..7).map(|r| m.nlocal(r)).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn same_distribution_is_structural() {
        let a = VectorMap::from_dist(&MatrixDist::block_1d(30, 3));
        let b = VectorMap::from_dist(&MatrixDist::block_1d(30, 3));
        let c = VectorMap::from_dist(&MatrixDist::random_1d(30, 3, 7));
        assert!(a.same_distribution(&b));
        assert!(a.same_distribution(&a));
        // Same length, same rank count, different ownership.
        assert_eq!(a.n(), c.n());
        assert!(!a.same_distribution(&c));
    }

    #[test]
    fn gid_lists_sorted() {
        let d = MatrixDist::random_1d(50, 4, 9);
        let m = VectorMap::from_dist(&d);
        for r in 0..4 {
            assert!(m.gids(r).windows(2).all(|w| w[0] < w[1]));
        }
    }
}
