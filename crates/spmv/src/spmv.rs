//! The 4-phase distributed SpMV of the paper's §2.1.
//!
//! ```text
//! 1. Expand:  send x_j to the ranks owning a nonzero a_ij   (import plan)
//! 2. Local:   y_loc += A_loc x_loc
//! 3. Fold:    send partial y_i to the owner of y_i          (export plan)
//! 4. Sum:     y = Σ received partials
//! ```
//!
//! 1D layouts skip phases 3–4 (their export plans are empty, costing
//! nothing), exactly as the paper notes "for 1D distributions, only the
//! first two phases are necessary".
//!
//! Execution runs on the **compiled** local-index schedules built at
//! matrix construction ([`CompiledSpmv`](crate::compiled::CompiledSpmv)):
//! no gid resolution happens per iteration, message payloads live in flat
//! per-rank `f64` buffers owned by the [`SpmvWorkspace`] and are read in
//! place by their destination rank at the sender's compiled payload
//! offset (zero-copy transport, allocation-free at steady state), and the
//! per-rank phase work can fan out across OS threads via the workspace's
//! `threads` knob — bit-identical to sequential, because ranks only touch
//! disjoint slices.
//!
//! [`spmv`] and [`spmm`] share one executor: an SpMV is a width-1 SpMM
//! (same schedules, same payload layout, costs widened by
//! [`PhaseCost::widened`] — a no-op at width 1). When the workspace
//! carries a **live-memory budget**, the unpack/compute/fold work runs in
//! contiguous rank waves over one reusable scratch arena
//! ([`sf2d_sim::wave`]): a rank's phase work reads only cross-rank state
//! frozen before the phase (expand buffers written in phase 1, fold
//! buffers read only in phase 4), so wave scheduling is invisible to both
//! the results and the ledger. The original gid-based executors live on
//! in [`reference`](crate::reference) as the oracle; the property tests in
//! `tests/proptest_compiled.rs` pin this path to it bit-for-bit, ledger
//! included.
//!
//! [`spmv_chaos_with`] / [`spmm_chaos_with`] are the same executor with
//! both exchanges *also* mirrored onto a [`ChaosRuntime`] wire: the
//! verify-retry protocol heals every injected fault, the healed payloads
//! are asserted bit-identical to the resident buffers the kernel reads,
//! and only the ledger can differ — by the `Retransmit` supersteps that
//! itemize the extra traffic (skipped entirely at rate 0, where the run
//! is byte-identical, ledger included). Chaos superstep indices for
//! [`FaultScript`](sf2d_sim::fault) targeting: the k-th chaos-routed
//! product routes its expand exchange at step `2k` and its fold exchange
//! at step `2k + 1`.

use std::cell::Cell;

use sf2d_obs::{trace_span, PhaseKind};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_sim::fault::{bill_retransmit, ChaosRuntime};
use sf2d_sim::runtime::par_ranks;

use crate::compiled::RankPlan;
use crate::compiled::SpmvWorkspace;
use crate::distmat::DistCsrMatrix;
use crate::multivec::{DistMultiVector, DistVector};

thread_local! {
    // Thread-local (not a global atomic) so parallel test threads don't
    // see each other's counts.
    static GATHER_EXECUTIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of expand-phase gather executions issued **on this thread** so
/// far. [`spmv`] issues one per call; [`spmm`] issues one per call
/// *regardless of the column count* — the whole point of blocking.
pub fn gather_executions() -> u64 {
    GATHER_EXECUTIONS.with(|c| c.get())
}

fn note_gather() {
    GATHER_EXECUTIONS.with(|c| c.set(c.get() + 1));
}

fn assert_maps_compatible(a: &DistCsrMatrix, x: &DistVector, y: &DistVector) {
    assert!(
        std::sync::Arc::ptr_eq(&x.map, &a.vmap) || x.map.same_distribution(&a.vmap),
        "x map mismatch"
    );
    assert!(
        std::sync::Arc::ptr_eq(&y.map, &a.vmap) || y.map.same_distribution(&a.vmap),
        "y map mismatch"
    );
}

/// Column access shared by [`DistVector`] (one column) and
/// [`DistMultiVector`] — what lets SpMV and SpMM share one executor.
trait ColumnAccess: Sync {
    fn ncols(&self) -> usize;
    fn col(&self, r: usize, c: usize) -> &[f64];
}

impl ColumnAccess for DistVector {
    fn ncols(&self) -> usize {
        1
    }
    #[inline]
    fn col(&self, r: usize, _c: usize) -> &[f64] {
        &self.locals[r]
    }
}

impl ColumnAccess for DistMultiVector {
    fn ncols(&self) -> usize {
        self.ncols
    }
    #[inline]
    fn col(&self, r: usize, c: usize) -> &[f64] {
        DistMultiVector::col(self, r, c)
    }
}

/// Trace-span labels, so the shared executor reports as `spmv:*` or
/// `spmm:*` depending on the entry point.
struct SpanNames {
    pack: &'static str,
    compute: &'static str,
    fold_pack: &'static str,
    sum: &'static str,
}

const SPMV_SPANS: SpanNames = SpanNames {
    pack: "spmv:expand-pack",
    compute: "spmv:unpack-compute",
    fold_pack: "spmv:fold-pack",
    sum: "spmv:sum-unpack",
};

const SPMM_SPANS: SpanNames = SpanNames {
    pack: "spmm:expand-pack",
    compute: "spmm:unpack-compute",
    fold_pack: "spmm:fold-pack",
    sum: "spmm:sum-unpack",
};

/// Computes `y = A x`, charging each phase to the ledger.
///
/// Convenience wrapper over [`spmv_with`] that allocates a throwaway
/// sequential workspace — fine for one-off products; iterative callers
/// should hold a [`SpmvWorkspace`] across calls.
///
/// # Panics
/// Panics if `x` or `y` is on a different distribution than the matrix.
pub fn spmv(a: &DistCsrMatrix, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
    spmv_with(a, x, y, ledger, &mut SpmvWorkspace::new());
}

/// Computes `y = A x` through a reusable workspace: scratch buffers are
/// borrowed from `ws` (resized on first use with each matrix), the
/// per-rank phase work fans out across `ws.threads` OS threads, and a
/// workspace budget executes the rank work in bounded-memory waves.
///
/// # Panics
/// Panics if `x` or `y` is on a different distribution than the matrix.
pub fn spmv_with(
    a: &DistCsrMatrix,
    x: &DistVector,
    y: &mut DistVector,
    ledger: &mut CostLedger,
    ws: &mut SpmvWorkspace,
) {
    assert_maps_compatible(a, x, y);
    run_phases(a, x, &mut y.locals, ledger, ws, &SPMV_SPANS, None);
}

/// [`spmv_with`] with both exchanges also routed through a chaos wire.
///
/// The healed deliveries are asserted bit-identical to the resident
/// payload buffers (message by message), so the result — and, at rate 0,
/// the ledger — is byte-identical to the plain run; injected faults only
/// add `Retransmit` supersteps.
pub fn spmv_chaos_with(
    a: &DistCsrMatrix,
    x: &DistVector,
    y: &mut DistVector,
    ledger: &mut CostLedger,
    ws: &mut SpmvWorkspace,
    rt: &mut ChaosRuntime,
) {
    assert_maps_compatible(a, x, y);
    run_phases(a, x, &mut y.locals, ledger, ws, &SPMV_SPANS, Some(rt));
}

/// Blocked SpMM `Y = A X` over a [`DistMultiVector`].
///
/// Convenience wrapper over [`spmm_with`] with a throwaway workspace.
pub fn spmm(
    a: &DistCsrMatrix,
    x: &DistMultiVector,
    y: &mut DistMultiVector,
    ledger: &mut CostLedger,
) {
    spmm_with(a, x, y, ledger, &mut SpmvWorkspace::new());
}

/// Blocked SpMM `Y = A X` through a reusable workspace.
///
/// Identical communication *pattern* to [`spmv`] but the expand and fold
/// each execute as **one** gather whose messages interleave all `ncols`
/// values of an entry (gid-major stride: value `k·m + c` is column `c` of
/// the message's `k`-th entry). Message counts stay the same while bytes
/// scale with `ncols` — the latency-amortization that makes block Krylov
/// methods communication-efficient. Costs are charged accordingly
/// (msgs ×1, bytes × ncols, flops × ncols).
pub fn spmm_with(
    a: &DistCsrMatrix,
    x: &DistMultiVector,
    y: &mut DistMultiVector,
    ledger: &mut CostLedger,
    ws: &mut SpmvWorkspace,
) {
    assert_eq!(x.ncols, y.ncols, "column count mismatch");
    assert!(
        std::sync::Arc::ptr_eq(&x.map, &a.vmap) || x.map.same_distribution(&a.vmap),
        "x map mismatch"
    );
    assert!(
        std::sync::Arc::ptr_eq(&y.map, &a.vmap) || y.map.same_distribution(&a.vmap),
        "y map mismatch"
    );
    run_phases(a, x, &mut y.locals, ledger, ws, &SPMM_SPANS, None);
}

/// [`spmm_with`] with both exchanges also routed through a chaos wire —
/// the serving fault model: a coalesced query batch is one SpMM whose
/// expand and fold payloads ride the misbehaving transport and must heal
/// to the fault-free bits. See [`spmv_chaos_with`] for the contract.
pub fn spmm_chaos_with(
    a: &DistCsrMatrix,
    x: &DistMultiVector,
    y: &mut DistMultiVector,
    ledger: &mut CostLedger,
    ws: &mut SpmvWorkspace,
    rt: &mut ChaosRuntime,
) {
    assert_eq!(x.ncols, y.ncols, "column count mismatch");
    assert!(
        std::sync::Arc::ptr_eq(&x.map, &a.vmap) || x.map.same_distribution(&a.vmap),
        "x map mismatch"
    );
    assert!(
        std::sync::Arc::ptr_eq(&y.map, &a.vmap) || y.map.same_distribution(&a.vmap),
        "y map mismatch"
    );
    run_phases(a, x, &mut y.locals, ledger, ws, &SPMM_SPANS, Some(rt));
}

/// Mirrors one phase's flat resident payload buffers onto the chaos wire
/// and checks the healed deliveries against what the plain executor reads
/// in place: same sources, same order, same bits. Extra fault traffic is
/// billed as a `Retransmit` superstep (a no-op when nothing fired).
fn route_phase_chaos<'a>(
    rt: &mut ChaosRuntime,
    ledger: &mut CostLedger,
    p: usize,
    m: usize,
    bufs: &[Vec<f64>],
    rank_plan: impl Fn(usize) -> RankPlan<'a>,
    what: &str,
) {
    let sends: Vec<Vec<(u32, Vec<f64>)>> = (0..p)
        .map(|r| {
            rank_plan(r)
                .packs()
                .map(|(dst, lids, off)| {
                    let off = off as usize * m;
                    (dst, bufs[r][off..off + lids.len() * m].to_vec())
                })
                .collect()
        })
        .collect();
    let (delivered, extra) = rt.route(p, sends);
    bill_retransmit(ledger, &extra);
    for (r, inbox) in delivered.iter().enumerate() {
        let plan = rank_plan(r);
        assert_eq!(
            inbox.len(),
            plan.nunpacks(),
            "{what}: wrong message count at rank {r}"
        );
        for (msg, (src, _slot, off, lids)) in inbox.iter().zip(plan.unpacks()) {
            assert_eq!(msg.src, src, "{what}: source mismatch at rank {r}");
            let off = off as usize * m;
            let resident = &bufs[src as usize][off..off + lids.len() * m];
            assert_eq!(
                msg.data.len(),
                resident.len(),
                "{what}: short message at rank {r}"
            );
            let same_bits = msg
                .data
                .iter()
                .zip(resident.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "{what}: corrupted delivery at rank {r}");
        }
    }
}

/// The shared 4-phase executor at SpMM width `x.ncols()` (1 = SpMV).
///
/// `y_locals[r]` holds rank `r`'s output, column-major (`yl[c·nl + lid]`).
/// Phases 2–3 run wave-by-wave over the workspace's scratch arena; the
/// ledger charges the four canonical supersteps in order regardless of
/// the wave count, so budgeted and all-resident runs have byte-identical
/// histories. With a chaos runtime, the expand and fold payloads are
/// additionally mirrored onto the fault-injecting wire right after their
/// supersteps are charged (both phases route even when a plan is empty,
/// so routing-step numbering stays fixed at two steps per product).
fn run_phases<X: ColumnAccess>(
    a: &DistCsrMatrix,
    x: &X,
    y_locals: &mut [Vec<f64>],
    ledger: &mut CostLedger,
    ws: &mut SpmvWorkspace,
    spans: &SpanNames,
    mut chaos: Option<&mut ChaosRuntime>,
) {
    let m = x.ncols();
    ws.ensure(&a.blocks, &a.compiled, m);
    let threads = ws.threads;
    let compiled = &a.compiled;

    // Phase 1 — expand: pack outgoing x values straight off the compiled
    // lid lists into the flat per-rank send buffers, gid-major strided.
    // Transport is zero-copy: the destination reads each payload in place
    // at the sender's payload offset recorded in its unpack entries.
    trace_span!(PhaseKind::Pack, spans.pack, {
        par_ranks(threads, &mut ws.expand_bufs, |r, buf| {
            buf.clear();
            for (_dst, lids, _off) in compiled.expand_rank(r).packs() {
                for &lid in lids {
                    for c in 0..m {
                        buf.push(x.col(r, c)[lid as usize]);
                    }
                }
            }
        })
    });
    note_gather();
    let costs: Vec<PhaseCost> = compiled
        .expand_costs
        .iter()
        .map(|c| c.widened(m as u64))
        .collect();
    ledger.superstep(Phase::Expand, &costs);
    if let Some(rt) = chaos.as_deref_mut() {
        route_phase_chaos(
            rt,
            ledger,
            a.nprocs(),
            m,
            &ws.expand_bufs,
            |r| compiled.expand_rank(r),
            "spmv expand",
        );
    }

    // Phases 2–3, wave by wave: each wave carves per-rank (xcols,
    // partials) views out of the shared scratch arena, runs unpack +
    // local kernel, then fold-packs and folds owned rows while the
    // partials are still live. Safe to interleave across waves because a
    // rank's phase-2/3 work reads only its own views plus the expand
    // buffers (all written in phase 1); no zeroing is needed because
    // xcols is fully covered by owned + unpack entries and the local
    // kernel overwrites its whole output slice.
    let waves = ws.waves.clone();
    let ebufs = &ws.expand_bufs;
    let scratch = &mut ws.scratch;
    let fold_bufs = &mut ws.fold_bufs;
    for w in &waves {
        let mut rest: &mut [f64] = scratch;
        let mut views: Vec<(&mut [f64], &mut [f64])> = Vec::with_capacity(w.len());
        for r in w.clone() {
            let (xc, r1) = rest.split_at_mut(a.blocks[r].colmap.len());
            let (pt, r2) = r1.split_at_mut(m * a.blocks[r].rowmap.len());
            rest = r2;
            views.push((xc, pt));
        }

        // Phase 2 — local compute: assemble xcols (owned copies +
        // unpacked messages; the two cover every position exactly once)
        // and run the local kernel per column into the partials view.
        trace_span!(PhaseKind::LocalCompute, spans.compute, {
            par_ranks(threads, &mut views, |i, (xcols, partials)| {
                let r = w.start + i;
                let plan = compiled.expand_rank(r);
                let block = &a.blocks[r];
                let rl = block.rowmap.len();
                for c in 0..m {
                    let xc = x.col(r, c);
                    for (src, dst) in plan.owned_pairs() {
                        xcols[dst as usize] = xc[src as usize];
                    }
                    for (src, _slot, off, lids) in plan.unpacks() {
                        let off = off as usize * m;
                        let data = &ebufs[src as usize][off..off + lids.len() * m];
                        for (k, &lid) in lids.iter().enumerate() {
                            xcols[lid as usize] = data[k * m + c];
                        }
                    }
                    block
                        .local
                        .spmv_dense_into(xcols, &mut partials[c * rl..(c + 1) * rl]);
                }
            })
        });

        // Phase 3 — fold: ship contributed partials through the flat
        // fold buffers; owned rows sum locally (per y element: owned add
        // first, then messages by ascending source in phase 4 — the
        // reference executor's per-element order).
        let views = &views;
        trace_span!(PhaseKind::Pack, spans.fold_pack, {
            par_ranks(threads, &mut fold_bufs[w.clone()], |i, buf| {
                let r = w.start + i;
                let partials: &[f64] = &*views[i].1;
                let rl = a.blocks[r].rowmap.len();
                buf.clear();
                for (_owner, idxs, _off) in compiled.fold_rank(r).packs() {
                    for &pi in idxs {
                        for c in 0..m {
                            buf.push(partials[c * rl + pi as usize]);
                        }
                    }
                }
            })
        });
        par_ranks(threads, &mut y_locals[w.clone()], |i, yl| {
            let r = w.start + i;
            let partials: &[f64] = &*views[i].1;
            let rl = a.blocks[r].rowmap.len();
            let nl = a.vmap.nlocal(r);
            yl.fill(0.0);
            for c in 0..m {
                for (pi, lid) in compiled.fold_rank(r).owned_pairs() {
                    yl[c * nl + lid as usize] += partials[c * rl + pi as usize];
                }
            }
        });
    }
    let costs: Vec<PhaseCost> = compiled
        .compute_costs
        .iter()
        .map(|c| c.widened(m as u64))
        .collect();
    ledger.superstep(Phase::LocalCompute, &costs);
    let costs: Vec<PhaseCost> = compiled
        .fold_costs
        .iter()
        .map(|c| c.widened(m as u64))
        .collect();
    ledger.superstep(Phase::Fold, &costs);
    if let Some(rt) = chaos {
        route_phase_chaos(
            rt,
            ledger,
            a.nprocs(),
            m,
            &ws.fold_bufs,
            |r| compiled.fold_rank(r),
            "spmv fold",
        );
    }

    // Phase 4 — sum: add arriving partials in plan order (sources
    // ascending — the same per-element order as the reference executor,
    // which is what makes the result bit-identical).
    let fbufs = &ws.fold_bufs;
    trace_span!(PhaseKind::Unpack, spans.sum, {
        par_ranks(threads, y_locals, |r, yl| {
            let nl = a.vmap.nlocal(r);
            for (src, _slot, off, lids) in compiled.fold_rank(r).unpacks() {
                let off = off as usize * m;
                let data = &fbufs[src as usize][off..off + lids.len() * m];
                for (k, &lid) in lids.iter().enumerate() {
                    for c in 0..m {
                        yl[c * nl + lid as usize] += data[k * m + c];
                    }
                }
            }
        })
    });
    let costs: Vec<PhaseCost> = compiled
        .sum_costs
        .iter()
        .map(|c| c.widened(m as u64))
        .collect();
    ledger.superstep(Phase::Sum, &costs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_partition::{grid_shape, GpConfig, MatrixDist};
    use sf2d_sim::{CostLedger, Machine};

    fn check_layout(a: &sf2d_graph::CsrMatrix, dist: &MatrixDist) {
        let dm = DistCsrMatrix::from_global(a, dist);
        let x_global: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 31 + 7) % 13) as f64 - 6.0)
            .collect();
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &x_global);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        let want = a.spmv_dense(&x_global);
        let got = y.to_global();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "row {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn all_layouts_match_sequential_on_rmat() {
        let a = rmat(&RmatConfig::graph500(7), 11);
        let n = a.nrows();
        for p in [1usize, 4, 6] {
            let (pr, pc) = grid_shape(p);
            check_layout(&a, &MatrixDist::block_1d(n, p));
            check_layout(&a, &MatrixDist::random_1d(n, p, 5));
            check_layout(&a, &MatrixDist::block_2d(n, pr, pc));
            check_layout(&a, &MatrixDist::random_2d(n, pr, pc, 6));
        }
    }

    #[test]
    fn gp_layouts_match_sequential() {
        let a = grid_2d(12, 12);
        let g = sf2d_graph::Graph::from_symmetric_matrix(&a);
        let part = sf2d_partition::partition_graph(&g, 6, &GpConfig::default());
        check_layout(&a, &MatrixDist::from_partition_1d(&part));
        let (pr, pc) = grid_shape(6);
        check_layout(&a, &MatrixDist::cartesian_2d(&part, pr, pc, false));
        check_layout(&a, &MatrixDist::cartesian_2d(&part, pr, pc, true));
    }

    #[test]
    fn expand_volume_charged_matches_plan() {
        let a = rmat(&RmatConfig::graph500(6), 2);
        let d = MatrixDist::block_1d(a.nrows(), 4);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        // Unit-alpha, zero-beta/gamma machine: total expand time = max over
        // ranks of (messages sent + received), since both endpoints pay α.
        let m = Machine {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            name: "msgs",
        };
        let mut ledger = CostLedger::new(m);
        spmv(&dm, &x, &mut y, &mut ledger);
        let expand = ledger.by_phase[&Phase::Expand];
        let want = (0..4)
            .map(|r| dm.import.sends[r].len() + dm.import.recvs[r].len())
            .max()
            .unwrap();
        assert_eq!(expand as usize, want);
    }

    #[test]
    fn one_d_has_zero_fold_time() {
        let a = rmat(&RmatConfig::graph500(6), 3);
        let d = MatrixDist::random_1d(a.nrows(), 5, 1);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 3);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        assert_eq!(
            ledger.by_phase.get(&Phase::Fold).copied().unwrap_or(0.0),
            0.0
        );
        assert!(ledger.by_phase[&Phase::Expand] > 0.0);
    }

    #[test]
    fn spmm_matches_column_wise_spmv() {
        let a = rmat(&RmatConfig::graph500(6), 4);
        let d = MatrixDist::block_2d(a.nrows(), 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let n = a.nrows();
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                (0..n)
                    .map(|i| ((i * (c + 2) + 1) % 7) as f64 - 3.0)
                    .collect()
            })
            .collect();
        let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
        let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), 3);
        let mut ledger = CostLedger::new(Machine::cab());
        spmm(&dm, &x, &mut y, &mut ledger);
        for (c, col) in cols.iter().enumerate() {
            let want = a.spmv_dense(col);
            let got = y.col_to_global(c);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "col {c}");
            }
        }
    }

    #[test]
    fn spmm_amortizes_latency_vs_repeated_spmv() {
        let a = rmat(&RmatConfig::graph500(8), 6);
        let d = MatrixDist::random_1d(a.nrows(), 16, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let m = 8usize;

        // m separate SpMVs.
        let x = DistVector::random(Arc::clone(&dm.vmap), 1);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_single = CostLedger::new(Machine::cab());
        for _ in 0..m {
            spmv(&dm, &x, &mut y, &mut l_single);
        }

        // One m-column SpMM.
        let cols: Vec<Vec<f64>> = (0..m).map(|_| x.to_global()).collect();
        let xm = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
        let mut ym = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
        let mut l_block = CostLedger::new(Machine::cab());
        spmm(&dm, &xm, &mut ym, &mut l_block);

        // Same bytes and flops, 1/m the messages: strictly cheaper.
        assert!(
            l_block.total < l_single.total,
            "blocked {} not below repeated {}",
            l_block.total,
            l_single.total
        );
    }

    #[test]
    fn repeated_spmv_accumulates_time_linearly() {
        let a = grid_2d(8, 8);
        let d = MatrixDist::block_2d(64, 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 7);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        let t1 = ledger.total;
        for _ in 0..9 {
            spmv(&dm, &x, &mut y, &mut ledger);
        }
        assert!((ledger.total - 10.0 * t1).abs() < 1e-12 * ledger.total.max(1e-30));
    }

    #[test]
    #[should_panic(expected = "x map mismatch")]
    fn spmv_rejects_structurally_different_x_map() {
        // Same n, same rank count, different ownership: the old
        // length-only check let this through and the result silently
        // misaligned every local slice.
        let a = rmat(&RmatConfig::graph500(6), 9);
        let n = a.nrows();
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_1d(n, 4));
        let other = Arc::new(crate::map::VectorMap::from_dist(&MatrixDist::random_1d(
            n, 4, 3,
        )));
        let x = DistVector::zeros(other);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        spmv(&dm, &x, &mut y, &mut CostLedger::new(Machine::cab()));
    }

    #[test]
    fn equal_distribution_on_a_different_map_instance_is_accepted() {
        // Structural compatibility, not pointer identity, is the contract.
        let a = rmat(&RmatConfig::graph500(6), 9);
        let n = a.nrows();
        let d = MatrixDist::block_1d(n, 4);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let clone_map = Arc::new(crate::map::VectorMap::from_dist(&d));
        let x = DistVector::random(Arc::clone(&clone_map), 2);
        let mut y = DistVector::zeros(clone_map);
        spmv(&dm, &x, &mut y, &mut CostLedger::new(Machine::cab()));
    }

    #[test]
    fn threaded_execution_is_bit_identical_to_sequential() {
        let a = rmat(&RmatConfig::graph500(8), 13);
        let d = MatrixDist::block_2d(a.nrows(), 4, 4);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 5);

        let mut y_seq = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_seq = CostLedger::new(Machine::cab());
        spmv_with(&dm, &x, &mut y_seq, &mut l_seq, &mut SpmvWorkspace::new());

        for threads in [2usize, 7] {
            let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
            let mut l = CostLedger::new(Machine::cab());
            spmv_with(
                &dm,
                &x,
                &mut y,
                &mut l,
                &mut SpmvWorkspace::with_threads(threads),
            );
            for (r, (sl, tl)) in y_seq.locals.iter().zip(&y.locals).enumerate() {
                let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
                let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, tb, "rank {r}, threads {threads}");
            }
            assert_eq!(l.history, l_seq.history, "threads {threads}");
            assert_eq!(l.total.to_bits(), l_seq.total.to_bits());
        }
    }

    #[test]
    fn budgeted_waves_are_bit_identical_to_all_resident() {
        let a = rmat(&RmatConfig::graph500(8), 17);
        let d = MatrixDist::random_2d(a.nrows(), 4, 4, 3);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 9);

        let mut y_full = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_full = CostLedger::new(Machine::cab());
        let mut ws_full = SpmvWorkspace::new();
        spmv_with(&dm, &x, &mut y_full, &mut l_full, &mut ws_full);
        assert_eq!(ws_full.wave_count(), 1);

        // Budgets from "everything" down to "one rank at a time", with
        // and without threads: identical values and ledger histories.
        for budget in [ws_full.scratch_bytes(), ws_full.scratch_bytes() / 4, 0] {
            for threads in [1usize, 3] {
                let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
                let mut l = CostLedger::new(Machine::cab());
                let mut ws = SpmvWorkspace::with_threads(threads).with_budget(budget);
                spmv_with(&dm, &x, &mut y, &mut l, &mut ws);
                if budget == 0 {
                    assert_eq!(ws.wave_count(), dm.nprocs());
                }
                for (r, (sl, tl)) in y_full.locals.iter().zip(&y.locals).enumerate() {
                    let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
                    let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(sb, tb, "rank {r}, budget {budget}, threads {threads}");
                }
                assert_eq!(l.history, l_full.history, "budget {budget}");
                assert_eq!(l.total.to_bits(), l_full.total.to_bits());
            }
        }
    }

    #[test]
    fn budgeted_spmm_matches_unbudgeted_bitwise() {
        let a = rmat(&RmatConfig::graph500(7), 23);
        let d = MatrixDist::block_2d(a.nrows(), 2, 3);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let n = a.nrows();
        let m = 4usize;
        let cols: Vec<Vec<f64>> = (0..m)
            .map(|c| {
                (0..n)
                    .map(|i| ((i * (c + 3) + 5) % 11) as f64 - 5.0)
                    .collect()
            })
            .collect();
        let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);

        let mut y_full = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
        let mut l_full = CostLedger::new(Machine::cab());
        spmm_with(&dm, &x, &mut y_full, &mut l_full, &mut SpmvWorkspace::new());

        let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
        let mut l = CostLedger::new(Machine::cab());
        let mut ws = SpmvWorkspace::new().with_budget(0);
        spmm_with(&dm, &x, &mut y, &mut l, &mut ws);
        assert_eq!(ws.wave_count(), dm.nprocs());
        for (sl, tl) in y_full.locals.iter().zip(&y.locals) {
            let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
            let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, tb);
        }
        assert_eq!(l.history, l_full.history);
        assert_eq!(l.total.to_bits(), l_full.total.to_bits());
    }

    #[test]
    fn spmm_issues_exactly_one_gather_regardless_of_width() {
        let a = rmat(&RmatConfig::graph500(6), 4);
        let d = MatrixDist::block_2d(a.nrows(), 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let n = a.nrows();
        for m in [1usize, 5] {
            let cols: Vec<Vec<f64>> = (0..m)
                .map(|c| (0..n).map(|i| (i * (c + 1)) as f64 / n as f64).collect())
                .collect();
            let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
            let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
            let before = gather_executions();
            spmm(&dm, &x, &mut y, &mut CostLedger::new(Machine::cab()));
            assert_eq!(gather_executions() - before, 1, "ncols {m}");
        }
        // An spmv is likewise one gather.
        let x = DistVector::random(Arc::clone(&dm.vmap), 1);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let before = gather_executions();
        spmv(&dm, &x, &mut y, &mut CostLedger::new(Machine::cab()));
        assert_eq!(gather_executions() - before, 1);
    }

    #[test]
    fn chaos_rate_zero_spmm_is_byte_identical_to_plain() {
        let a = rmat(&RmatConfig::graph500(7), 29);
        let d = MatrixDist::block_2d(a.nrows(), 2, 3);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let n = a.nrows();
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|c| (0..n).map(|i| ((i * (c + 2)) % 9) as f64 - 4.0).collect())
            .collect();
        let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);

        let mut y0 = DistMultiVector::zeros(Arc::clone(&dm.vmap), 3);
        let mut l0 = CostLedger::new(Machine::cab());
        spmm_with(&dm, &x, &mut y0, &mut l0, &mut SpmvWorkspace::new());

        let mut y1 = DistMultiVector::zeros(Arc::clone(&dm.vmap), 3);
        let mut l1 = CostLedger::new(Machine::cab());
        let mut rt = sf2d_sim::ChaosRuntime::seeded(42, 0.0);
        spmm_chaos_with(
            &dm,
            &x,
            &mut y1,
            &mut l1,
            &mut SpmvWorkspace::new(),
            &mut rt,
        );
        for (sl, tl) in y0.locals.iter().zip(&y1.locals) {
            let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
            let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, tb);
        }
        assert_eq!(l0.history, l1.history);
        assert_eq!(l0.total.to_bits(), l1.total.to_bits());
        assert!(!rt.stats.any());
    }

    #[test]
    fn chaos_scripted_expand_drop_is_healed() {
        use sf2d_sim::sf2d_chaos::{FaultKind, FaultScript};
        let a = rmat(&RmatConfig::graph500(7), 29);
        let d = MatrixDist::block_2d(a.nrows(), 2, 3);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 3);
        // Drop the first real expand message (routing step 0).
        let (src, dst) = dm
            .import
            .sends
            .iter()
            .enumerate()
            .find_map(|(r, out)| out.first().map(|(d, _)| (r as u32, *d)))
            .expect("2x3 block layout always has expand traffic");
        let mut rt = sf2d_sim::ChaosRuntime::scripted(FaultScript::default().fault(
            0,
            src,
            dst,
            0,
            FaultKind::Drop,
        ));
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l = CostLedger::new(Machine::cab());
        spmv_chaos_with(&dm, &x, &mut y, &mut l, &mut SpmvWorkspace::new(), &mut rt);

        let mut y0 = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l0 = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y0, &mut l0);
        for (sl, tl) in y0.locals.iter().zip(&y.locals) {
            let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
            let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, tb);
        }
        assert_eq!(rt.stats.drops, 1);
        assert!(
            l.history.iter().any(|(ph, _)| *ph == Phase::Retransmit),
            "drop should bill a retransmit superstep"
        );
        assert!(l.total > l0.total);
    }

    #[test]
    fn chaos_seeded_faults_recover_fault_free_bits_across_threads() {
        let a = rmat(&RmatConfig::graph500(7), 31);
        let d = MatrixDist::random_2d(a.nrows(), 2, 3, 5);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let n = a.nrows();
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|c| (0..n).map(|i| ((i + c * 3) % 11) as f64 - 5.0).collect())
            .collect();
        let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
        let mut y0 = DistMultiVector::zeros(Arc::clone(&dm.vmap), 4);
        spmm(&dm, &x, &mut y0, &mut CostLedger::new(Machine::cab()));
        for threads in [1usize, 2, 8] {
            let mut rt = sf2d_sim::ChaosRuntime::seeded(7, 0.4).with_threads(threads);
            let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), 4);
            let mut l = CostLedger::new(Machine::cab());
            spmm_chaos_with(
                &dm,
                &x,
                &mut y,
                &mut l,
                &mut SpmvWorkspace::with_threads(threads),
                &mut rt,
            );
            assert!(rt.stats.any(), "rate 0.4 injected nothing");
            for (sl, tl) in y0.locals.iter().zip(&y.locals) {
                let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
                let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, tb, "threads {threads}");
            }
        }
    }

    #[test]
    fn compiled_path_matches_reference_bitwise() {
        // A deterministic end-to-end pin (the property tests cover random
        // shapes): compiled spmv == reference spmv bit-for-bit.
        let a = rmat(&RmatConfig::graph500(7), 21);
        let d = MatrixDist::random_2d(a.nrows(), 2, 3, 8);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 11);

        let mut y_ref = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_ref = CostLedger::new(Machine::cab());
        crate::reference::spmv_ref(&dm, &x, &mut y_ref, &mut l_ref);

        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut l);

        for (sl, tl) in y_ref.locals.iter().zip(&y.locals) {
            let sb: Vec<u64> = sl.iter().map(|v| v.to_bits()).collect();
            let tb: Vec<u64> = tl.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, tb);
        }
        assert_eq!(l.history, l_ref.history);
        assert_eq!(l.total.to_bits(), l_ref.total.to_bits());
    }
}
