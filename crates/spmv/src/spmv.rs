//! The 4-phase distributed SpMV of the paper's §2.1.
//!
//! ```text
//! 1. Expand:  send x_j to the ranks owning a nonzero a_ij   (import plan)
//! 2. Local:   y_loc += A_loc x_loc
//! 3. Fold:    send partial y_i to the owner of y_i          (export plan)
//! 4. Sum:     y = Σ received partials
//! ```
//!
//! 1D layouts skip phases 3–4 (their export plans are empty, costing
//! nothing), exactly as the paper notes "for 1D distributions, only the
//! first two phases are necessary".

use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};

use crate::distmat::DistCsrMatrix;
use crate::multivec::DistVector;

/// Computes `y = A x`, charging each phase to the ledger.
///
/// # Panics
/// Panics if `x` or `y` is on a different map than the matrix.
pub fn spmv(a: &DistCsrMatrix, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
    let p = a.nprocs();
    assert!(
        std::sync::Arc::ptr_eq(&x.map, &a.vmap) || x.map.n() == a.n,
        "x map mismatch"
    );

    // Phase 1 — expand. Remote x values arrive as (gid, value) pairs.
    let imported = a.import.execute_gather(&a.vmap, &x.locals);
    ledger.superstep(Phase::Expand, &a.import.phase_costs());

    // Phase 2 — local compute: y_loc = A_loc * x_cols.
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(p);
    let mut compute_costs = Vec::with_capacity(p);
    for r in 0..p {
        let block = &a.blocks[r];
        // Assemble the column-aligned x buffer: owned entries from the local
        // slice, remote entries from the import.
        let mut xcols = vec![0.0; block.colmap.len()];
        for (lid, &g) in block.colmap.iter().enumerate() {
            if a.vmap.owner(g) == r as u32 {
                xcols[lid] = x.locals[r][a.vmap.lid(g)];
            }
        }
        for &(g, v) in &imported[r] {
            xcols[block.col_lid(g)] = v;
        }
        partials.push(block.local.spmv_dense(&xcols));
        compute_costs.push(PhaseCost::compute(2 * block.local.nnz() as u64));
    }
    ledger.superstep(Phase::LocalCompute, &compute_costs);

    // Phase 3 — fold: ship partial sums for rows we don't own; phase 4 —
    // sum: owners accumulate. Owned rows are added locally first.
    for l in &mut y.locals {
        l.fill(0.0);
    }
    let mut contributions: Vec<Vec<(u32, f64)>> = vec![Vec::new(); p];
    let mut sum_costs = vec![PhaseCost::default(); p];
    for r in 0..p {
        let block = &a.blocks[r];
        for (li, &g) in block.rowmap.iter().enumerate() {
            if a.vmap.owner(g) == r as u32 {
                y.locals[r][a.vmap.lid(g)] += partials[r][li];
                sum_costs[r].flops += 1;
            } else {
                contributions[r].push((g, partials[r][li]));
            }
        }
    }
    ledger.superstep(Phase::Fold, &a.export.phase_costs());
    a.export
        .execute_scatter_add(&a.vmap, &contributions, &mut y.locals);
    // Charge the receive-side additions of the fold.
    for r in 0..p {
        let received: u64 = a.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
        sum_costs[r].flops += received;
    }
    ledger.superstep(Phase::Sum, &sum_costs);
}

/// Blocked SpMM `Y = A X` over a [`DistMultiVector`](crate::multivec::DistMultiVector).
///
/// Identical communication *pattern* to [`spmv`] but each expand/fold
/// message carries all `ncols` values of an entry: message counts stay the
/// same while bytes scale with `ncols` — the latency-amortization that
/// makes block Krylov methods communication-efficient. Costs are charged
/// accordingly (msgs x1, bytes x ncols, flops x ncols).
pub fn spmm(
    a: &DistCsrMatrix,
    x: &crate::multivec::DistMultiVector,
    y: &mut crate::multivec::DistMultiVector,
    ledger: &mut CostLedger,
) {
    assert_eq!(x.ncols, y.ncols, "column count mismatch");
    let p = a.nprocs();
    let m = x.ncols;

    // Expand: one plan execution per column moves the same gids; charge a
    // single superstep with ncols-wide payloads.
    let mut imported: Vec<Vec<Vec<(u32, f64)>>> = Vec::with_capacity(m);
    for c in 0..m {
        let col_locals: Vec<Vec<f64>> = (0..p).map(|r| x.col(r, c).to_vec()).collect();
        imported.push(a.import.execute_gather(&a.vmap, &col_locals));
    }
    let widened: Vec<PhaseCost> = a
        .import
        .phase_costs()
        .into_iter()
        .map(|c| PhaseCost {
            msgs: c.msgs,
            bytes: c.bytes * m as u64,
            flops: 0,
        })
        .collect();
    ledger.superstep(Phase::Expand, &widened);

    // Local compute per column.
    let mut partials: Vec<Vec<Vec<f64>>> = vec![Vec::with_capacity(p); m];
    let mut compute_costs = vec![PhaseCost::default(); p];
    for r in 0..p {
        let block = &a.blocks[r];
        for (c, import_c) in imported.iter().enumerate() {
            let mut xcols = vec![0.0; block.colmap.len()];
            for (lid, &g) in block.colmap.iter().enumerate() {
                if a.vmap.owner(g) == r as u32 {
                    xcols[lid] = x.col(r, c)[a.vmap.lid(g)];
                }
            }
            for &(g, v) in &import_c[r] {
                xcols[block.col_lid(g)] = v;
            }
            partials[c].push(block.local.spmv_dense(&xcols));
        }
        compute_costs[r].flops += 2 * (m * block.local.nnz()) as u64;
    }
    ledger.superstep(Phase::LocalCompute, &compute_costs);

    // Fold + sum per column, widened fold costs charged once.
    for l in &mut y.locals {
        l.fill(0.0);
    }
    let mut sum_costs = vec![PhaseCost::default(); p];
    let widened: Vec<PhaseCost> = a
        .export
        .phase_costs()
        .into_iter()
        .map(|c| PhaseCost {
            msgs: c.msgs,
            bytes: c.bytes * m as u64,
            flops: 0,
        })
        .collect();
    ledger.superstep(Phase::Fold, &widened);
    for (c, partial_c) in partials.iter().enumerate() {
        let mut contributions: Vec<Vec<(u32, f64)>> = vec![Vec::new(); p];
        for r in 0..p {
            let block = &a.blocks[r];
            for (li, &g) in block.rowmap.iter().enumerate() {
                if a.vmap.owner(g) == r as u32 {
                    let lid = a.vmap.lid(g);
                    y.col_mut(r, c)[lid] += partial_c[r][li];
                    sum_costs[r].flops += 1;
                } else {
                    contributions[r].push((g, partial_c[r][li]));
                }
            }
        }
        // Scatter-add into a per-column view, then write back.
        let mut col_locals: Vec<Vec<f64>> = (0..p).map(|r| y.col(r, c).to_vec()).collect();
        a.export
            .execute_scatter_add(&a.vmap, &contributions, &mut col_locals);
        for r in 0..p {
            y.col_mut(r, c).copy_from_slice(&col_locals[r]);
        }
    }
    for r in 0..p {
        let received: u64 = a.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
        sum_costs[r].flops += m as u64 * received;
    }
    ledger.superstep(Phase::Sum, &sum_costs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_partition::{grid_shape, GpConfig, MatrixDist};
    use sf2d_sim::{CostLedger, Machine};

    fn check_layout(a: &sf2d_graph::CsrMatrix, dist: &MatrixDist) {
        let dm = DistCsrMatrix::from_global(a, dist);
        let x_global: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 31 + 7) % 13) as f64 - 6.0)
            .collect();
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &x_global);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        let want = a.spmv_dense(&x_global);
        let got = y.to_global();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "row {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn all_layouts_match_sequential_on_rmat() {
        let a = rmat(&RmatConfig::graph500(7), 11);
        let n = a.nrows();
        for p in [1usize, 4, 6] {
            let (pr, pc) = grid_shape(p);
            check_layout(&a, &MatrixDist::block_1d(n, p));
            check_layout(&a, &MatrixDist::random_1d(n, p, 5));
            check_layout(&a, &MatrixDist::block_2d(n, pr, pc));
            check_layout(&a, &MatrixDist::random_2d(n, pr, pc, 6));
        }
    }

    #[test]
    fn gp_layouts_match_sequential() {
        let a = grid_2d(12, 12);
        let g = sf2d_graph::Graph::from_symmetric_matrix(&a);
        let part = sf2d_partition::partition_graph(&g, 6, &GpConfig::default());
        check_layout(&a, &MatrixDist::from_partition_1d(&part));
        let (pr, pc) = grid_shape(6);
        check_layout(&a, &MatrixDist::cartesian_2d(&part, pr, pc, false));
        check_layout(&a, &MatrixDist::cartesian_2d(&part, pr, pc, true));
    }

    #[test]
    fn expand_volume_charged_matches_plan() {
        let a = rmat(&RmatConfig::graph500(6), 2);
        let d = MatrixDist::block_1d(a.nrows(), 4);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        // Unit-alpha, zero-beta/gamma machine: total expand time = max over
        // ranks of (messages sent + received), since both endpoints pay α.
        let m = Machine {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            name: "msgs",
        };
        let mut ledger = CostLedger::new(m);
        spmv(&dm, &x, &mut y, &mut ledger);
        let expand = ledger.by_phase[&Phase::Expand];
        let want = (0..4)
            .map(|r| dm.import.sends[r].len() + dm.import.recvs[r].len())
            .max()
            .unwrap();
        assert_eq!(expand as usize, want);
    }

    #[test]
    fn one_d_has_zero_fold_time() {
        let a = rmat(&RmatConfig::graph500(6), 3);
        let d = MatrixDist::random_1d(a.nrows(), 5, 1);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 3);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        assert_eq!(
            ledger.by_phase.get(&Phase::Fold).copied().unwrap_or(0.0),
            0.0
        );
        assert!(ledger.by_phase[&Phase::Expand] > 0.0);
    }

    #[test]
    fn spmm_matches_column_wise_spmv() {
        use crate::multivec::DistMultiVector;
        let a = rmat(&RmatConfig::graph500(6), 4);
        let d = MatrixDist::block_2d(a.nrows(), 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let n = a.nrows();
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                (0..n)
                    .map(|i| ((i * (c + 2) + 1) % 7) as f64 - 3.0)
                    .collect()
            })
            .collect();
        let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
        let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), 3);
        let mut ledger = CostLedger::new(Machine::cab());
        spmm(&dm, &x, &mut y, &mut ledger);
        for (c, col) in cols.iter().enumerate() {
            let want = a.spmv_dense(col);
            let got = y.col_to_global(c);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "col {c}");
            }
        }
    }

    #[test]
    fn spmm_amortizes_latency_vs_repeated_spmv() {
        use crate::multivec::DistMultiVector;
        let a = rmat(&RmatConfig::graph500(8), 6);
        let d = MatrixDist::random_1d(a.nrows(), 16, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let m = 8usize;

        // m separate SpMVs.
        let x = DistVector::random(Arc::clone(&dm.vmap), 1);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_single = CostLedger::new(Machine::cab());
        for _ in 0..m {
            spmv(&dm, &x, &mut y, &mut l_single);
        }

        // One m-column SpMM.
        let cols: Vec<Vec<f64>> = (0..m).map(|_| x.to_global()).collect();
        let xm = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
        let mut ym = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
        let mut l_block = CostLedger::new(Machine::cab());
        spmm(&dm, &xm, &mut ym, &mut l_block);

        // Same bytes and flops, 1/m the messages: strictly cheaper.
        assert!(
            l_block.total < l_single.total,
            "blocked {} not below repeated {}",
            l_block.total,
            l_single.total
        );
    }

    #[test]
    fn repeated_spmv_accumulates_time_linearly() {
        let a = grid_2d(8, 8);
        let d = MatrixDist::block_2d(64, 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let x = DistVector::random(Arc::clone(&dm.vmap), 7);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        let t1 = ledger.total;
        for _ in 0..9 {
            spmv(&dm, &x, &mut y, &mut ledger);
        }
        assert!((ledger.total - 10.0 * t1).abs() < 1e-12 * ledger.total.max(1e-30));
    }
}
