//! The distributed sparse matrix: per-rank local blocks plus the four maps
//! and the import/export plans — Epetra's `Epetra_CrsMatrix` after
//! `FillComplete()`.

use std::sync::Arc;

use sf2d_graph::{CooMatrix, CsrMatrix};
use sf2d_partition::NonzeroLayout;

use crate::compiled::CompiledSpmv;
use crate::map::VectorMap;
use crate::plan::CommPlan;

/// One rank's share of the matrix.
#[derive(Debug, Clone)]
pub struct RankBlock {
    /// Global row ids with locally-owned nonzeros, ascending (the row map).
    pub rowmap: Vec<u32>,
    /// Global column ids referenced by local nonzeros, ascending (the
    /// column map).
    pub colmap: Vec<u32>,
    /// Local CSR over (rowmap x colmap) indices.
    pub local: CsrMatrix,
}

impl RankBlock {
    /// Local index of global column `gid` (must be present).
    #[inline]
    pub fn col_lid(&self, gid: u32) -> usize {
        self.colmap.binary_search(&gid).expect("gid in column map")
    }
}

/// A matrix distributed across logical ranks according to any
/// [`NonzeroLayout`].
#[derive(Debug, Clone)]
pub struct DistCsrMatrix {
    /// Global dimension.
    pub n: usize,
    /// Domain and range map (x and y share it — the paper's requirement for
    /// iteration without remapping).
    pub vmap: Arc<VectorMap>,
    /// Per-rank local blocks.
    pub blocks: Vec<RankBlock>,
    /// Expand plan: remote x entries per rank.
    pub import: CommPlan,
    /// Fold plan: remote partial-y contributions per rank.
    pub export: CommPlan,
    /// Plans and maps lowered to flat local-index schedules (the
    /// compilation step of `FillComplete()`): what the SpMV/SpMM kernels
    /// actually execute.
    pub compiled: CompiledSpmv,
}

impl DistCsrMatrix {
    /// Distributes a global matrix: every nonzero goes to
    /// `dist.nonzero_owner`, per-rank blocks are assembled, and the expand /
    /// fold plans are derived from the maps (Epetra's `FillComplete`).
    ///
    /// # Panics
    /// Panics if the matrix is not square or dimensions disagree with the
    /// layout.
    pub fn from_global<L: NonzeroLayout + ?Sized>(a: &CsrMatrix, dist: &L) -> DistCsrMatrix {
        DistCsrMatrix::from_global_with(a, dist, 1, None)
    }

    /// [`from_global`](DistCsrMatrix::from_global) with the per-rank work
    /// — block assembly and plan compilation — fanned across `threads` OS
    /// threads (on the persistent `pool` when given). The per-rank
    /// lowering is a pure function of the bucketed nonzeros, so the
    /// result is **byte-identical** to the serial path for any thread
    /// count; at p = 16,384 this is most of FillComplete's wall clock.
    ///
    /// # Panics
    /// Panics if the matrix is not square or dimensions disagree with the
    /// layout.
    pub fn from_global_with<L: NonzeroLayout + ?Sized>(
        a: &CsrMatrix,
        dist: &L,
        threads: usize,
        pool: Option<&sf2d_sim::sf2d_par::Pool>,
    ) -> DistCsrMatrix {
        assert_eq!(a.nrows(), a.ncols(), "SpMV layout requires a square matrix");
        assert_eq!(a.nrows(), dist.n(), "layout dimension mismatch");
        let n = a.nrows();
        let p = dist.nprocs();
        let vmap = Arc::new(VectorMap::from_dist(dist));

        // Bucket nonzeros by owner (serial: one pass over the input).
        let mut buckets: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); p];
        for (i, j, v) in a.iter() {
            buckets[dist.nonzero_owner(i, j) as usize].push((i, j, v));
        }

        // Assemble every rank's block independently: each slot carries its
        // bucket in and its finished block + remote-id lists out.
        struct Slot {
            bucket: Vec<(u32, u32, f64)>,
            block: Option<RankBlock>,
            needed_cols: Vec<u32>,
            contributed_rows: Vec<u32>,
        }
        let mut slots: Vec<Slot> = buckets
            .into_iter()
            .map(|bucket| Slot {
                bucket,
                block: None,
                needed_cols: Vec::new(),
                contributed_rows: Vec::new(),
            })
            .collect();
        sf2d_sim::sf2d_par::par_ranks_with(threads, pool, &mut slots, |r, slot| {
            let bucket = std::mem::take(&mut slot.bucket);
            // Row and column maps: sorted unique ids.
            let mut rowmap: Vec<u32> = bucket.iter().map(|&(i, _, _)| i).collect();
            rowmap.sort_unstable();
            rowmap.dedup();
            let mut colmap: Vec<u32> = bucket.iter().map(|&(_, j, _)| j).collect();
            colmap.sort_unstable();
            colmap.dedup();

            // Local CSR in (row lid, col lid) coordinates.
            let mut coo = CooMatrix::with_capacity(rowmap.len(), colmap.len(), bucket.len());
            for (i, j, v) in bucket {
                let li = rowmap.binary_search(&i).unwrap() as u32;
                let lj = colmap.binary_search(&j).unwrap() as u32;
                coo.push(li, lj, v);
            }
            let local = CsrMatrix::from_coo(&coo);

            // Remote x entries this rank must import.
            slot.needed_cols = colmap
                .iter()
                .copied()
                .filter(|&g| vmap.owner(g) != r as u32)
                .collect();
            // Rows whose partial y must be exported.
            slot.contributed_rows = rowmap
                .iter()
                .copied()
                .filter(|&g| vmap.owner(g) != r as u32)
                .collect();

            slot.block = Some(RankBlock {
                rowmap,
                colmap,
                local,
            });
        });

        let mut blocks = Vec::with_capacity(p);
        let mut needed_cols: Vec<Vec<u32>> = Vec::with_capacity(p);
        let mut contributed_rows: Vec<Vec<u32>> = Vec::with_capacity(p);
        for slot in slots {
            blocks.push(slot.block.expect("every rank assembled"));
            needed_cols.push(slot.needed_cols);
            contributed_rows.push(slot.contributed_rows);
        }

        let import = CommPlan::gather(&needed_cols, &vmap);
        let export = CommPlan::gather(&contributed_rows, &vmap);
        let compiled = CompiledSpmv::compile_with(&vmap, &blocks, &import, &export, threads, pool);

        DistCsrMatrix {
            n,
            vmap,
            blocks,
            import,
            export,
            compiled,
        }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.blocks.len()
    }

    /// Nonzeros stored at each rank.
    pub fn nnz_per_rank(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.local.nnz()).collect()
    }

    /// Total nonzeros across ranks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.local.nnz()).sum()
    }

    /// Reassembles the global matrix (test oracle).
    pub fn to_global(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.nnz());
        for b in &self.blocks {
            for (li, lj, v) in b.local.iter() {
                coo.push(b.rowmap[li as usize], b.colmap[lj as usize], v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_partition::grid_shape;
    use sf2d_partition::MatrixDist;

    fn layouts_for(n: usize, p: usize) -> Vec<MatrixDist> {
        let (pr, pc) = grid_shape(p);
        vec![
            MatrixDist::block_1d(n, p),
            MatrixDist::random_1d(n, p, 1),
            MatrixDist::block_2d(n, pr, pc),
            MatrixDist::random_2d(n, pr, pc, 2),
        ]
    }

    #[test]
    fn distribution_covers_every_nonzero_exactly_once() {
        let a = rmat(&RmatConfig::graph500(7), 3);
        for d in layouts_for(a.nrows(), 6) {
            let dm = DistCsrMatrix::from_global(&a, &d);
            assert_eq!(dm.nnz(), a.nnz());
            assert_eq!(dm.to_global(), a);
        }
    }

    #[test]
    fn import_plan_covers_all_remote_columns() {
        let a = grid_2d(8, 8);
        let d = MatrixDist::block_2d(64, 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &d);
        for (r, block) in dm.blocks.iter().enumerate() {
            let planned: usize = dm.import.recvs[r].iter().map(|(_, g)| g.len()).sum();
            let remote = block
                .colmap
                .iter()
                .filter(|&&g| dm.vmap.owner(g) != r as u32)
                .count();
            assert_eq!(planned, remote, "rank {r}");
        }
    }

    #[test]
    fn one_d_layout_has_no_export() {
        // Row-wise layouts put every row at its vector owner: fold is empty.
        let a = rmat(&RmatConfig::graph500(6), 1);
        let d = MatrixDist::random_1d(a.nrows(), 4, 7);
        let dm = DistCsrMatrix::from_global(&a, &d);
        assert_eq!(dm.export.total_volume(), 0);
        assert!(dm.import.total_volume() > 0);
    }

    #[test]
    fn two_d_message_bound_respected_by_plans() {
        let a = rmat(&RmatConfig::graph500(8), 5);
        let d = MatrixDist::block_2d(a.nrows(), 4, 4);
        let dm = DistCsrMatrix::from_global(&a, &d);
        // Expand sends stay within a grid column (pr-1), fold within a grid
        // row (pc-1).
        assert!(dm.import.max_send_msgs() <= 3);
        assert!(dm.export.max_send_msgs() <= 3);
    }

    #[test]
    fn parallel_fill_complete_is_byte_identical_to_serial() {
        let a = rmat(&RmatConfig::graph500(7), 5);
        let d = MatrixDist::random_2d(a.nrows(), 2, 3, 4);
        let serial = DistCsrMatrix::from_global(&a, &d);
        let pool = sf2d_sim::sf2d_par::Pool::new(3);
        for (threads, pool) in [(2usize, None), (3, Some(&pool))] {
            let par = DistCsrMatrix::from_global_with(&a, &d, threads, pool);
            assert_eq!(par.import, serial.import, "threads {threads}");
            assert_eq!(par.export, serial.export);
            assert_eq!(par.compiled, serial.compiled);
            assert_eq!(par.to_global(), serial.to_global());
            for (b1, b2) in par.blocks.iter().zip(&serial.blocks) {
                assert_eq!(b1.rowmap, b2.rowmap);
                assert_eq!(b1.colmap, b2.colmap);
            }
        }
    }

    #[test]
    fn empty_rank_is_fine() {
        // More ranks than rows: some ranks own nothing.
        let a = grid_2d(2, 2);
        let d = MatrixDist::block_1d(4, 8);
        let dm = DistCsrMatrix::from_global(&a, &d);
        assert_eq!(dm.nnz(), a.nnz());
        assert_eq!(dm.to_global(), a);
    }
}
