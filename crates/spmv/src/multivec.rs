//! Distributed vectors and their (costed) kernels.
//!
//! A [`DistVector`] stores one local slice per rank, aligned with the
//! [`VectorMap`]'s local orderings. Every operation both *executes* exactly
//! and *charges* the cost ledger, so vector imbalance shows up in solve
//! times exactly as in the paper's Table 5 (where 2D-GP's imbalanced vector
//! distribution made orthogonalization dominate).

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_sim::collective::{allreduce_cost, allreduce_sum};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};

use crate::map::VectorMap;

/// A vector distributed according to a [`VectorMap`].
#[derive(Debug, Clone)]
pub struct DistVector {
    /// The map describing ownership.
    pub map: Arc<VectorMap>,
    /// Per-rank local values (aligned to `map.gids(rank)`).
    pub locals: Vec<Vec<f64>>,
}

impl DistVector {
    /// All-zeros vector over a map.
    pub fn zeros(map: Arc<VectorMap>) -> DistVector {
        let locals = (0..map.nprocs())
            .map(|r| vec![0.0; map.nlocal(r)])
            .collect();
        DistVector { map, locals }
    }

    /// Distributes a global dense vector.
    pub fn from_global(map: Arc<VectorMap>, x: &[f64]) -> DistVector {
        assert_eq!(x.len(), map.n(), "global vector length mismatch");
        let locals = (0..map.nprocs())
            .map(|r| map.gids(r).iter().map(|&g| x[g as usize]).collect())
            .collect();
        DistVector { map, locals }
    }

    /// Deterministic random vector (entries in `[-1, 1)`), seeded per
    /// global id so the values are identical under any distribution.
    pub fn random(map: Arc<VectorMap>, seed: u64) -> DistVector {
        let locals = (0..map.nprocs())
            .map(|r| {
                map.gids(r)
                    .iter()
                    .map(|&g| {
                        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (g as u64) << 17);
                        rng.gen_range(-1.0..1.0)
                    })
                    .collect()
            })
            .collect();
        DistVector { map, locals }
    }

    /// Gathers back to a global dense vector (test oracle / output).
    pub fn to_global(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.map.n()];
        for r in 0..self.map.nprocs() {
            for (lid, &g) in self.map.gids(r).iter().enumerate() {
                out[g as usize] = self.locals[r][lid];
            }
        }
        out
    }

    /// Per-rank cost of a streaming vector op touching each local entry
    /// once with `flops_per_entry` flops.
    fn stream_costs(&self, flops_per_entry: u64) -> Vec<PhaseCost> {
        self.locals
            .iter()
            .map(|l| PhaseCost::compute(flops_per_entry * l.len() as u64))
            .collect()
    }

    /// `self += alpha * other`; charged as one vector superstep.
    pub fn axpy(&mut self, alpha: f64, other: &DistVector, ledger: &mut CostLedger) {
        let costs = self.stream_costs(2);
        for (mine, theirs) in self.locals.iter_mut().zip(&other.locals) {
            assert_eq!(mine.len(), theirs.len(), "map mismatch in axpy");
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += alpha * b;
            }
        }
        ledger.superstep(Phase::VectorOp, &costs);
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f64, ledger: &mut CostLedger) {
        let costs = self.stream_costs(1);
        for l in &mut self.locals {
            for v in l {
                *v *= alpha;
            }
        }
        ledger.superstep(Phase::VectorOp, &costs);
    }

    /// Global dot product: local partials (costed per rank) + allreduce.
    pub fn dot(&self, other: &DistVector, ledger: &mut CostLedger) -> f64 {
        let mut partials = Vec::with_capacity(self.locals.len());
        for (a, b) in self.locals.iter().zip(&other.locals) {
            assert_eq!(a.len(), b.len(), "map mismatch in dot");
            partials.push(a.iter().zip(b).map(|(x, y)| x * y).sum());
        }
        ledger.superstep(Phase::VectorOp, &self.stream_costs(2));
        ledger.superstep_uniform(
            Phase::Collective,
            allreduce_cost(self.map.nprocs(), 1),
            self.map.nprocs(),
        );
        allreduce_sum(&partials)
    }

    /// Euclidean norm via [`dot`](Self::dot).
    pub fn norm2(&self, ledger: &mut CostLedger) -> f64 {
        self.dot(self, ledger).sqrt()
    }

    /// Copies values from another vector on the same map (free of charge —
    /// models a pointer swap / local memcpy that the solvers do).
    pub fn copy_from(&mut self, other: &DistVector) {
        for (mine, theirs) in self.locals.iter_mut().zip(&other.locals) {
            mine.copy_from_slice(theirs);
        }
    }
}

/// A block of `ncols` vectors sharing one map — Epetra's `MultiVector`.
///
/// Stored column-major per rank (`locals[r][c * nlocal + i]`), so one
/// column is a contiguous slice. The point of blocking is communication:
/// [`crate::spmv::spmm`] ships all columns of a remote entry in the *same*
/// message, so the per-message latency α is amortized `ncols`-fold while
/// volume grows linearly — exactly the trade block Krylov methods exploit.
#[derive(Debug, Clone)]
pub struct DistMultiVector {
    /// Ownership map (shared with the matrix).
    pub map: Arc<VectorMap>,
    /// Number of columns.
    pub ncols: usize,
    /// Per-rank column-major storage.
    pub locals: Vec<Vec<f64>>,
}

impl DistMultiVector {
    /// All-zeros block.
    pub fn zeros(map: Arc<VectorMap>, ncols: usize) -> DistMultiVector {
        assert!(ncols >= 1);
        let locals = (0..map.nprocs())
            .map(|r| vec![0.0; ncols * map.nlocal(r)])
            .collect();
        DistMultiVector { map, ncols, locals }
    }

    /// Builds from per-column global vectors.
    pub fn from_columns(map: Arc<VectorMap>, cols: &[Vec<f64>]) -> DistMultiVector {
        assert!(!cols.is_empty());
        let ncols = cols.len();
        let locals = (0..map.nprocs())
            .map(|r| {
                let gids = map.gids(r);
                let mut l = Vec::with_capacity(ncols * gids.len());
                for col in cols {
                    assert_eq!(col.len(), map.n(), "column length mismatch");
                    l.extend(gids.iter().map(|&g| col[g as usize]));
                }
                l
            })
            .collect();
        DistMultiVector { map, ncols, locals }
    }

    /// Column `c` of rank `r` as a slice.
    #[inline]
    pub fn col(&self, r: usize, c: usize) -> &[f64] {
        let nl = self.map.nlocal(r);
        &self.locals[r][c * nl..(c + 1) * nl]
    }

    /// Mutable column.
    #[inline]
    pub fn col_mut(&mut self, r: usize, c: usize) -> &mut [f64] {
        let nl = self.map.nlocal(r);
        &mut self.locals[r][c * nl..(c + 1) * nl]
    }

    /// Gathers column `c` back to a global dense vector.
    pub fn col_to_global(&self, c: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.map.n()];
        for r in 0..self.map.nprocs() {
            for (lid, &g) in self.map.gids(r).iter().enumerate() {
                out[g as usize] = self.col(r, c)[lid];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::Machine;

    fn map_and_ledger(n: usize, p: usize) -> (Arc<VectorMap>, CostLedger) {
        let d = MatrixDist::random_1d(n, p, 3);
        (
            Arc::new(VectorMap::from_dist(&d)),
            CostLedger::new(Machine::cab()),
        )
    }

    #[test]
    fn global_roundtrip() {
        let (map, _) = map_and_ledger(10, 3);
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let v = DistVector::from_global(Arc::clone(&map), &x);
        assert_eq!(v.to_global(), x);
    }

    #[test]
    fn dot_matches_sequential() {
        let (map, mut ledger) = map_and_ledger(50, 4);
        let x: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let vx = DistVector::from_global(Arc::clone(&map), &x);
        let vy = DistVector::from_global(Arc::clone(&map), &y);
        let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let got = vx.dot(&vy, &mut ledger);
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
        assert!(ledger.total > 0.0);
    }

    #[test]
    fn axpy_and_scale_match_sequential() {
        let (map, mut ledger) = map_and_ledger(20, 5);
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut v = DistVector::from_global(Arc::clone(&map), &x);
        let w = DistVector::from_global(Arc::clone(&map), &[1.0; 20]);
        v.axpy(2.0, &w, &mut ledger);
        v.scale(0.5, &mut ledger);
        let got = v.to_global();
        for (i, g) in got.iter().enumerate() {
            assert!((g - (i as f64 + 2.0) * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn random_vector_is_distribution_invariant() {
        // Same seed, different layouts -> same global vector.
        let d1 = MatrixDist::block_1d(30, 3);
        let d2 = MatrixDist::random_1d(30, 5, 9);
        let v1 = DistVector::random(Arc::new(VectorMap::from_dist(&d1)), 42);
        let v2 = DistVector::random(Arc::new(VectorMap::from_dist(&d2)), 42);
        assert_eq!(v1.to_global(), v2.to_global());
    }

    #[test]
    fn vector_imbalance_shows_in_cost() {
        // All entries on rank 0 vs spread evenly: same op, higher cost.
        let skew = MatrixDist::from_partition_1d(&sf2d_partition::Partition::new(vec![0; 1000], 4));
        let even = MatrixDist::block_1d(1000, 4);
        let mut l1 = CostLedger::new(Machine::cab());
        let mut l2 = CostLedger::new(Machine::cab());
        let mut v1 = DistVector::zeros(Arc::new(VectorMap::from_dist(&skew)));
        let mut v2 = DistVector::zeros(Arc::new(VectorMap::from_dist(&even)));
        let w1 = v1.clone();
        let w2 = v2.clone();
        v1.axpy(1.0, &w1, &mut l1);
        v2.axpy(1.0, &w2, &mut l2);
        assert!(l1.total > 3.0 * l2.total, "{} vs {}", l1.total, l2.total);
    }
}
