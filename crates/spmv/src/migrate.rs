//! Data-migration (redistribution) cost between two layouts.
//!
//! The paper's §5.1 is explicit that partitioning/distribution time was
//! excluded and matters for "use-cases requiring very few matrix
//! operations": one must weigh the one-time redistribution cost against
//! the per-iteration SpMV savings. This module computes that trade
//! exactly: every nonzero whose owner changes must move (global row id,
//! column id, value — 16 bytes in the wire format below), as must
//! reassigned vector entries, and the α-β model prices the exchange.

use sf2d_graph::CsrMatrix;
use sf2d_partition::NonzeroLayout;
use sf2d_sim::cost::PhaseCost;
use sf2d_sim::Machine;

/// Exact migration traffic between two layouts of the same matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Ranks involved.
    pub p: usize,
    /// Nonzeros changing owner.
    pub moved_nnz: usize,
    /// Vector entries changing owner.
    pub moved_vec: usize,
    /// Bytes sent per rank (16 per nonzero: two u32 ids + f64 value;
    /// 12 per vector entry: u32 id + f64 value).
    pub bytes_sent: Vec<u64>,
    /// Messages sent per rank (distinct destinations).
    pub msgs_sent: Vec<u64>,
}

impl MigrationPlan {
    /// Builds the plan for redistributing `a` from `from` to `to`.
    ///
    /// # Panics
    /// Panics if the layouts disagree on dimension or rank count.
    pub fn build<F, T>(a: &CsrMatrix, from: &F, to: &T) -> MigrationPlan
    where
        F: NonzeroLayout + ?Sized,
        T: NonzeroLayout + ?Sized,
    {
        assert_eq!(from.n(), to.n(), "layouts cover different dimensions");
        assert_eq!(from.nprocs(), to.nprocs(), "rank counts differ");
        assert_eq!(a.nrows(), from.n(), "matrix/layout mismatch");
        let p = from.nprocs();

        let mut bytes = vec![0u64; p];
        let mut moved_nnz = 0usize;
        let mut moved_vec = 0usize;
        // Distinct (src, dst) pairs per rank via a stamp matrix substitute.
        let mut pair_stamp = std::collections::HashSet::new();

        for (i, j, _) in a.iter() {
            let src = from.nonzero_owner(i, j);
            let dst = to.nonzero_owner(i, j);
            if src != dst {
                moved_nnz += 1;
                bytes[src as usize] += 16;
                pair_stamp.insert((src, dst));
            }
        }
        for k in 0..a.nrows() as u32 {
            let src = from.vector_owner(k);
            let dst = to.vector_owner(k);
            if src != dst {
                moved_vec += 1;
                bytes[src as usize] += 12;
                pair_stamp.insert((src, dst));
            }
        }
        let mut msgs = vec![0u64; p];
        for (src, _) in pair_stamp {
            msgs[src as usize] += 1;
        }
        MigrationPlan {
            p,
            moved_nnz,
            moved_vec,
            bytes_sent: bytes,
            msgs_sent: msgs,
        }
    }

    /// Simulated seconds for the redistribution (one BSP exchange step).
    pub fn time(&self, machine: &Machine) -> f64 {
        (0..self.p)
            .map(|r| machine.phase_time(&PhaseCost::comm(self.msgs_sent[r], self.bytes_sent[r])))
            .fold(0.0f64, f64::max)
    }

    /// The §5.1 amortization question: how many SpMV iterations must run
    /// before migrating from a layout costing `t_old` per iteration to one
    /// costing `t_new` pays for itself? `None` when the new layout is not
    /// faster.
    pub fn break_even_iterations(
        &self,
        machine: &Machine,
        t_old: f64,
        t_new: f64,
    ) -> Option<usize> {
        if t_new >= t_old {
            return None;
        }
        Some((self.time(machine) / (t_old - t_new)).ceil() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::CooMatrix;
    use sf2d_partition::MatrixDist;

    fn cycle(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push_sym(i as u32, ((i + 1) % n) as u32, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn identical_layouts_move_nothing() {
        let a = cycle(12);
        let d = MatrixDist::block_1d(12, 3);
        let plan = MigrationPlan::build(&a, &d, &d);
        assert_eq!(plan.moved_nnz, 0);
        assert_eq!(plan.moved_vec, 0);
        assert_eq!(plan.time(&Machine::cab()), 0.0);
    }

    #[test]
    fn full_shuffle_moves_everything_remote() {
        let a = cycle(12);
        let from = MatrixDist::block_1d(12, 3);
        // Shift every row's owner by one part.
        let shifted: Vec<u32> = from.rpart().iter().map(|&r| (r + 1) % 3).collect();
        let to = MatrixDist::from_partition_1d(&sf2d_partition::Partition::new(shifted, 3));
        let plan = MigrationPlan::build(&a, &from, &to);
        assert_eq!(plan.moved_nnz, a.nnz());
        assert_eq!(plan.moved_vec, 12);
        assert!(plan.time(&Machine::cab()) > 0.0);
    }

    #[test]
    fn break_even_math() {
        let a = cycle(12);
        let from = MatrixDist::block_1d(12, 3);
        let to = MatrixDist::random_1d(12, 3, 1);
        let plan = MigrationPlan::build(&a, &from, &to);
        let m = Machine::cab();
        // New layout slower: never pays off.
        assert_eq!(plan.break_even_iterations(&m, 1.0, 2.0), None);
        // Faster by 1 ms/iter: break-even = ceil(migration / 1ms).
        let k = plan.break_even_iterations(&m, 2e-3, 1e-3).unwrap();
        assert_eq!(k, (plan.time(&m) / 1e-3).ceil() as usize);
    }

    #[test]
    fn one_d_to_two_d_counts_partial_moves() {
        let a = cycle(16);
        let from = MatrixDist::block_1d(16, 4);
        let to = MatrixDist::block_2d(16, 2, 2);
        let plan = MigrationPlan::build(&a, &from, &to);
        // Vector stays (same rpart), some nonzeros move.
        assert_eq!(plan.moved_vec, 0);
        assert!(plan.moved_nnz > 0 && plan.moved_nnz < a.nnz());
    }
}
