//! Linear operators for the iterative solvers.
//!
//! The eigensolver experiments target `L̂ = I − D^{−1/2} A D^{−1/2}`.
//! [`NormalizedLaplacianOp`] applies it without forming `L̂` explicitly:
//! `y = x − s ⊙ (A (s ⊙ x))` with `s = D^{−1/2}` — one distributed SpMV on
//! `A` plus local diagonal scalings, so the communication pattern (and thus
//! every layout comparison) is exactly that of SpMV on `A`.

use std::cell::RefCell;
use std::sync::Arc;

use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};

use crate::compiled::SpmvWorkspace;
use crate::distmat::DistCsrMatrix;
use crate::map::VectorMap;
use crate::multivec::DistVector;
use crate::spmv::spmv_with;

/// Anything that can apply `y = Op(x)` on distributed vectors.
pub trait LinearOperator {
    /// The common domain/range map.
    fn vmap(&self) -> &Arc<VectorMap>;
    /// Applies the operator, charging the ledger.
    fn apply(&self, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger);
}

/// Plain `y = A x`.
pub struct PlainSpmvOp {
    /// The distributed matrix.
    pub a: DistCsrMatrix,
    /// Scratch reused across applications (`apply` takes `&self`).
    workspace: RefCell<SpmvWorkspace>,
}

impl PlainSpmvOp {
    /// Wraps a distributed matrix with a sequential workspace.
    pub fn new(a: DistCsrMatrix) -> PlainSpmvOp {
        PlainSpmvOp {
            a,
            workspace: RefCell::new(SpmvWorkspace::new()),
        }
    }

    /// Fans the per-rank phase work across `threads` OS threads
    /// (bit-identical to sequential for any value).
    pub fn with_threads(mut self, threads: usize) -> PlainSpmvOp {
        self.workspace.get_mut().threads = threads.max(1);
        self
    }
}

impl LinearOperator for PlainSpmvOp {
    fn vmap(&self) -> &Arc<VectorMap> {
        &self.a.vmap
    }

    fn apply(&self, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
        spmv_with(&self.a, x, y, ledger, &mut self.workspace.borrow_mut());
    }
}

/// `y = x − D^{−1/2} A D^{−1/2} x`, the normalized Laplacian of §5.3.
pub struct NormalizedLaplacianOp {
    /// The distributed adjacency matrix (self-loops ignored by the scaling).
    pub a: DistCsrMatrix,
    /// `D^{−1/2}` diagonal, distributed on the same map.
    pub inv_sqrt_deg: DistVector,
    /// Scratch vector reused across applications.
    scratch: RefCell<(DistVector, DistVector)>,
    /// SpMV scratch reused across applications.
    workspace: RefCell<SpmvWorkspace>,
}

impl NormalizedLaplacianOp {
    /// Builds the operator from a distributed symmetric adjacency matrix.
    /// Degrees are computed from the global matrix pattern (excluding any
    /// diagonal entries); isolated vertices get scale 0.
    pub fn new(a: DistCsrMatrix, global_degrees: &[usize]) -> NormalizedLaplacianOp {
        assert_eq!(global_degrees.len(), a.n, "degree vector length mismatch");
        let s: Vec<f64> = global_degrees
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / (d as f64).sqrt() })
            .collect();
        let inv_sqrt_deg = DistVector::from_global(Arc::clone(&a.vmap), &s);
        let scratch = RefCell::new((
            DistVector::zeros(Arc::clone(&a.vmap)),
            DistVector::zeros(Arc::clone(&a.vmap)),
        ));
        NormalizedLaplacianOp {
            a,
            inv_sqrt_deg,
            scratch,
            workspace: RefCell::new(SpmvWorkspace::new()),
        }
    }

    /// Fans the per-rank phase work across `threads` OS threads
    /// (bit-identical to sequential for any value).
    pub fn with_threads(mut self, threads: usize) -> NormalizedLaplacianOp {
        self.workspace.get_mut().threads = threads.max(1);
        self
    }
}

impl LinearOperator for NormalizedLaplacianOp {
    fn vmap(&self) -> &Arc<VectorMap> {
        &self.a.vmap
    }

    fn apply(&self, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
        let (ref mut t, ref mut u) = *self.scratch.borrow_mut();
        // t = s .* x (local, one flop per entry).
        let mut costs = Vec::with_capacity(x.locals.len());
        for r in 0..x.locals.len() {
            for ((tv, xv), sv) in t.locals[r]
                .iter_mut()
                .zip(&x.locals[r])
                .zip(&self.inv_sqrt_deg.locals[r])
            {
                *tv = xv * sv;
            }
            costs.push(PhaseCost::compute(x.locals[r].len() as u64));
        }
        ledger.superstep(Phase::VectorOp, &costs);

        // u = A t (the costed distributed SpMV).
        spmv_with(&self.a, t, u, ledger, &mut self.workspace.borrow_mut());

        // y = x - s .* u (local, two flops per entry).
        let mut costs = Vec::with_capacity(x.locals.len());
        for r in 0..x.locals.len() {
            for (((yv, xv), uv), sv) in y.locals[r]
                .iter_mut()
                .zip(&x.locals[r])
                .zip(&u.locals[r])
                .zip(&self.inv_sqrt_deg.locals[r])
            {
                *yv = xv - sv * uv;
            }
            costs.push(PhaseCost::compute(2 * x.locals[r].len() as u64));
        }
        ledger.superstep(Phase::VectorOp, &costs);
    }
}

/// `y = shift · x − Op(x)` — the spectral flip that turns "smallest
/// eigenpairs of `Op`" into "largest eigenpairs of `ShiftedOp`", the
/// standard trick when no factorization (shift-invert) is available.
/// With `shift` ≥ λ_max (e.g. a Gershgorin bound, or 2 for a normalized
/// Laplacian), the smallest eigenvalue of `Op` maps to the largest of the
/// shifted operator: λ′ = shift − λ.
pub struct ShiftedOp<'a> {
    /// The inner operator.
    pub inner: &'a dyn LinearOperator,
    /// The spectral shift.
    pub shift: f64,
}

impl LinearOperator for ShiftedOp<'_> {
    fn vmap(&self) -> &Arc<VectorMap> {
        self.inner.vmap()
    }

    fn apply(&self, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
        self.inner.apply(x, y, ledger);
        // y = shift*x - y, one fused vector pass (2 flops/entry).
        let mut costs = Vec::with_capacity(x.locals.len());
        for r in 0..x.locals.len() {
            for (yv, xv) in y.locals[r].iter_mut().zip(&x.locals[r]) {
                *yv = self.shift * xv - *yv;
            }
            costs.push(PhaseCost::compute(2 * x.locals[r].len() as u64));
        }
        ledger.superstep(Phase::VectorOp, &costs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{rmat, RmatConfig};
    use sf2d_graph::normalized_laplacian;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::Machine;

    #[test]
    fn normalized_laplacian_op_matches_explicit_matrix() {
        let a = rmat(&RmatConfig::graph500(6), 9);
        let lhat = normalized_laplacian(&a).unwrap();
        let adj = a.without_diagonal();
        let degrees: Vec<usize> = (0..adj.nrows()).map(|i| adj.row_nnz(i)).collect();

        let d = MatrixDist::block_2d(a.nrows(), 2, 2);
        let da = DistCsrMatrix::from_global(&adj, &d);
        let op = NormalizedLaplacianOp::new(da, &degrees);

        let x_global: Vec<f64> = (0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x = DistVector::from_global(Arc::clone(op.vmap()), &x_global);
        let mut y = DistVector::zeros(Arc::clone(op.vmap()));
        let mut ledger = CostLedger::new(Machine::cab());
        op.apply(&x, &mut y, &mut ledger);

        let want = lhat.spmv_dense(&x_global);
        let got = y.to_global();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
        }
        assert!(ledger.spmv_time() > 0.0);
        assert!(ledger.by_phase[&Phase::VectorOp] > 0.0);
    }

    #[test]
    fn shifted_op_flips_spectrum() {
        // For L-hat of a bipartite graph, largest of (2I - L) corresponds
        // to the smallest eigenvalue 0 of L: apply to the known
        // null-vector D^{1/2} 1 and check it is an eigenvector of value 2.
        let a = sf2d_gen::grid_2d(4, 5);
        let lhat = normalized_laplacian(&a).unwrap();
        let d = MatrixDist::block_1d(lhat.nrows(), 4);
        let da = DistCsrMatrix::from_global(&lhat, &d);
        let inner = PlainSpmvOp::new(da);
        let op = ShiftedOp {
            inner: &inner,
            shift: 2.0,
        };

        let adj = a.without_diagonal();
        let sqrt_deg: Vec<f64> = (0..adj.nrows())
            .map(|i| (adj.row_nnz(i) as f64).sqrt())
            .collect();
        let x = DistVector::from_global(Arc::clone(op.vmap()), &sqrt_deg);
        let mut y = DistVector::zeros(Arc::clone(op.vmap()));
        let mut ledger = CostLedger::new(Machine::cab());
        op.apply(&x, &mut y, &mut ledger);
        for (yv, xv) in y.to_global().iter().zip(&sqrt_deg) {
            assert!((yv - 2.0 * xv).abs() < 1e-9, "{yv} vs {}", 2.0 * xv);
        }
    }

    #[test]
    fn plain_op_is_spmv() {
        let a = rmat(&RmatConfig::graph500(5), 1);
        let d = MatrixDist::block_1d(a.nrows(), 3);
        let da = DistCsrMatrix::from_global(&a, &d);
        let op = PlainSpmvOp::new(da);
        let x_global: Vec<f64> = (0..a.nrows()).map(|i| i as f64).collect();
        let x = DistVector::from_global(Arc::clone(op.vmap()), &x_global);
        let mut y = DistVector::zeros(Arc::clone(op.vmap()));
        let mut ledger = CostLedger::new(Machine::cab());
        op.apply(&x, &mut y, &mut ledger);
        assert_eq!(y.to_global(), a.spmv_dense(&x_global));
    }
}
