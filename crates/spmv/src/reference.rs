//! Gid-based reference executors for SpMV/SpMM — the oracle for the
//! compiled fast path.
//!
//! These are the original straightforward implementations: every column
//! entry resolves `owner(gid)` / `lid(gid)` through the [`VectorMap`] on
//! every call, remote values travel as `(gid, value)` pairs, and the fold
//! goes through [`CommPlan::execute_scatter_add`]'s hash lookup. Slow but
//! obviously correct — the compiled path in [`spmv`](crate::spmv::spmv) /
//! [`spmm`](crate::spmv::spmm) must produce **bit-identical** vectors and
//! byte-identical [`CostLedger`] charges (property-tested in
//! `spmv.rs`).
//!
//! [`VectorMap`]: crate::map::VectorMap
//! [`CommPlan::execute_scatter_add`]: crate::plan::CommPlan::execute_scatter_add
//! [`CostLedger`]: sf2d_sim::cost::CostLedger

use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};

use crate::distmat::DistCsrMatrix;
use crate::multivec::{DistMultiVector, DistVector};

/// Reference `y = A x`: identical contract and cost accounting to
/// [`spmv`](crate::spmv::spmv), executed entirely through gid lookups.
pub fn spmv_ref(a: &DistCsrMatrix, x: &DistVector, y: &mut DistVector, ledger: &mut CostLedger) {
    let p = a.nprocs();
    assert!(
        std::sync::Arc::ptr_eq(&x.map, &a.vmap) || x.map.same_distribution(&a.vmap),
        "x map mismatch"
    );
    assert!(
        std::sync::Arc::ptr_eq(&y.map, &a.vmap) || y.map.same_distribution(&a.vmap),
        "y map mismatch"
    );

    // Phase 1 — expand. Remote x values arrive as (gid, value) pairs.
    let imported = a.import.execute_gather(&a.vmap, &x.locals);
    ledger.superstep(Phase::Expand, &a.import.phase_costs());

    // Phase 2 — local compute: y_loc = A_loc * x_cols.
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(p);
    let mut compute_costs = Vec::with_capacity(p);
    for r in 0..p {
        let block = &a.blocks[r];
        // Assemble the column-aligned x buffer: owned entries from the local
        // slice, remote entries from the import.
        let mut xcols = vec![0.0; block.colmap.len()];
        for (lid, &g) in block.colmap.iter().enumerate() {
            if a.vmap.owner(g) == r as u32 {
                xcols[lid] = x.locals[r][a.vmap.lid(g)];
            }
        }
        for &(g, v) in &imported[r] {
            xcols[block.col_lid(g)] = v;
        }
        partials.push(block.local.spmv_dense(&xcols));
        compute_costs.push(PhaseCost::compute(2 * block.local.nnz() as u64));
    }
    ledger.superstep(Phase::LocalCompute, &compute_costs);

    // Phase 3 — fold: ship partial sums for rows we don't own; phase 4 —
    // sum: owners accumulate. Owned rows are added locally first.
    for l in &mut y.locals {
        l.fill(0.0);
    }
    let mut contributions: Vec<Vec<(u32, f64)>> = vec![Vec::new(); p];
    let mut sum_costs = vec![PhaseCost::default(); p];
    for r in 0..p {
        let block = &a.blocks[r];
        for (li, &g) in block.rowmap.iter().enumerate() {
            if a.vmap.owner(g) == r as u32 {
                y.locals[r][a.vmap.lid(g)] += partials[r][li];
                sum_costs[r].flops += 1;
            } else {
                contributions[r].push((g, partials[r][li]));
            }
        }
    }
    ledger.superstep(Phase::Fold, &a.export.phase_costs());
    a.export
        .execute_scatter_add(&a.vmap, &contributions, &mut y.locals);
    // Charge the receive-side additions of the fold.
    for r in 0..p {
        let received: u64 = a.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
        sum_costs[r].flops += received;
    }
    ledger.superstep(Phase::Sum, &sum_costs);
}

/// Reference `Y = A X` executing the gather plan once **per column**:
/// identical cost accounting to [`spmm`](crate::spmv::spmm) (msgs ×1,
/// bytes × ncols charged once per phase).
pub fn spmm_ref(
    a: &DistCsrMatrix,
    x: &DistMultiVector,
    y: &mut DistMultiVector,
    ledger: &mut CostLedger,
) {
    assert_eq!(x.ncols, y.ncols, "column count mismatch");
    let p = a.nprocs();
    let m = x.ncols;

    // Expand: one plan execution per column moves the same gids; charge a
    // single superstep with ncols-wide payloads.
    let mut imported: Vec<Vec<Vec<(u32, f64)>>> = Vec::with_capacity(m);
    for c in 0..m {
        let col_locals: Vec<Vec<f64>> = (0..p).map(|r| x.col(r, c).to_vec()).collect();
        imported.push(a.import.execute_gather(&a.vmap, &col_locals));
    }
    let widened: Vec<PhaseCost> = a
        .import
        .phase_costs()
        .into_iter()
        .map(|c| PhaseCost {
            msgs: c.msgs,
            bytes: c.bytes * m as u64,
            flops: 0,
        })
        .collect();
    ledger.superstep(Phase::Expand, &widened);

    // Local compute per column.
    let mut partials: Vec<Vec<Vec<f64>>> = vec![Vec::with_capacity(p); m];
    let mut compute_costs = vec![PhaseCost::default(); p];
    for r in 0..p {
        let block = &a.blocks[r];
        for (c, import_c) in imported.iter().enumerate() {
            let mut xcols = vec![0.0; block.colmap.len()];
            for (lid, &g) in block.colmap.iter().enumerate() {
                if a.vmap.owner(g) == r as u32 {
                    xcols[lid] = x.col(r, c)[a.vmap.lid(g)];
                }
            }
            for &(g, v) in &import_c[r] {
                xcols[block.col_lid(g)] = v;
            }
            partials[c].push(block.local.spmv_dense(&xcols));
        }
        compute_costs[r].flops += 2 * (m * block.local.nnz()) as u64;
    }
    ledger.superstep(Phase::LocalCompute, &compute_costs);

    // Fold + sum per column, widened fold costs charged once.
    for l in &mut y.locals {
        l.fill(0.0);
    }
    let mut sum_costs = vec![PhaseCost::default(); p];
    let widened: Vec<PhaseCost> = a
        .export
        .phase_costs()
        .into_iter()
        .map(|c| PhaseCost {
            msgs: c.msgs,
            bytes: c.bytes * m as u64,
            flops: 0,
        })
        .collect();
    ledger.superstep(Phase::Fold, &widened);
    for (c, partial_c) in partials.iter().enumerate() {
        let mut contributions: Vec<Vec<(u32, f64)>> = vec![Vec::new(); p];
        for r in 0..p {
            let block = &a.blocks[r];
            for (li, &g) in block.rowmap.iter().enumerate() {
                if a.vmap.owner(g) == r as u32 {
                    let lid = a.vmap.lid(g);
                    y.col_mut(r, c)[lid] += partial_c[r][li];
                    sum_costs[r].flops += 1;
                } else {
                    contributions[r].push((g, partial_c[r][li]));
                }
            }
        }
        // Scatter-add into a per-column view, then write back.
        let mut col_locals: Vec<Vec<f64>> = (0..p).map(|r| y.col(r, c).to_vec()).collect();
        a.export
            .execute_scatter_add(&a.vmap, &contributions, &mut col_locals);
        for r in 0..p {
            y.col_mut(r, c).copy_from_slice(&col_locals[r]);
        }
    }
    for r in 0..p {
        let received: u64 = a.export.sends[r].iter().map(|(_, g)| g.len() as u64).sum();
        sum_costs[r].flops += m as u64 * received;
    }
    ledger.superstep(Phase::Sum, &sum_costs);
}
