//! Property tests pinning the compiled local-index SpMV/SpMM path to the
//! gid-based reference executor: across random matrices × random layouts
//! × random rank counts, results must be **bit-identical** (not merely
//! close) and the cost ledgers byte-for-byte equal, with any `threads`
//! setting.

use std::sync::Arc;

use proptest::prelude::*;
use sf2d_graph::{CooMatrix, CsrMatrix};
use sf2d_partition::MatrixDist;
use sf2d_sim::{CostLedger, Machine};
use sf2d_spmv::{
    reference, spmm_with, spmv_with, DistCsrMatrix, DistMultiVector, DistVector, SpmvWorkspace,
};

/// A random square matrix, a random layout over a random rank count, and
/// a dense input vector.
fn setup_strategy() -> impl Strategy<Value = (CsrMatrix, MatrixDist, Vec<f64>)> {
    (8usize..48, 2usize..9, 0u8..4, 0u64..1000)
        .prop_flat_map(|(n, p, kind, seed)| {
            let entries =
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32, -4.0f64..4.0), 1..3 * n);
            let xs = proptest::collection::vec(-2.0f64..2.0, n..=n);
            (entries, xs).prop_map(move |(mut entries, xs)| {
                // One value per coordinate: keep the first of any duplicate.
                entries.sort_by_key(|&(i, j, _)| (i, j));
                entries.dedup_by_key(|&mut (i, j, _)| (i, j));
                let mut coo = CooMatrix::with_capacity(n, n, entries.len());
                for (i, j, v) in entries {
                    coo.push(i, j, v);
                }
                let a = CsrMatrix::from_coo(&coo);
                let pr = (1..=p).rev().find(|d| p % d == 0 && *d * *d <= p).unwrap() as u32;
                let pc = p as u32 / pr;
                let dist = match kind {
                    0 => MatrixDist::block_1d(n, p),
                    1 => MatrixDist::random_1d(n, p, seed),
                    2 => MatrixDist::block_2d(n, pr, pc),
                    _ => MatrixDist::random_2d(n, pr, pc, seed),
                };
                (a, dist, xs)
            })
        })
        .prop_map(|t| t)
}

/// Exact bitwise equality of two per-rank value sets (`==` on f64 would
/// accept `-0.0 == 0.0`; the claim here is stronger).
fn bits(locals: &[Vec<f64>]) -> Vec<Vec<u64>> {
    locals
        .iter()
        .map(|l| l.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Ledgers must agree step-by-step: same phases, same times, same totals.
fn assert_ledgers_equal(a: &CostLedger, b: &CostLedger) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.history, &b.history);
    prop_assert_eq!(a.total.to_bits(), b.total.to_bits());
    prop_assert_eq!(&a.by_phase, &b.by_phase);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Compiled spmv == reference spmv, bit-for-bit, with identical cost
    /// accounting, at threads 1 and threads 4.
    #[test]
    fn compiled_spmv_is_bit_identical_to_reference((a, dist, xs) in setup_strategy()) {
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &xs);

        let mut y_ref = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_ref = CostLedger::new(Machine::cab());
        reference::spmv_ref(&dm, &x, &mut y_ref, &mut l_ref);

        for threads in [1usize, 4] {
            let mut ws = SpmvWorkspace::with_threads(threads);
            let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
            let mut l = CostLedger::new(Machine::cab());
            spmv_with(&dm, &x, &mut y, &mut l, &mut ws);
            prop_assert_eq!(bits(&y.locals), bits(&y_ref.locals), "threads {}", threads);
            assert_ledgers_equal(&l, &l_ref)?;
        }
    }

    /// Compiled spmm (one strided gather) == reference spmm (one gather
    /// per column), bit-for-bit, sequential and threaded.
    #[test]
    fn compiled_spmm_is_bit_identical_to_reference(
        (a, dist, xs) in setup_strategy(),
        m in 1usize..4,
    ) {
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let n = xs.len();
        let cols: Vec<Vec<f64>> = (0..m)
            .map(|c| xs.iter().enumerate()
                .map(|(i, &v)| v + (c * i) as f64 / n as f64)
                .collect())
            .collect();
        let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);

        let mut y_ref = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
        let mut l_ref = CostLedger::new(Machine::cab());
        reference::spmm_ref(&dm, &x, &mut y_ref, &mut l_ref);

        for threads in [1usize, 3] {
            let mut ws = SpmvWorkspace::with_threads(threads);
            let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
            let mut l = CostLedger::new(Machine::cab());
            spmm_with(&dm, &x, &mut y, &mut l, &mut ws);
            prop_assert_eq!(bits(&y.locals), bits(&y_ref.locals), "threads {}", threads);
            assert_ledgers_equal(&l, &l_ref)?;
        }
    }

    /// A workspace survives reuse across calls and matrices of different
    /// shapes without contaminating results.
    #[test]
    fn workspace_reuse_is_stateless((a, dist, xs) in setup_strategy()) {
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &xs);
        let mut ws = SpmvWorkspace::new();

        let mut y1 = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l1 = CostLedger::new(Machine::cab());
        spmv_with(&dm, &x, &mut y1, &mut l1, &mut ws);
        // Second call through the same (now warm) workspace.
        let mut y2 = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l2 = CostLedger::new(Machine::cab());
        spmv_with(&dm, &x, &mut y2, &mut l2, &mut ws);
        prop_assert_eq!(bits(&y1.locals), bits(&y2.locals));
        assert_ledgers_equal(&l1, &l2)?;
    }
}
