//! Wave-scheduler coverage at SpGEMM-sized SpMM widths (ROADMAP item 5's
//! noted gap): `SpmvWorkspace::with_budget` semantics pinned at the
//! workspace level — not just in `sf2d_sim::wave::plan_waves` unit tests —
//! before the serving engine reuses a budgeted workspace across batches.
//!
//! The per-rank footprint at width `m` is `8·(|colmap| + m·|rowmap|)`
//! bytes (xcols view + column-major partials view). Pinned here:
//!
//! * a budget smaller than *any* single rank's expand payload degrades to
//!   one singleton wave per rank, with the overshoot visible through
//!   `scratch_bytes()` instead of being a failure;
//! * a budget exactly equal to the total footprint plans a single wave,
//!   and one byte less forces a split;
//! * every budget produces bitwise-identical results *and* ledger
//!   histories — wave scheduling is pure scheduling.

use std::sync::Arc;

use sf2d_gen::{rmat, RmatConfig};
use sf2d_partition::MatrixDist;
use sf2d_sim::{CostLedger, Machine};
use sf2d_spmv::{spmm_with, DistCsrMatrix, DistMultiVector, SpmvWorkspace};

/// SpGEMM-sized width: `spgemm` expands whole B-rows, so its payloads per
/// entry are this many doubles wide, not 1.
const WIDTH: usize = 32;

fn fixture() -> (DistCsrMatrix, DistMultiVector, Vec<u64>) {
    let a = rmat(&RmatConfig::graph500(7), 37);
    let d = MatrixDist::block_2d(a.nrows(), 2, 3);
    let dm = DistCsrMatrix::from_global(&a, &d);
    let n = a.nrows();
    let cols: Vec<Vec<f64>> = (0..WIDTH)
        .map(|c| {
            (0..n)
                .map(|i| ((i * (c + 2) + c) % 13) as f64 - 6.0)
                .collect()
        })
        .collect();
    let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
    let foot: Vec<u64> = dm
        .blocks
        .iter()
        .map(|b| 8 * (b.colmap.len() + WIDTH * b.rowmap.len()) as u64)
        .collect();
    (dm, x, foot)
}

/// `spmm_with` into a fresh output, returning `(locals bits, history,
/// total bits, wave count, scratch bytes)`. A fresh workspace per call:
/// scratch only ever grows, so reusing one would mask budget shrinkage.
#[allow(clippy::type_complexity)]
fn run(
    dm: &DistCsrMatrix,
    x: &DistMultiVector,
    budget: Option<u64>,
    threads: usize,
) -> (Vec<Vec<u64>>, Vec<(sf2d_sim::Phase, f64)>, u64, usize, u64) {
    let mut ws = SpmvWorkspace::with_threads(threads);
    ws.set_budget(budget);
    let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), WIDTH);
    let mut l = CostLedger::new(Machine::cab());
    spmm_with(dm, x, &mut y, &mut l, &mut ws);
    let bits = y
        .locals
        .iter()
        .map(|loc| loc.iter().map(|v| v.to_bits()).collect())
        .collect();
    (
        bits,
        l.history,
        l.total.to_bits(),
        ws.wave_count(),
        ws.scratch_bytes(),
    )
}

#[test]
fn budget_below_any_rank_payload_degrades_to_singleton_waves() {
    let (dm, x, foot) = fixture();
    let smallest = *foot.iter().min().unwrap();
    let largest = *foot.iter().max().unwrap();
    assert!(smallest > 1, "fixture ranks must have real footprints");

    let (gold, hist, total, waves, _) = run(&dm, &x, None, 1);
    assert_eq!(waves, 1, "unbudgeted is the all-resident single wave");

    for threads in [1usize, 3] {
        let (bits, h, t, waves, scratch) = run(&dm, &x, Some(smallest - 1), threads);
        // No rank fits: one singleton wave per rank, and the arena still
        // has to hold the largest rank — the overshoot is visible, not
        // a failure.
        assert_eq!(waves, dm.nprocs(), "threads {threads}");
        assert_eq!(scratch, largest, "threads {threads}");
        assert!(scratch > smallest - 1, "overshoot must be observable");
        assert_eq!(bits, gold, "threads {threads}");
        assert_eq!(h, hist, "threads {threads}");
        assert_eq!(t, total, "threads {threads}");
    }
}

#[test]
fn exact_fit_budget_is_one_wave_and_one_byte_less_splits() {
    let (dm, x, foot) = fixture();
    let total_foot: u64 = foot.iter().sum();

    let (gold, hist, total, _, _) = run(&dm, &x, None, 1);

    let (bits, h, t, waves, scratch) = run(&dm, &x, Some(total_foot), 1);
    assert_eq!(waves, 1, "exact fit plans a single wave");
    assert_eq!(scratch, total_foot);
    assert_eq!((bits.clone(), h, t), (gold.clone(), hist.clone(), total));

    let (bits, h, t, waves, scratch) = run(&dm, &x, Some(total_foot - 1), 1);
    assert!(waves > 1, "one byte below the total must split");
    assert!(scratch < total_foot, "a split must actually bound memory");
    assert_eq!((bits, h, t), (gold, hist, total));
}

#[test]
fn width_changes_the_wave_plan_for_the_same_budget() {
    // The same byte budget admits fewer ranks per wave as the SpMM width
    // grows — the footprint is width-dependent, so the engine cannot
    // reuse a width-1 plan for a wide batch. Pin with the width-32
    // footprint sum used as the budget at width 32 (one wave) versus the
    // plan it would produce at a larger width (must split).
    let (dm, x, foot) = fixture();
    let total_foot: u64 = foot.iter().sum();
    let (_, _, _, waves32, _) = run(&dm, &x, Some(total_foot), 1);
    assert_eq!(waves32, 1);

    let wide = 2 * WIDTH;
    let n = dm.n;
    let cols: Vec<Vec<f64>> = (0..wide)
        .map(|c| (0..n).map(|i| ((i + c) % 5) as f64).collect())
        .collect();
    let xw = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
    let mut ws = SpmvWorkspace::new().with_budget(total_foot);
    let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), wide);
    spmm_with(
        &dm,
        &xw,
        &mut y,
        &mut CostLedger::new(Machine::cab()),
        &mut ws,
    );
    assert!(
        ws.wave_count() > 1,
        "doubling the width must outgrow the width-32 budget"
    );
}
