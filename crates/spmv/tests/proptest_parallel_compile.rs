//! Property tests pinning the parallel, arena-compressed plan compiler to
//! the serial path: across rank counts p ∈ {1, 4, 64, 256} × layouts ×
//! thread counts (bare threads and the persistent pool), `FillComplete`
//! must produce **byte-identical** distributed matrices — same blocks,
//! same gid-level plans, same compiled arena — and an SpMV executed
//! through the parallel-compiled matrix must replay the exact ledger
//! (history and total bits) of the serial-compiled one.

use std::sync::Arc;

use proptest::prelude::*;
use sf2d_gen::{rmat, RmatConfig};
use sf2d_partition::{grid_shape, MatrixDist};
use sf2d_sim::sf2d_par::Pool;
use sf2d_sim::{CostLedger, Machine};
use sf2d_spmv::{spmv_with, DistCsrMatrix, DistVector, SpmvWorkspace};

const RANK_COUNTS: [usize; 4] = [1, 4, 64, 256];

fn layout_for(kind: u8, n: usize, p: usize, seed: u64) -> MatrixDist {
    let (pr, pc) = grid_shape(p);
    match kind {
        0 => MatrixDist::block_1d(n, p),
        1 => MatrixDist::random_1d(n, p, seed),
        2 => MatrixDist::block_2d(n, pr, pc),
        _ => MatrixDist::random_2d(n, pr, pc, seed),
    }
}

/// Every observable byte of the two matrices must agree; `CompiledSpmv`
/// derives `Eq` over the shared arena and every phase plan, so `==`
/// there covers the compressed store, offsets, and cost vectors.
fn assert_identical(par: &DistCsrMatrix, serial: &DistCsrMatrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(&par.import, &serial.import);
    prop_assert_eq!(&par.export, &serial.export);
    prop_assert_eq!(&par.compiled, &serial.compiled);
    prop_assert_eq!(par.blocks.len(), serial.blocks.len());
    for (b1, b2) in par.blocks.iter().zip(&serial.blocks) {
        prop_assert_eq!(&b1.rowmap, &b2.rowmap);
        prop_assert_eq!(&b1.colmap, &b2.colmap);
        prop_assert_eq!(&b1.local, &b2.local);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel FillComplete (bare threads and pooled) is byte-identical
    /// to serial at every rank count and layout family.
    #[test]
    fn parallel_compile_is_byte_identical_across_scales(
        scale in 5u32..8,
        mseed in 0u64..1000,
        kind in 0u8..4,
        lseed in 0u64..100,
        threads in 2usize..6,
    ) {
        let a = rmat(&RmatConfig::graph500(scale), mseed);
        let pool = Pool::new(threads);
        for p in RANK_COUNTS {
            let dist = layout_for(kind, a.nrows(), p, lseed);
            let serial = DistCsrMatrix::from_global(&a, &dist);
            let bare = DistCsrMatrix::from_global_with(&a, &dist, threads, None);
            assert_identical(&bare, &serial)?;
            let pooled = DistCsrMatrix::from_global_with(&a, &dist, threads, Some(&pool));
            assert_identical(&pooled, &serial)?;
        }
    }

    /// An SpMV through a parallel-compiled matrix replays the serial
    /// ledger exactly: same superstep history, same total bits, same
    /// output bits — the compressed plans are not just equal, they
    /// *execute* identically.
    #[test]
    fn parallel_compiled_spmv_replays_the_serial_ledger(
        scale in 5u32..8,
        mseed in 0u64..1000,
        kind in 0u8..4,
        lseed in 0u64..100,
    ) {
        let a = rmat(&RmatConfig::graph500(scale), mseed);
        let n = a.nrows();
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        for p in [4usize, 64] {
            let dist = layout_for(kind, n, p, lseed);
            let serial = DistCsrMatrix::from_global(&a, &dist);
            let par = DistCsrMatrix::from_global_with(&a, &dist, 3, None);

            let x0 = DistVector::from_global(Arc::clone(&serial.vmap), &xs);
            let mut y0 = DistVector::zeros(Arc::clone(&serial.vmap));
            let mut l0 = CostLedger::new(Machine::cab());
            spmv_with(&serial, &x0, &mut y0, &mut l0, &mut SpmvWorkspace::new());

            let x1 = DistVector::from_global(Arc::clone(&par.vmap), &xs);
            let mut y1 = DistVector::zeros(Arc::clone(&par.vmap));
            let mut l1 = CostLedger::new(Machine::cab());
            spmv_with(&par, &x1, &mut y1, &mut l1, &mut SpmvWorkspace::new());

            prop_assert_eq!(&l0.history, &l1.history);
            prop_assert_eq!(l0.total.to_bits(), l1.total.to_bits());
            for (a, b) in y0.locals.iter().zip(&y1.locals) {
                let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(ab, bb);
            }
        }
    }
}
