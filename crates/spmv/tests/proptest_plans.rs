//! Property-based tests for communication plans: conservation, gather /
//! scatter duality, and cost bookkeeping on random maps and need-sets.

use proptest::prelude::*;
use sf2d_partition::MatrixDist;
use sf2d_spmv::{CommPlan, VectorMap};

/// Random map + per-rank sorted need lists.
fn setup_strategy() -> impl Strategy<Value = (VectorMap, Vec<Vec<u32>>)> {
    (4usize..40, 2usize..8, 0u64..500)
        .prop_flat_map(|(n, p, seed)| {
            let _map = VectorMap::from_dist(&MatrixDist::random_1d(n, p, seed));
            proptest::collection::vec(proptest::collection::vec(0u32..n as u32, 0..n), p..=p)
                .prop_map(move |mut needs| {
                    for need in &mut needs {
                        need.sort_unstable();
                        need.dedup();
                    }
                    (
                        VectorMap::from_dist(&MatrixDist::random_1d(n, p, seed)),
                        needs,
                    )
                })
        })
        .prop_map(|(m, n)| (m, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A gather delivers exactly the remote gids requested, with the right
    /// values, in deterministic source order.
    #[test]
    fn gather_delivers_exactly_the_remote_needs((map, needs) in setup_strategy()) {
        let p = map.nprocs();
        let plan = CommPlan::gather(&needs, &map);
        // Locals: value of gid g is g * 3.0 + 1.
        let locals: Vec<Vec<f64>> = (0..p)
            .map(|r| map.gids(r).iter().map(|&g| g as f64 * 3.0 + 1.0).collect())
            .collect();
        let got = plan.execute_gather(&map, &locals);
        for (r, need) in needs.iter().enumerate() {
            let expect: Vec<u32> =
                need.iter().copied().filter(|&g| map.owner(g) != r as u32).collect();
            let got_gids: Vec<u32> = got[r].iter().map(|&(g, _)| g).collect();
            let mut sorted = got_gids.clone();
            sorted.sort_unstable();
            let mut expect_sorted = expect.clone();
            expect_sorted.sort_unstable();
            prop_assert_eq!(sorted, expect_sorted, "rank {}", r);
            for &(g, v) in &got[r] {
                prop_assert_eq!(v, g as f64 * 3.0 + 1.0);
            }
        }
    }

    /// Volume bookkeeping: plan volume equals the number of delivered
    /// values; send costs sum to 8 bytes per double.
    #[test]
    fn plan_volume_matches_traffic((map, needs) in setup_strategy()) {
        let p = map.nprocs();
        let plan = CommPlan::gather(&needs, &map);
        let locals: Vec<Vec<f64>> = (0..p).map(|r| vec![0.0; map.nlocal(r)]).collect();
        let got = plan.execute_gather(&map, &locals);
        let delivered: usize = got.iter().map(|g| g.len()).sum();
        prop_assert_eq!(plan.total_volume(), delivered);
        let bytes: u64 = plan.send_costs().iter().map(|c| c.bytes).sum();
        prop_assert_eq!(bytes, 8 * delivered as u64);
    }

    /// Gather/scatter duality: scatter-adding ones along the reverse plan
    /// increments each requested gid exactly once per requesting rank.
    #[test]
    fn scatter_add_conserves_mass((map, needs) in setup_strategy()) {
        let p = map.nprocs();
        let plan = CommPlan::gather(&needs, &map);
        let mut locals: Vec<Vec<f64>> = (0..p).map(|r| vec![0.0; map.nlocal(r)]).collect();
        let contributions: Vec<Vec<(u32, f64)>> = (0..p)
            .map(|r| {
                plan.recvs[r]
                    .iter()
                    .flat_map(|(_, gids)| gids.iter().map(|&g| (g, 1.0)))
                    .collect()
            })
            .collect();
        let total_sent: f64 =
            contributions.iter().map(|c| c.iter().map(|&(_, v)| v).sum::<f64>()).sum();
        plan.execute_scatter_add(&map, &contributions, &mut locals);
        let total_received: f64 = locals.iter().flat_map(|l| l.iter()).sum();
        prop_assert!((total_sent - total_received).abs() < 1e-12);
    }

    /// No self-messages ever appear in a plan.
    #[test]
    fn no_self_messages((map, needs) in setup_strategy()) {
        let plan = CommPlan::gather(&needs, &map);
        for (r, out) in plan.sends.iter().enumerate() {
            for (dst, _) in out {
                prop_assert_ne!(*dst as usize, r);
            }
        }
    }
}
