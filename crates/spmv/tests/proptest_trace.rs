//! Property tests for the tracing facade's zero-interference guarantee:
//! running the compiled SpMV/SpMM with tracing **enabled** produces
//! bit-identical results and byte-identical ledger charges to running it
//! **disabled** — instrumentation observes the computation, never
//! perturbs it. Also pins that the emitted superstep samples reproduce
//! the ledger's charges exactly.

use std::sync::Arc;

use proptest::prelude::*;
use sf2d_graph::{CooMatrix, CsrMatrix};
use sf2d_partition::MatrixDist;
use sf2d_sim::{CostLedger, Machine};
use sf2d_spmv::{spmm_with, spmv_with, DistCsrMatrix, DistMultiVector, DistVector, SpmvWorkspace};

fn setup_strategy() -> impl Strategy<Value = (CsrMatrix, MatrixDist, Vec<f64>)> {
    (8usize..40, 2usize..8, 0u8..4, 0u64..1000).prop_flat_map(|(n, p, kind, seed)| {
        let entries =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, -4.0f64..4.0), 1..3 * n);
        let xs = proptest::collection::vec(-2.0f64..2.0, n..=n);
        (entries, xs).prop_map(move |(mut entries, xs)| {
            entries.sort_by_key(|&(i, j, _)| (i, j));
            entries.dedup_by_key(|&mut (i, j, _)| (i, j));
            let mut coo = CooMatrix::with_capacity(n, n, entries.len());
            for (i, j, v) in entries {
                coo.push(i, j, v);
            }
            let a = CsrMatrix::from_coo(&coo);
            let pr = (1..=p).rev().find(|d| p % d == 0 && *d * *d <= p).unwrap() as u32;
            let pc = p as u32 / pr;
            let dist = match kind {
                0 => MatrixDist::block_1d(n, p),
                1 => MatrixDist::random_1d(n, p, seed),
                2 => MatrixDist::block_2d(n, pr, pc),
                _ => MatrixDist::random_2d(n, pr, pc, seed),
            };
            (a, dist, xs)
        })
    })
}

fn bits(locals: &[Vec<f64>]) -> Vec<Vec<u64>> {
    locals
        .iter()
        .map(|l| l.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// The superstep trace must replay to exactly the ledger's charges: same
/// step count, each step's time = max of its samples, same phase kinds.
fn assert_trace_replays_ledger(
    events: &[sf2d_obs::TraceEvent],
    ledger: &CostLedger,
) -> Result<(), TestCaseError> {
    let steps: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            sf2d_obs::TraceEvent::Superstep { phase, samples, .. } => Some((phase, samples)),
            _ => None,
        })
        .collect();
    prop_assert_eq!(steps.len(), ledger.history.len());
    let mut replay_total = 0.0f64;
    for ((phase, samples), (lphase, ltime)) in steps.iter().zip(&ledger.history) {
        prop_assert_eq!(**phase, sf2d_obs::PhaseKind::from(*lphase));
        let t = samples.iter().map(|s| s.time).fold(0.0f64, f64::max);
        prop_assert_eq!(t.to_bits(), ltime.to_bits());
        replay_total += t;
    }
    prop_assert_eq!(replay_total.to_bits(), ledger.total.to_bits());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// spmv with tracing on == spmv with tracing off, bit for bit, and
    /// the emitted trace reproduces the ledger.
    #[test]
    fn traced_spmv_is_bit_identical_to_untraced((a, dist, xs) in setup_strategy()) {
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &xs);

        prop_assert!(!sf2d_obs::enabled());
        let mut y_off = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_off = CostLedger::new(Machine::cab());
        spmv_with(&dm, &x, &mut y_off, &mut l_off, &mut SpmvWorkspace::new());

        sf2d_obs::enable();
        let mut y_on = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_on = CostLedger::new(Machine::cab());
        spmv_with(&dm, &x, &mut y_on, &mut l_on, &mut SpmvWorkspace::new());
        sf2d_obs::disable();
        let events = sf2d_obs::take_events();

        prop_assert_eq!(bits(&y_off.locals), bits(&y_on.locals));
        prop_assert_eq!(&l_off.history, &l_on.history);
        prop_assert_eq!(l_off.total.to_bits(), l_on.total.to_bits());
        prop_assert_eq!(&l_off.by_phase, &l_on.by_phase);
        assert_trace_replays_ledger(&events, &l_on)?;
    }

    /// Same for the blocked SpMM, at a couple of widths.
    #[test]
    fn traced_spmm_is_bit_identical_to_untraced((a, dist, xs) in setup_strategy()) {
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let n = a.nrows();
        for m in [1usize, 3] {
            let cols: Vec<Vec<f64>> = (0..m)
                .map(|c| xs.iter().map(|v| v * (c + 1) as f64).collect())
                .collect();
            let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
            prop_assert_eq!(cols[0].len(), n);

            prop_assert!(!sf2d_obs::enabled());
            let mut y_off = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
            let mut l_off = CostLedger::new(Machine::cab());
            spmm_with(&dm, &x, &mut y_off, &mut l_off, &mut SpmvWorkspace::new());

            sf2d_obs::enable();
            let mut y_on = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
            let mut l_on = CostLedger::new(Machine::cab());
            spmm_with(&dm, &x, &mut y_on, &mut l_on, &mut SpmvWorkspace::new());
            sf2d_obs::disable();
            let events = sf2d_obs::take_events();

            prop_assert_eq!(bits(&y_off.locals), bits(&y_on.locals));
            prop_assert_eq!(&l_off.history, &l_on.history);
            prop_assert_eq!(l_off.total.to_bits(), l_on.total.to_bits());
            assert_trace_replays_ledger(&events, &l_on)?;
        }
    }

    /// The metrics registry agrees with the ledger: the latency-only time
    /// of the expand phase equals the max per-rank message counter.
    #[test]
    fn registry_counters_match_ledger_charges((a, dist, xs) in setup_strategy()) {
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &xs);
        let msgs_only = Machine { alpha: 1.0, beta: 0.0, gamma: 0.0, name: "msgs" };
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(msgs_only);
        spmv_with(&dm, &x, &mut y, &mut ledger, &mut SpmvWorkspace::new());

        let reg = sf2d_spmv::diagnose::spmv_metrics(&dm);
        let expand = ledger.by_phase[&sf2d_sim::Phase::Expand];
        let max_msgs = reg.max("spmv.expand.msgs").map(|(_, v)| v).unwrap_or(0);
        prop_assert_eq!(expand as u64, max_msgs);
    }
}
