//! Property tests for the chunked helpers' determinism contract, swept
//! over **both** axes that could reorder work: the thread count *and* the
//! chunk shape (grain / alignment). The partitioner's byte-identity
//! guarantee rests on these primitives being bit-identical to the
//! sequential loop no matter how the index space was diced.

use proptest::prelude::*;
use sf2d_par::{chunk_ranges_aligned, tree_fold, Par, Pool};

/// A mixing function whose value depends on the index in a way that makes
/// any misrouted index visible.
fn mix(i: usize, salt: u64) -> u64 {
    (i as u64 ^ salt)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .rotate_left(17)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Par::fill` is byte-identical to the sequential loop for every
    /// (threads, grain, pool?) combination — grain changes the chunk
    /// count, threads change the schedule, neither may change the bytes.
    #[test]
    fn fill_identical_across_threads_and_grains(
        len in 0usize..3000,
        salt in 0u64..u64::MAX,
        grain in 1usize..2048,
        threads in 1usize..9,
        use_pool in proptest::bool::ANY,
    ) {
        let mut expect = vec![0u64; len];
        Par::seq().fill(&mut expect, 1, |i| mix(i, salt));
        let pool;
        let handle = if use_pool {
            pool = Pool::new(threads);
            Par::new(threads, Some(&pool))
        } else {
            Par::new(threads, None)
        };
        let mut got = vec![0u64; len];
        handle.fill(&mut got, grain, |i| mix(i, salt));
        prop_assert_eq!(got, expect);
    }

    /// Chunk-order merges of `map_chunks` reproduce the sequential
    /// concatenation for any chunk shape.
    #[test]
    fn map_chunks_merge_identical(
        len in 0usize..3000,
        salt in 0u64..u64::MAX,
        grain in 1usize..2048,
        threads in 1usize..9,
        use_pool in proptest::bool::ANY,
    ) {
        let expect: Vec<u64> = (0..len).map(|i| mix(i, salt)).collect();
        let pool;
        let handle = if use_pool {
            pool = Pool::new(threads);
            Par::new(threads, Some(&pool))
        } else {
            Par::new(threads, None)
        };
        let got: Vec<u64> = handle
            .map_chunks(len, grain, |_, r| r.map(|i| mix(i, salt)).collect::<Vec<u64>>())
            .into_iter()
            .flatten()
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Chunked exact-integer reductions (the fixed-shape tree fold) equal
    /// the sequential sum for any chunk shape and thread count.
    #[test]
    fn reduce_identical_across_chunkings(
        len in 0usize..3000,
        salt in 0u64..u64::MAX,
        grain in 1usize..2048,
        threads in 1usize..9,
    ) {
        let expect = (0..len).fold(0u64, |a, i| a.wrapping_add(mix(i, salt)));
        let pool = Pool::new(threads);
        let got = Par::new(threads, Some(&pool))
            .reduce(
                len,
                grain,
                |_, r| r.fold(0u64, |a, i| a.wrapping_add(mix(i, salt))),
                u64::wrapping_add,
            )
            .unwrap_or(0);
        prop_assert_eq!(got, expect);
    }

    /// Observability must be free of behavioral effect: running the same
    /// fill with pool tracing enabled produces byte-identical output, and
    /// the spans it emits account for every chunk that ran on the pool.
    #[test]
    fn fill_identical_with_pool_tracing_enabled(
        len in 0usize..3000,
        salt in 0u64..u64::MAX,
        grain in 1usize..2048,
        threads in 1usize..9,
    ) {
        let mut expect = vec![0u64; len];
        Par::seq().fill(&mut expect, 1, |i| mix(i, salt));
        let pool = Pool::new(threads);
        pool.enable_tracing(0.0);
        let mut got = vec![0u64; len];
        Par::new(threads, Some(&pool)).fill(&mut got, grain, |i| mix(i, salt));
        pool.disable_tracing();
        let events = pool.drain_trace_events();
        prop_assert_eq!(got, expect);
        // Whatever ran through the pool is attributed to a worker span.
        let total_jobs = pool.stats().total_jobs;
        let span_jobs: u64 = events
            .iter()
            .map(|e| match e {
                sf2d_obs::TraceEvent::WorkerSpan { jobs, .. } => *jobs,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(span_jobs, total_jobs);
    }

    /// The aligned chunk shape is a pure function of (parts, len): ranges
    /// tile `0..len` exactly, boundaries are aligned, and the shape never
    /// depends on anything else.
    #[test]
    fn aligned_ranges_tile_exactly(parts in 1usize..64, len in 0usize..10_000, align in 1usize..256) {
        let ranges = chunk_ranges_aligned(parts, len, align);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start);
            if r.end != len {
                prop_assert_eq!(r.end % align, 0);
            }
            next = r.end;
        }
        prop_assert_eq!(next, len);
        prop_assert!(ranges.len() <= parts);
    }

    /// tree_fold of an associative op equals the linear fold regardless of
    /// how many leaves the chunking produced.
    #[test]
    fn tree_fold_matches_linear(
        raw in proptest::collection::vec(0i64..8_000_000_000_000, 0..200),
    ) {
        // Center on zero so both signs are exercised.
        let items: Vec<i64> = raw.iter().map(|&v| v - 4_000_000_000_000).collect();
        let linear = items.iter().fold(0i64, |a, &b| a.wrapping_add(b));
        let tree = tree_fold(items, i64::wrapping_add).unwrap_or(0);
        prop_assert_eq!(tree, linear);
    }
}
