//! Deterministic scoped-thread work primitives.
//!
//! This crate is the shared "work module" between the simulator's parallel
//! superstep engine (`sf2d-sim`) and the parallel multilevel partitioner
//! (`sf2d-partition`). Everything here is built on `std::thread::scope` —
//! no external thread-pool dependency — and every primitive carries the
//! same contract: **the result is bit-identical to the sequential
//! execution for any thread count**, because work is assigned to threads
//! by index ranges fixed before any thread starts, each unit writes only
//! its own disjoint output, and results are combined in index order.
//!
//! Thread counts come from one shared knob: the `SF2D_THREADS`
//! environment variable (unset means 1, i.e. fully sequential; set to
//! anything that is not a positive integer is a loud error — see
//! [`parse_threads`]). Components that want a per-call override take a
//! `threads: usize` parameter where `0` means "resolve from the
//! environment" — see [`resolve_threads`].

use std::ops::Range;

pub mod pool;
pub use pool::{BatchTag, Pool, PoolStats, WorkerStats};

/// Parses a raw `SF2D_THREADS` value. `None` (unset) means 1
/// (sequential); anything else must be a positive integer. Rejected
/// forms get a message naming the offending value, so a typo like
/// `SF2D_THREADS=O8` fails the run instead of silently degrading it to
/// sequential execution.
pub fn parse_threads(raw: Option<&str>) -> Result<usize, String> {
    let Some(raw) = raw else { return Ok(1) };
    let v = raw.trim();
    if v.is_empty() {
        return Err(
            "SF2D_THREADS is set but empty; unset it or set a positive integer (e.g. 4)".into(),
        );
    }
    match v.parse::<usize>() {
        Ok(0) => Err(format!(
            "SF2D_THREADS={raw:?}: thread count must be at least 1"
        )),
        Ok(n) => Ok(n),
        Err(e) => Err(format!(
            "SF2D_THREADS={raw:?} is not a positive integer ({e}); expected e.g. 1, 4, 8"
        )),
    }
}

/// Reads the shared `SF2D_THREADS` environment variable; unset falls
/// back to 1 (sequential).
///
/// # Panics
/// Panics with a clear message when the variable is set to anything
/// that is not a positive integer (empty, `0`, negative, non-numeric,
/// fractional) — silently running sequentially on a typo would make
/// "parallel" benchmark numbers lies.
pub fn threads_from_env() -> usize {
    let raw = std::env::var("SF2D_THREADS").ok();
    match parse_threads(raw.as_deref()) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// Resolves a per-call thread request: `0` defers to [`threads_from_env`],
/// any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        threads_from_env()
    } else {
        requested
    }
}

/// Splits a thread budget between two child tasks proportionally to their
/// work estimates, giving each child at least one thread — a side is never
/// starved to 0 no matter how lopsided (or huge) the work estimates are.
/// With a budget of 0 or 1 both children get 1 (they will run sequentially
/// anyway).
pub fn split_threads(threads: usize, w0: usize, w1: usize) -> (usize, usize) {
    if threads <= 1 {
        return (1, 1);
    }
    // u128 intermediates: `threads * w0` must not overflow even for work
    // estimates near usize::MAX (nonzero counts are unbounded inputs here).
    let total = (w0 as u128 + w1 as u128).max(1);
    let t0 = ((threads as u128 * w0 as u128 + total / 2) / total) as usize;
    let t0 = t0.clamp(1, threads - 1);
    (t0, threads - t0)
}

/// Runs `f(rank, &mut items[rank])` for every rank, fanning the ranks out
/// across up to `threads` scoped OS threads in disjoint contiguous
/// chunks.
///
/// Because each rank touches only its own slot (plus whatever shared
/// read-only state `f` captures), the outcome is **bit-identical** to the
/// sequential loop for any thread count — asserted by tests here and
/// property-tested end-to-end in `sf2d-spmv`. `threads <= 1` runs the
/// plain loop with zero overhead.
pub fn par_ranks<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        for (r, item) in items.iter_mut().enumerate() {
            f(r, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    std::thread::scope(|scope| {
        for (ci, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, item) in slice.iter_mut().enumerate() {
                    f(ci * chunk + j, item);
                }
            });
        }
    });
}

/// [`par_ranks`] on a persistent [`Pool`] instead of per-call scoped
/// threads: the same disjoint contiguous chunks (so the result is
/// bit-identical to `par_ranks` and to the sequential loop), but
/// dispatched as one pool batch — and therefore visible to the pool's
/// stats and per-worker trace spans (tagged `ranks`).
pub fn par_ranks_pool<T, F>(pool: &Pool, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if pool.threads() <= 1 || items.len() <= 1 {
        for (r, item) in items.iter_mut().enumerate() {
            f(r, item);
        }
        return;
    }
    let ranges = chunk_ranges(pool.threads(), items.len());
    let base = items.as_mut_ptr() as usize;
    let tag = BatchTag {
        label: "ranks",
        kind: sf2d_obs::PhaseKind::Other,
    };
    pool.run_tagged(ranges.len(), tag, |ci| {
        for i in ranges[ci].clone() {
            // SAFETY: chunk ranges are disjoint, so each job holds the
            // only reference to its items — the scoped-thread pattern of
            // `par_ranks`, batch edition.
            let item = unsafe { &mut *(base as *mut T).add(i) };
            f(i, item);
        }
    });
}

/// [`par_ranks`] / [`par_ranks_pool`] behind one knob: dispatches to the
/// persistent pool when one is supplied (amortizing thread spawns across
/// many small batches — the plan-compilation pattern, where a matrix
/// build issues several per-rank sweeps back to back) and to scoped
/// threads otherwise. All three execution shapes are bit-identical
/// because the per-rank chunks are disjoint and fixed before any thread
/// starts.
pub fn par_ranks_with<T, F>(threads: usize, pool: Option<&Pool>, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    match pool {
        Some(pool) if threads > 1 => par_ranks_pool(pool, items, f),
        _ => par_ranks(threads, items, f),
    }
}

/// Two-way fork-join: runs `fa` on the current thread and `fb` on a
/// scoped sibling thread when `parallel` is true, or both sequentially
/// (fa then fb) otherwise. Returns `(fa(), fb())` either way.
///
/// The sequential order is `fa` first; since the closures must not share
/// mutable state (enforced by the borrow checker plus any `unsafe`
/// disjointness contracts like [`SharedSlice`]), the parallel execution
/// produces the same results.
pub fn join<A, B, FA, FB>(parallel: bool, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if !parallel {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = fa();
        let b = hb.join().expect("sf2d-par: joined task panicked");
        (a, b)
    })
}

/// Chunk boundaries for splitting `len` items across up to `threads`
/// contiguous chunks: at most `threads` ranges covering `0..len` in
/// order. With `threads <= 1` (or few items) this is one range.
pub fn chunk_ranges(threads: usize, len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(threads.max(1).min(len));
    (0..len.div_ceil(chunk))
        .map(|ci| ci * chunk..((ci + 1) * chunk).min(len))
        .collect()
}

/// Chunk boundaries for splitting `len` items across up to `parts`
/// contiguous chunks, with every boundary (except the final `len`) rounded
/// up to a multiple of `align`. Aligning boundaries to a cache line's
/// worth of elements keeps two chunks from ping-ponging the line that
/// straddles their boundary (false sharing) when each chunk writes its own
/// output range.
///
/// The chunk shape depends only on `(parts, len, align)` — never on which
/// thread runs which chunk — so chunk-order merges stay deterministic.
pub fn chunk_ranges_aligned(parts: usize, len: usize, align: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let align = align.max(1);
    let chunk = len.div_ceil(parts.max(1).min(len));
    let chunk = chunk.div_ceil(align) * align;
    (0..len.div_ceil(chunk))
        .map(|ci| ci * chunk..((ci + 1) * chunk).min(len))
        .collect()
}

/// Reduces `items` by a **fixed-shape** pairwise tree: adjacent pairs are
/// combined level by level (`(0,1) (2,3) …`, then the results pairwise,
/// and so on) until one value remains. The combining shape is a pure
/// function of `items.len()`, so for an associative `f` the result is
/// identical however the leaves were produced — unlike a left fold, whose
/// association order is pinned to the chunk count.
pub fn tree_fold<T>(items: Vec<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    let mut level = items;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(f(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.into_iter().next()
}

/// Elements per chunk-boundary alignment unit: 64 elements keeps chunk
/// edges off a shared cache line for element sizes down to one byte.
pub const CHUNK_ALIGN: usize = 64;

/// A thread budget plus an optional persistent [`Pool`] to run chunked
/// loops on — the handle the partitioner threads through its phases.
///
/// Every loop is **granularity-gated**: a loop over `work` items with a
/// per-item cost class `grain` runs on `min(threads, work / grain + 1)`
/// threads, so tiny coarse-level loops run inline instead of paying a
/// dispatch for nothing. With a pool, dispatch is a condvar wake of
/// persistent workers; without one, scoped threads are spawned per call
/// (the pre-pool behaviour). The result is byte-identical in all cases.
#[derive(Clone, Copy)]
pub struct Par<'p> {
    threads: usize,
    pool: Option<&'p Pool>,
    /// Attribution for pool batches this handle submits (see [`BatchTag`]).
    tag: BatchTag,
}

impl<'p> Par<'p> {
    /// A sequential handle: every loop runs inline.
    pub const fn seq() -> Par<'static> {
        Par {
            threads: 1,
            pool: None,
            tag: BatchTag {
                label: "batch",
                kind: sf2d_obs::PhaseKind::Other,
            },
        }
    }

    /// A handle over `threads` threads, optionally backed by a pool.
    pub fn new(threads: usize, pool: Option<&'p Pool>) -> Par<'p> {
        Par {
            threads: threads.max(1),
            pool,
            tag: BatchTag::default(),
        }
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Same budget and pool, different batch attribution: loops submitted
    /// through the returned handle carry `tag` on their per-worker trace
    /// spans. Costs nothing when tracing is off.
    pub fn tagged(&self, tag: BatchTag) -> Par<'p> {
        Par { tag, ..*self }
    }

    /// Same pool, different budget (for fork-join splits).
    pub fn with_threads(&self, threads: usize) -> Par<'p> {
        Par {
            threads: threads.max(1),
            ..*self
        }
    }

    /// Splits the budget proportionally to two work estimates (see
    /// [`split_threads`]); both halves keep the pool — concurrent
    /// submitters serialize batch-by-batch inside [`Pool::run`].
    pub fn split(&self, w0: usize, w1: usize) -> (Par<'p>, Par<'p>) {
        let (t0, t1) = split_threads(self.threads, w0, w1);
        (self.with_threads(t0), self.with_threads(t1))
    }

    /// Threads worth using for `work` items of cost class `grain`
    /// (items per thread-worth of work).
    pub fn threads_for(&self, work: usize, grain: usize) -> usize {
        self.threads.min(work / grain.max(1) + 1)
    }

    /// `out[i] = f(i)` with aligned chunks; inline below the grain.
    pub fn fill<T, F>(&self, out: &mut [T], grain: usize, f: F)
    where
        T: Send + Copy,
        F: Fn(usize) -> T + Sync,
    {
        let t = self.threads_for(out.len(), grain);
        if t <= 1 {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(i);
            }
            return;
        }
        let ranges = chunk_ranges_aligned(t, out.len(), CHUNK_ALIGN);
        match self.pool {
            Some(pool) => {
                let shared = SharedSlice::new(out);
                pool.run_tagged(ranges.len(), self.tag, |ci| {
                    for i in ranges[ci].clone() {
                        // SAFETY: chunk ranges are disjoint; `T: Copy` so
                        // the overwritten slot needs no drop.
                        unsafe { shared.write(i, f(i)) };
                    }
                });
            }
            None => par_fill(t, out, f),
        }
    }

    /// `a[i], b[i] = f(i)` with shared aligned chunk boundaries.
    pub fn fill2<A, B, F>(&self, a: &mut [A], b: &mut [B], grain: usize, f: F)
    where
        A: Send + Copy,
        B: Send + Copy,
        F: Fn(usize) -> (A, B) + Sync,
    {
        assert_eq!(a.len(), b.len(), "fill2 requires equal-length slices");
        let t = self.threads_for(a.len(), grain);
        if t <= 1 {
            for (i, (sa, sb)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                let (va, vb) = f(i);
                *sa = va;
                *sb = vb;
            }
            return;
        }
        let ranges = chunk_ranges_aligned(t, a.len(), CHUNK_ALIGN);
        match self.pool {
            Some(pool) => {
                let sa = SharedSlice::new(a);
                let sb = SharedSlice::new(b);
                pool.run_tagged(ranges.len(), self.tag, |ci| {
                    for i in ranges[ci].clone() {
                        let (va, vb) = f(i);
                        // SAFETY: disjoint chunks, Copy slots.
                        unsafe {
                            sa.write(i, va);
                            sb.write(i, vb);
                        }
                    }
                });
            }
            None => par_fill2(t, a, b, f),
        }
    }

    /// Maps aligned chunks of `0..len` through `f` and returns the results
    /// **in chunk order** (same merge contract as [`par_map_chunks`]).
    pub fn map_chunks<R, F>(&self, len: usize, grain: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let t = self.threads_for(len, grain);
        let ranges = chunk_ranges_aligned(t, len, CHUNK_ALIGN);
        if t <= 1 || ranges.len() <= 1 {
            return ranges
                .into_iter()
                .enumerate()
                .map(|(ci, r)| f(ci, r))
                .collect();
        }
        match self.pool {
            Some(pool) => {
                let mut out: Vec<Option<R>> = Vec::new();
                out.resize_with(ranges.len(), || None);
                let shared = SharedSlice::new(&mut out);
                pool.run_tagged(ranges.len(), self.tag, |ci| {
                    let r = f(ci, ranges[ci].clone());
                    // SAFETY: each job writes only its own slot, and the
                    // overwritten value is `None` (nothing to drop).
                    unsafe { shared.write(ci, Some(r)) };
                });
                out.into_iter()
                    .map(|r| r.expect("sf2d-par: chunk result missing"))
                    .collect()
            }
            None => std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .enumerate()
                    .map(|(ci, r)| {
                        let f = &f;
                        scope.spawn(move || f(ci, r))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sf2d-par: chunk task panicked"))
                    .collect()
            }),
        }
    }

    /// Chunked reduction: maps aligned chunks through `f`, then combines
    /// the per-chunk values with a fixed-shape [`tree_fold`]. `combine`
    /// must be associative (exact integer sums, max, …); the tree shape
    /// depends only on the chunk count, which depends only on
    /// `(threads, len, grain)`.
    pub fn reduce<R, F, C>(&self, len: usize, grain: usize, f: F, combine: C) -> Option<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
        C: Fn(R, R) -> R,
    {
        tree_fold(self.map_chunks(len, grain, f), combine)
    }
}

/// Maps each chunk of `0..len` through `f` on its own scoped thread and
/// returns the per-chunk results **in chunk order**. `f` receives
/// `(chunk_index, range)`.
///
/// Deterministic-merge building block: as long as `f`'s result for a
/// range depends only on the items in that range (not on chunk
/// boundaries), concatenating the returned values in order reproduces
/// the sequential result exactly, independent of thread count.
pub fn par_map_chunks<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(threads, len);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(ci, r)| f(ci, r))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(ci, r)| {
                let f = &f;
                scope.spawn(move || f(ci, r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sf2d-par: chunk task panicked"))
            .collect()
    })
}

/// Fills `out[i] = f(i)` in parallel chunks. Each slot is written exactly
/// once from a pure-by-index function, so the result is identical for
/// any thread count.
pub fn par_fill<T, F>(threads: usize, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || out.len() <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = out.len().div_ceil(threads.min(out.len()));
    std::thread::scope(|scope| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, slot) in slice.iter_mut().enumerate() {
                    *slot = f(ci * chunk + j);
                }
            });
        }
    });
}

/// Fills two equal-length slices `a[i], b[i] = f(i)` in parallel chunks
/// with shared chunk boundaries (same contract as [`par_fill`]).
pub fn par_fill2<A, B, F>(threads: usize, a: &mut [A], b: &mut [B], f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize) -> (A, B) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_fill2 requires equal-length slices");
    if threads <= 1 || a.len() <= 1 {
        for (i, (sa, sb)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            let (va, vb) = f(i);
            *sa = va;
            *sb = vb;
        }
        return;
    }
    let chunk = a.len().div_ceil(threads.min(a.len()));
    std::thread::scope(|scope| {
        for (ci, (ca, cb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, (sa, sb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    let (va, vb) = f(ci * chunk + j);
                    *sa = va;
                    *sb = vb;
                }
            });
        }
    });
}

/// A raw view over a mutable slice that concurrent tasks may write
/// through, **provided they write disjoint indices**.
///
/// The recursive-bisection partitioner scatters each subtree's labels to
/// the global part vector at indices owned exclusively by that subtree;
/// the borrow checker cannot see that disjointness, so this wrapper
/// carries it as an explicit unsafe contract instead of forcing a
/// gather-then-merge copy.
///
/// # Safety contract
/// Callers of [`SharedSlice::write`] must guarantee that no two tasks
/// ever write the same index and that nobody reads the slice until all
/// writers have been joined (the scoped-thread structure of [`join`] /
/// [`par_map_chunks`] enforces the join).
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for disjoint concurrent writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// The caller must ensure no other task writes `index` concurrently
    /// or at any other time before the writers are joined (see the type
    /// docs). Bounds are checked; disjointness is not.
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(index < self.len, "SharedSlice write out of bounds");
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_threads_defaults_to_one() {
        // SF2D_THREADS is not set in the test environment.
        assert!(threads_from_env() >= 1);
        assert_eq!(resolve_threads(4), 4);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        // Tested through the pure parser, not by mutating the process
        // environment (env mutation races with parallel tests).
        assert_eq!(parse_threads(None), Ok(1));
        assert_eq!(parse_threads(Some("1")), Ok(1));
        assert_eq!(parse_threads(Some("8")), Ok(8));
        assert_eq!(parse_threads(Some("  16  ")), Ok(16), "whitespace trimmed");
    }

    #[test]
    fn parse_threads_rejects_each_garbage_form() {
        // One assertion per rejected form, each with a message naming
        // the offense.
        let empty = parse_threads(Some("")).unwrap_err();
        assert!(empty.contains("empty"), "{empty}");
        let blank = parse_threads(Some("   ")).unwrap_err();
        assert!(blank.contains("empty"), "{blank}");
        let zero = parse_threads(Some("0")).unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        let negative = parse_threads(Some("-4")).unwrap_err();
        assert!(negative.contains("not a positive integer"), "{negative}");
        let word = parse_threads(Some("many")).unwrap_err();
        assert!(word.contains("\"many\""), "{word}");
        let fractional = parse_threads(Some("1.5")).unwrap_err();
        assert!(
            fractional.contains("not a positive integer"),
            "{fractional}"
        );
        let overflow = parse_threads(Some("99999999999999999999999")).unwrap_err();
        assert!(overflow.contains("not a positive integer"), "{overflow}");
        let typo = parse_threads(Some("O8")).unwrap_err();
        assert!(typo.contains("\"O8\""), "{typo}");
    }

    #[test]
    fn par_ranks_with_is_identical_across_dispatch_shapes() {
        let n = 100usize;
        let run = |threads: usize, pool: Option<&Pool>| -> Vec<u64> {
            let mut out = vec![0u64; n];
            par_ranks_with(threads, pool, &mut out, |r, slot| {
                *slot = (r as u64).wrapping_mul(2654435761) ^ 0xabcd;
            });
            out
        };
        let gold = run(1, None);
        assert_eq!(run(4, None), gold, "scoped threads");
        let pool = Pool::new(4);
        assert_eq!(run(4, Some(&pool)), gold, "pool dispatch");
        assert_eq!(run(1, Some(&pool)), gold, "threads=1 ignores the pool");
    }

    #[test]
    fn split_threads_is_proportional_and_total_preserving() {
        assert_eq!(split_threads(1, 10, 10), (1, 1));
        assert_eq!(split_threads(0, 10, 10), (1, 1));
        let (a, b) = split_threads(8, 1, 1);
        assert_eq!(a + b, 8);
        assert_eq!((a, b), (4, 4));
        let (a, b) = split_threads(8, 999, 1);
        assert_eq!(a + b, 8);
        assert!(a >= b);
        assert!(b >= 1);
        // Degenerate weights never starve a child.
        let (a, b) = split_threads(2, 0, 0);
        assert_eq!((a, b), (1, 1));
    }

    #[test]
    fn split_threads_never_starves_a_side_on_degenerate_ratios() {
        // The satellite regression guard: whenever the budget allows two
        // workers, both sides get at least one thread — for tiny, huge,
        // zero, and overflow-bait work estimates alike.
        for threads in [2usize, 3, 8, 64] {
            for (w0, w1) in [
                (0usize, 0usize),
                (0, 1),
                (1, 0),
                (1, usize::MAX / 2),
                (usize::MAX / 2, 1),
                (usize::MAX, usize::MAX),
                (usize::MAX, 0),
                (1, 1_000_000_000),
                (7, 3),
            ] {
                let (a, b) = split_threads(threads, w0, w1);
                assert!(a >= 1 && b >= 1, "starved: t={threads} w=({w0},{w1})");
                assert_eq!(a + b, threads, "lost budget: t={threads} w=({w0},{w1})");
            }
        }
        // Proportionality still holds away from the degenerate edges.
        assert_eq!(split_threads(8, 3, 1), (6, 2));
    }

    #[test]
    fn chunk_ranges_aligned_cover_and_align() {
        for parts in [1usize, 2, 3, 8, 100] {
            for len in [0usize, 1, 63, 64, 65, 1000, 4096] {
                let ranges = chunk_ranges_aligned(parts, len, CHUNK_ALIGN);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    if r.end != len {
                        assert_eq!(r.end % CHUNK_ALIGN, 0, "unaligned boundary {}", r.end);
                    }
                    next = r.end;
                }
                assert_eq!(next, len, "parts {parts} len {len}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn tree_fold_matches_linear_fold_for_associative_ops() {
        for n in [0usize, 1, 2, 3, 7, 8, 33] {
            let items: Vec<i64> = (0..n as i64).map(|i| i * 17 - 5).collect();
            let linear: i64 = items.iter().sum();
            let tree = tree_fold(items, |a, b| a + b);
            assert_eq!(tree.unwrap_or(0), linear, "n {n}");
        }
        // Shape check: a non-associative op exposes the pairing order.
        let shape = tree_fold(
            vec![
                "0".to_string(),
                "1".into(),
                "2".into(),
                "3".into(),
                "4".into(),
            ],
            |a, b| format!("({a}{b})"),
        );
        assert_eq!(shape.unwrap(), "(((01)(23))4)");
    }

    #[test]
    fn par_handle_gates_and_matches_sequential() {
        let pool = Pool::new(4);
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 7;
        let mut expect = vec![0u64; 777];
        Par::seq().fill(&mut expect, 1, f);
        for (threads, use_pool) in [(2usize, true), (4, true), (4, false), (8, true)] {
            let par = Par::new(threads, use_pool.then_some(&pool));
            // Below the grain: runs inline.
            assert_eq!(par.threads_for(10, 1000), 1);
            let mut out = vec![0u64; 777];
            par.fill(&mut out, 64, f);
            assert_eq!(out, expect, "fill threads {threads} pool {use_pool}");

            let mut a = vec![0u64; 777];
            let mut b = vec![0i64; 777];
            par.fill2(&mut a, &mut b, 64, |i| (f(i), i as i64 - 3));
            assert_eq!(a, expect);
            assert!(b.iter().enumerate().all(|(i, &v)| v == i as i64 - 3));

            let sum = par
                .reduce(
                    777,
                    64,
                    |_, r| r.map(f).fold(0u64, u64::wrapping_add),
                    u64::wrapping_add,
                )
                .unwrap();
            assert_eq!(sum, expect.iter().fold(0u64, |a, &v| a.wrapping_add(v)));

            let merged: Vec<u64> = par
                .map_chunks(777, 64, |_, r| r.map(f).collect::<Vec<u64>>())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(merged, expect);
        }
    }

    #[test]
    fn par_ranks_is_bit_identical_to_sequential() {
        let work = |r: usize, acc: &mut f64| {
            *acc = 0.0;
            for k in 1..200 {
                *acc += ((r * k) as f64).sin() / k as f64;
            }
        };
        let mut seq = vec![0.0f64; 23];
        par_ranks(1, &mut seq, work);
        for threads in [2, 3, 8, 64] {
            let mut par = vec![0.0f64; 23];
            par_ranks(threads, &mut par, work);
            let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads {threads}");
        }
    }

    #[test]
    fn par_ranks_pool_is_bit_identical_to_sequential() {
        let work = |r: usize, acc: &mut f64| {
            *acc = 0.0;
            for k in 1..200 {
                *acc += ((r * k) as f64).sin() / k as f64;
            }
        };
        let mut seq = vec![0.0f64; 23];
        par_ranks(1, &mut seq, work);
        let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut out = vec![0.0f64; 23];
            par_ranks_pool(&pool, &mut out, work);
            let out_bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(out_bits, seq_bits, "threads {threads}");
        }
    }

    #[test]
    fn join_returns_both_results_in_order() {
        for parallel in [false, true] {
            let (a, b) = join(parallel, || 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for threads in [1, 2, 3, 7, 100] {
            for len in [0usize, 1, 2, 16, 17, 101] {
                let ranges = chunk_ranges(threads, len);
                assert!(ranges.len() <= threads.max(1));
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn par_map_chunks_concatenates_in_chunk_order() {
        let data: Vec<u32> = (0..137).map(|i| i * 3 + 1).collect();
        let seq: Vec<u32> = data.iter().map(|v| v * v).collect();
        for threads in [1, 2, 5, 16] {
            let merged: Vec<u32> = par_map_chunks(threads, data.len(), |_, r| {
                data[r].iter().map(|v| v * v).collect::<Vec<u32>>()
            })
            .into_iter()
            .flatten()
            .collect();
            assert_eq!(merged, seq, "threads {threads}");
        }
    }

    #[test]
    fn par_fill_matches_sequential() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut seq = vec![0u64; 41];
        par_fill(1, &mut seq, f);
        for threads in [2, 4, 13] {
            let mut par = vec![0u64; 41];
            par_fill(threads, &mut par, f);
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn par_fill2_matches_sequential() {
        let f = |i: usize| (i as i64 * 7 - 3, (i % 5) as u8);
        let mut sa = vec![0i64; 29];
        let mut sb = vec![0u8; 29];
        par_fill2(1, &mut sa, &mut sb, f);
        for threads in [2, 3, 8] {
            let mut pa = vec![0i64; 29];
            let mut pb = vec![0u8; 29];
            par_fill2(threads, &mut pa, &mut pb, f);
            assert_eq!(pa, sa);
            assert_eq!(pb, sb);
        }
    }

    #[test]
    fn shared_slice_disjoint_writes_land() {
        let mut out = vec![0u32; 64];
        let shared = SharedSlice::new(&mut out);
        // Two tasks writing disjoint halves, odd/even interleaved to make
        // a chunking bug visible.
        join(
            true,
            || {
                for i in (0..64).step_by(2) {
                    unsafe { shared.write(i, i as u32 + 1) };
                }
            },
            || {
                for i in (1..64).step_by(2) {
                    unsafe { shared.write(i, i as u32 + 1) };
                }
            },
        );
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_slice_bounds_checked() {
        let mut out = vec![0u32; 4];
        let shared = SharedSlice::new(&mut out);
        unsafe { shared.write(4, 1) };
    }
}
