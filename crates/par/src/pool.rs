//! A persistent worker pool for the deterministic chunked loops.
//!
//! The scoped-thread helpers in the crate root spawn OS threads on every
//! call, which is fine for a handful of long loops but ruinous for a
//! multilevel partitioner that runs *hundreds* of small chunked loops (one
//! per phase per level per bisection). [`Pool`] spawns its workers once and
//! reuses them for every subsequent batch, turning the per-loop cost from
//! a thread spawn (~tens of microseconds) into a condvar wake.
//!
//! **Determinism is unchanged:** a batch is `njobs` indexed jobs; workers
//! claim indices from a shared counter, but each job writes only state
//! derived from its own index (the same contract as [`crate::par_fill`]),
//! so the claim order cannot affect the result — only the wall clock.
//!
//! Claims are tagged with a per-batch epoch packed into the claim word
//! itself, so a worker that copied a batch's job and then slept through the
//! batch's retirement detects the mismatch on its first claim attempt and
//! backs off — it can never execute, or count completions against, a batch
//! it was not woken for (see [`run_batch`]). The epoch travels in 32 bits;
//! a stale worker would need to sleep across exactly 2^32 batches to alias,
//! which back-to-back batch rates make a multi-year stall.
//!
//! The submitting thread participates in its own batch (a pool built for
//! `threads` has `threads - 1` workers), and [`Pool::run`] blocks until
//! the batch completes, so borrowed closures work like scoped threads: the
//! borrow outlives every job. Concurrent submitters are allowed and simply
//! serialize batch-by-batch — the recursive-bisection fork runs its two
//! subtrees on sibling threads that share one pool.
//!
//! **Observability:** the pool counts what it does. Every slot (slot 0 is
//! the submitting thread, slots 1.. the persistent workers) accumulates
//! busy/park nanoseconds, jobs claimed, batches participated in, and
//! epoch-mismatch backoffs; per-chunk service times feed a lock-free log2
//! histogram. [`Pool::stats`] snapshots all of it as a serializable
//! [`PoolStats`]. When per-worker tracing is enabled
//! ([`Pool::enable_tracing`]), each slot additionally emits one
//! [`sf2d_obs::TraceEvent::WorkerSpan`] per batch it ran jobs in, tagged
//! with the batch's [`BatchTag`] — drained at quiescence with
//! [`Pool::drain_trace_events`]. None of this changes results: metrics
//! are counters on the side, and batches run identically with tracing on
//! or off (property-tested in the identity suites).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sf2d_obs::{Histogram, PhaseKind, SharedTracer, TraceEvent};

/// A label + phase kind naming the chunked loop a batch belongs to, so
/// per-worker trace spans and phase reporters can attribute pool time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTag {
    /// Short loop label, e.g. `match` or `refine`.
    pub label: &'static str,
    /// Phase kind the span is filed under.
    pub kind: PhaseKind,
}

impl Default for BatchTag {
    fn default() -> BatchTag {
        BatchTag {
            label: "batch",
            kind: PhaseKind::Other,
        }
    }
}

/// Type-erased view of a borrowed `Fn(usize) + Sync` batch closure.
///
/// The raw pointer is only dereferenced while [`Pool::run`] is blocked on
/// the batch, so the borrow is live for every call.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    njobs: usize,
    /// Epoch of the batch this job belongs to; claims are tagged with it so
    /// a stale worker can never touch a later batch (see [`run_batch`]).
    epoch: u64,
    /// What loop this batch is: names the per-worker trace spans.
    tag: BatchTag,
}

// SAFETY: the pointer refers to a `Sync` closure that `Pool::run` keeps
// borrowed until the batch is done (it blocks); sending the pointer to
// workers is exactly the scoped-thread pattern, persistent edition.
unsafe impl Send for Job {}

#[derive(Default)]
struct PoolState {
    /// Current batch, if one is in flight.
    job: Option<Job>,
    /// Bumped per batch so workers can tell "new batch" from spurious wakes.
    epoch: u64,
    /// Jobs of the current batch finished so far.
    done: usize,
    /// A job in the current batch panicked (the submitter re-panics).
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new batch (or shutdown).
    work_cv: Condvar,
    /// Submitters wait here for batch completion (or a free slot).
    done_cv: Condvar,
    /// Packed claim counter: high 32 bits are the batch epoch (mod 2^32),
    /// low 32 bits the next job index to claim. Re-tagged per batch while
    /// the state lock is held; claimed by CAS while running. Packing the
    /// epoch into the same word a claim mutates is what lets a worker that
    /// copied an old `Job` detect — atomically with the claim attempt —
    /// that its batch is over, instead of consuming indices (and calling
    /// the dropped closure) of whatever batch replaced it.
    claim: AtomicU64,
    /// Per-slot counters: slot 0 is the submitting thread, slots 1.. the
    /// persistent workers (matching their `sf2d-pool-{i}` names).
    metrics: Vec<SlotMetrics>,
    /// Lock-free log2 histogram of per-chunk service times (nanoseconds).
    service: AtomicHist,
    /// Batches submitted over the pool's lifetime (including inline ones).
    batches: AtomicU64,
    /// Per-worker trace shards; disabled (one relaxed load per batch and
    /// per job-claim loop) unless [`Pool::enable_tracing`] was called.
    tracer: Arc<SharedTracer>,
    /// When the pool was built — the denominator for utilization.
    created: Instant,
}

/// One slot's lifetime counters (all monotonic, relaxed atomics — they
/// are statistics, never synchronization).
#[derive(Default)]
struct SlotMetrics {
    busy_ns: AtomicU64,
    park_ns: AtomicU64,
    jobs: AtomicU64,
    batches: AtomicU64,
    backoffs: AtomicU64,
}

/// A log2 histogram with atomic buckets, so every slot can record service
/// times without locking; snapshots rebuild an [`sf2d_obs::Histogram`]
/// for the quantile accessors.
struct AtomicHist {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> AtomicHist {
        AtomicHist {
            buckets: (0..65).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        Histogram::from_raw(
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// One slot's counters in a [`PoolStats`] snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkerStats {
    /// Nanoseconds spent running jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent parked waiting for a batch (completed parks only;
    /// always 0 for slot 0, which never parks).
    pub park_ns: u64,
    /// Pool lifetime not accounted busy or parked — claim-loop spinning,
    /// an in-progress park, scheduling delay. 0 for slot 0, whose
    /// between-batch time belongs to the caller.
    pub idle_ns: u64,
    /// Jobs (chunks) this slot claimed and ran.
    pub jobs: u64,
    /// Batches this slot ran at least one job of.
    pub batches: u64,
    /// Epoch-mismatch CAS backoffs — how often this slot woke with a
    /// retired batch's job and bailed without touching the live batch
    /// (the PR 6 race-fix path actually firing).
    pub epoch_backoffs: u64,
}

/// A snapshot of everything the pool has counted; see [`Pool::stats`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// Threads a batch can run on (workers + submitter).
    pub threads: usize,
    /// Batches submitted (including inline single-job ones).
    pub batches: u64,
    /// Jobs run across all slots.
    pub total_jobs: u64,
    /// Epoch-mismatch backoffs summed over slots.
    pub epoch_backoffs: u64,
    /// Jobs the submitting thread ran itself.
    pub submitter_jobs: u64,
    /// Fraction of all jobs the submitter ran (0 when no jobs yet).
    pub submitter_share: f64,
    /// Busy time summed over slots, divided by `threads ×` pool lifetime.
    pub utilization: f64,
    /// Chunk service times recorded.
    pub service_ns_count: u64,
    /// Mean chunk service time (ns).
    pub service_ns_mean: f64,
    /// Median chunk service time (ns, log2-bucket interpolated).
    pub service_ns_p50: f64,
    /// p99 chunk service time (ns, log2-bucket interpolated).
    pub service_ns_p99: f64,
    /// Per-slot counters; index 0 is the submitting thread.
    pub workers: Vec<WorkerStats>,
}

/// Bits of [`PoolShared::claim`] holding the batch epoch.
const EPOCH_MASK: u64 = 0xFFFF_FFFF_0000_0000;
/// Bits of [`PoolShared::claim`] holding the next unclaimed job index.
const INDEX_MASK: u64 = 0x0000_0000_FFFF_FFFF;

/// Packs a batch epoch and a starting index into a claim word.
fn pack_claim(epoch: u64, index: usize) -> u64 {
    debug_assert!(index as u64 <= INDEX_MASK);
    ((epoch as u32 as u64) << 32) | index as u64
}

/// A persistent worker pool; see the module docs.
pub struct Pool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool that can run batches on up to `threads` threads: the
    /// submitter plus `threads - 1` persistent workers. `threads <= 1`
    /// spawns no workers (every batch runs inline on the submitter).
    pub fn new(threads: usize) -> Pool {
        let slots = threads.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
            metrics: (0..slots).map(|_| SlotMetrics::default()).collect(),
            service: AtomicHist::new(),
            batches: AtomicU64::new(0),
            tracer: SharedTracer::new(slots),
            created: Instant::now(),
        });
        let workers = (1..slots)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sf2d-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("sf2d-par: spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of threads a batch can run on (workers + submitter).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(0), f(1), …, f(njobs - 1)` across the pool and returns when
    /// every call has finished. The submitter participates. Panics in any
    /// job are caught on the worker and re-raised here after the batch
    /// drains, so no job runs against half-poisoned state unobserved.
    pub fn run<F>(&self, njobs: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_tagged(njobs, BatchTag::default(), f)
    }

    /// [`Pool::run`] with a [`BatchTag`] naming the loop, so the batch's
    /// per-worker trace spans carry the phase that submitted it.
    pub fn run_tagged<F>(&self, njobs: usize, tag: BatchTag, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if njobs == 0 {
            return;
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        if njobs == 1 || self.workers.is_empty() {
            let tracing = self.shared.tracer.is_enabled();
            let span_start = if tracing {
                self.shared.tracer.wall_now()
            } else {
                0.0
            };
            let mut busy = 0u64;
            for i in 0..njobs {
                let t0 = Instant::now();
                f(i);
                let dt = t0.elapsed().as_nanos() as u64;
                busy += dt;
                self.shared.service.observe(dt);
            }
            let m = &self.shared.metrics[0];
            m.busy_ns.fetch_add(busy, Ordering::Relaxed);
            m.jobs.fetch_add(njobs as u64, Ordering::Relaxed);
            m.batches.fetch_add(1, Ordering::Relaxed);
            if tracing {
                let end = self.shared.tracer.wall_now();
                self.shared.tracer.handle(0).record_span(
                    tag.kind,
                    tag.label,
                    span_start,
                    end - span_start,
                    njobs as u64,
                );
            }
            return;
        }
        assert!(
            njobs as u64 <= INDEX_MASK,
            "sf2d-par: pool batch of {njobs} jobs exceeds the claim-counter index width"
        );
        unsafe fn call_erased<F: Fn(usize) + Sync>(data: *const (), i: usize) {
            let f = unsafe { &*(data as *const F) };
            f(i);
        }
        let job;
        {
            let mut st = self.shared.state.lock().expect("sf2d-par: pool poisoned");
            // Concurrent submitters serialize: wait for the slot.
            while st.job.is_some() {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .expect("sf2d-par: pool poisoned");
            }
            st.epoch += 1;
            job = Job {
                data: &f as *const F as *const (),
                call: call_erased::<F>,
                njobs,
                epoch: st.epoch,
                tag,
            };
            // Re-tag the claim counter with the new epoch before the batch
            // is visible; workers copy `job` under this lock, so they can
            // never see a claim word older than their job's epoch.
            self.shared
                .claim
                .store(pack_claim(st.epoch, 0), Ordering::Relaxed);
            st.job = Some(job);
            st.done = 0;
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // Participate, then wait for stragglers.
        let panicked = run_batch(&self.shared, job, 0);
        let mut st = self.shared.state.lock().expect("sf2d-par: pool poisoned");
        while st.done < njobs {
            st = self
                .shared
                .done_cv
                .wait(st)
                .expect("sf2d-par: pool poisoned");
        }
        let batch_panicked = st.panicked || panicked;
        st.job = None;
        // Wake any submitter queued on the slot.
        self.shared.done_cv.notify_all();
        drop(st);
        if batch_panicked {
            panic!("sf2d-par: pool job panicked");
        }
    }

    /// Snapshots the pool's counters. Safe to call at any time; the
    /// numbers are internally consistent per slot but only quiescent-exact
    /// (call between batches for figures that add up).
    pub fn stats(&self) -> PoolStats {
        let elapsed_ns = self.shared.created.elapsed().as_nanos() as u64;
        let workers: Vec<WorkerStats> = self
            .shared
            .metrics
            .iter()
            .enumerate()
            .map(|(slot, m)| {
                let busy_ns = m.busy_ns.load(Ordering::Relaxed);
                let park_ns = m.park_ns.load(Ordering::Relaxed);
                let idle_ns = if slot == 0 {
                    0
                } else {
                    elapsed_ns.saturating_sub(busy_ns + park_ns)
                };
                WorkerStats {
                    busy_ns,
                    park_ns,
                    idle_ns,
                    jobs: m.jobs.load(Ordering::Relaxed),
                    batches: m.batches.load(Ordering::Relaxed),
                    epoch_backoffs: m.backoffs.load(Ordering::Relaxed),
                }
            })
            .collect();
        let total_jobs: u64 = workers.iter().map(|w| w.jobs).sum();
        let submitter_jobs = workers[0].jobs;
        let busy_total: u64 = workers.iter().map(|w| w.busy_ns).sum();
        let service = self.shared.service.snapshot();
        PoolStats {
            threads: self.threads(),
            batches: self.shared.batches.load(Ordering::Relaxed),
            total_jobs,
            epoch_backoffs: workers.iter().map(|w| w.epoch_backoffs).sum(),
            submitter_jobs,
            submitter_share: if total_jobs > 0 {
                submitter_jobs as f64 / total_jobs as f64
            } else {
                0.0
            },
            utilization: busy_total as f64 / (self.threads() as f64 * elapsed_ns.max(1) as f64),
            service_ns_count: service.count,
            service_ns_mean: service.mean(),
            service_ns_p50: service.p50().unwrap_or(0.0),
            service_ns_p99: service.p99().unwrap_or(0.0),
            workers,
        }
    }

    /// Turns on per-worker trace emission. `base_secs` aligns the worker
    /// clock with the caller's (pass `sf2d_obs::wall_now()` so spans land
    /// on the orchestrator's timeline).
    pub fn enable_tracing(&self, base_secs: f64) {
        self.shared.tracer.enable(base_secs);
    }

    /// Turns per-worker trace emission back off.
    pub fn disable_tracing(&self) {
        self.shared.tracer.disable();
    }

    /// Drains the buffered per-worker spans (worker order). Call between
    /// batches — the submit path guarantees quiescence once every
    /// [`Pool::run`] has returned.
    pub fn drain_trace_events(&self) -> Vec<TraceEvent> {
        self.shared.tracer.drain()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("sf2d-par: pool poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and runs jobs of `job` until the index counter is exhausted or
/// the counter's epoch no longer matches the job's (the batch was retired
/// while this worker slept between copying the job and claiming — without
/// the epoch check a stale worker would claim the *next* batch's indices,
/// call the old, now-dangling closure, and inflate the new batch's
/// completion count so some of its jobs never run). Claims use CAS rather
/// than `fetch_add` so a mismatched attempt leaves the counter untouched:
/// a stale `fetch_add` would still burn an index the live batch then never
/// executes. Returns whether any job panicked; completion counts are
/// published under the state lock either way so nobody deadlocks on a lost
/// count.
fn run_batch(shared: &PoolShared, job: Job, slot: usize) -> bool {
    let tag = pack_claim(job.epoch, 0) & EPOCH_MASK;
    let m = &shared.metrics[slot];
    let tracing = shared.tracer.is_enabled();
    let mut span_start = 0.0f64;
    let mut busy = 0u64;
    let mut ran = 0usize;
    let mut panicked = false;
    'batch: loop {
        let mut cur = shared.claim.load(Ordering::Relaxed);
        let i = loop {
            if cur & EPOCH_MASK != tag {
                // The race-fix path firing: this slot woke with a retired
                // batch's job and the claim word already belongs to a
                // newer batch. Count it — PoolStats::epoch_backoffs.
                m.backoffs.fetch_add(1, Ordering::Relaxed);
                break 'batch;
            }
            let idx = (cur & INDEX_MASK) as usize;
            if idx >= job.njobs {
                break 'batch;
            }
            match shared.claim.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break idx,
                Err(now) => cur = now,
            }
        };
        if ran == 0 && tracing {
            span_start = shared.tracer.wall_now();
        }
        let t0 = Instant::now();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, i) }));
        let dt = t0.elapsed().as_nanos() as u64;
        busy += dt;
        shared.service.observe(dt);
        panicked |= r.is_err();
        ran += 1;
    }
    if ran > 0 {
        m.busy_ns.fetch_add(busy, Ordering::Relaxed);
        m.jobs.fetch_add(ran as u64, Ordering::Relaxed);
        m.batches.fetch_add(1, Ordering::Relaxed);
        if tracing {
            let end = shared.tracer.wall_now();
            shared.tracer.handle(slot as u32).record_span(
                job.tag.kind,
                job.tag.label,
                span_start,
                end - span_start,
                ran as u64,
            );
        }
    }
    if ran > 0 {
        let mut st = shared.state.lock().expect("sf2d-par: pool poisoned");
        // A worker with unpublished completions keeps `done < njobs`, so
        // the submitter cannot retire the batch and the epoch cannot move:
        // ran > 0 implies the batch is still ours. Assert it anyway — a
        // mis-credited count would silently release a submitter early.
        debug_assert_eq!(
            st.epoch, job.epoch,
            "sf2d-par: pool worker publishing completions for a retired batch"
        );
        st.done += ran;
        st.panicked |= panicked;
        if st.done >= job.njobs {
            shared.done_cv.notify_all();
        }
    }
    panicked
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let parked = Instant::now();
        let job = {
            let mut st = shared.state.lock().expect("sf2d-par: pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).expect("sf2d-par: pool poisoned");
            }
        };
        shared.metrics[slot]
            .park_ns
            .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        run_batch(shared, job, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = Pool::new(4);
        for njobs in [0usize, 1, 2, 3, 17, 256] {
            let hits: Vec<AtomicU64> = (0..njobs).map(|_| AtomicU64::new(0)).collect();
            pool.run(njobs, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "njobs {njobs}"
            );
        }
    }

    #[test]
    fn reuses_workers_across_many_batches() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(8, |i| {
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * 36);
    }

    #[test]
    fn borrowed_output_written_disjointly() {
        let pool = Pool::new(4);
        let mut out = vec![0u64; 1000];
        let shared = crate::SharedSlice::new(&mut out);
        pool.run(10, |chunk| {
            for i in (chunk * 100)..((chunk + 1) * 100) {
                // SAFETY: chunks are disjoint index ranges.
                unsafe { shared.write(i, (i * i) as u64) };
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0u32; 5];
        let shared = crate::SharedSlice::new(&mut out);
        pool.run(5, |i| unsafe { shared.write(i, i as u32 + 1) });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn concurrent_submitters_serialize() {
        let pool = Pool::new(2);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..100 {
                    pool.run(4, |_| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            for _ in 0..100 {
                pool.run(4, |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 400);
        assert_eq!(b.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn rapid_batch_turnover_never_leaks_jobs_across_batches() {
        // Regression stress for the stale-worker race: hundreds of tiny
        // back-to-back batches with *different* sizes and closures maximize
        // the window where a worker still holds a retired batch's job. Each
        // batch writes batch-unique values into its own buffer; a stale
        // worker running an old closure against a new batch's indices, or
        // a mis-credited completion letting a batch return early, shows up
        // as a wrong or missing value.
        let pool = Pool::new(4);
        let pool = &pool;
        std::thread::scope(|s| {
            for salt in 0..2u64 {
                s.spawn(move || {
                    for round in 0..300u64 {
                        let njobs = 2 + (round % 7) as usize;
                        let out: Vec<AtomicU64> = (0..njobs).map(|_| AtomicU64::new(0)).collect();
                        pool.run(njobs, |i| {
                            out[i].fetch_add(
                                round * 1000 + salt * 100 + i as u64 + 1,
                                Ordering::Relaxed,
                            );
                        });
                        for (i, v) in out.iter().enumerate() {
                            assert_eq!(
                                v.load(Ordering::Relaxed),
                                round * 1000 + salt * 100 + i as u64 + 1,
                                "submitter {salt} round {round} job {i}"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn stale_job_backs_off_without_running_and_is_counted() {
        // Deterministic reconstruction of the PR 6 race: a worker holds a
        // copied Job of epoch 1, but the claim word was already re-tagged
        // for epoch 2. run_batch must bail on the first claim attempt
        // (never calling the closure) and count exactly one backoff.
        let shared = PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(pack_claim(2, 0)),
            metrics: vec![SlotMetrics::default()],
            service: AtomicHist::new(),
            batches: AtomicU64::new(0),
            tracer: SharedTracer::new(1),
            created: Instant::now(),
        };
        let hit = AtomicU64::new(0);
        unsafe fn bump(data: *const (), _i: usize) {
            let hit = unsafe { &*(data as *const AtomicU64) };
            hit.fetch_add(1, Ordering::Relaxed);
        }
        let job = Job {
            data: &hit as *const AtomicU64 as *const (),
            call: bump,
            njobs: 4,
            epoch: 1,
            tag: BatchTag::default(),
        };
        let panicked = run_batch(&shared, job, 0);
        assert!(!panicked);
        assert_eq!(hit.load(Ordering::Relaxed), 0, "stale job must not run");
        assert_eq!(shared.metrics[0].backoffs.load(Ordering::Relaxed), 1);
        assert_eq!(shared.metrics[0].jobs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn single_batch_counts_no_backoffs() {
        let pool = Pool::new(4);
        let n = AtomicU64::new(0);
        pool.run(8, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        let stats = pool.stats();
        assert_eq!(stats.epoch_backoffs, 0, "one epoch, nothing to mismatch");
        assert_eq!(stats.total_jobs, 8);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn rapid_turnover_stress_stays_correct_and_counts_backoffs() {
        // Tiny back-to-back batches from two submitters give sleeping
        // workers every chance to wake holding a retired batch's job. The
        // hard assertion is correctness under that churn: every batch
        // completes exactly its own jobs. Whether the epoch-mismatch
        // backoff actually *fires* is up to the scheduler — on a loaded
        // single-core host a worker may never wake mid-retirement — so
        // that observation is reported, not required; the counter's
        // plumbing itself is pinned deterministically by
        // `stale_job_backs_off_without_running_and_is_counted` above.
        for attempt in 0..10 {
            let pool = Pool::new(4);
            let pool_ref = &pool;
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        for _ in 0..200u64 {
                            let n = AtomicU64::new(0);
                            pool_ref.run(2, |_| {
                                n.fetch_add(1, Ordering::Relaxed);
                            });
                            assert_eq!(n.load(Ordering::Relaxed), 2);
                        }
                    });
                }
            });
            if pool.stats().epoch_backoffs > 0 {
                eprintln!("attempt {attempt}: backoff path exercised");
                return;
            }
        }
        eprintln!(
            "backoff never fired in 10 stress attempts (scheduler-dependent; \
             correctness assertions all held)"
        );
    }

    #[test]
    fn stats_account_jobs_and_service_times() {
        let pool = Pool::new(3);
        for _ in 0..10 {
            pool.run(6, |_| {
                std::hint::black_box(0u64);
            });
        }
        let stats = pool.stats();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.batches, 10);
        assert_eq!(stats.total_jobs, 60);
        assert_eq!(stats.service_ns_count, 60);
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(
            stats.workers.iter().map(|w| w.jobs).sum::<u64>(),
            stats.total_jobs
        );
        assert_eq!(stats.submitter_jobs, stats.workers[0].jobs);
        assert!(stats.submitter_share >= 0.0 && stats.submitter_share <= 1.0);
        assert!(stats.utilization > 0.0 && stats.utilization <= 1.0);
        assert!(stats.service_ns_p50 <= stats.service_ns_p99);
        assert_eq!(
            stats.workers[0].idle_ns, 0,
            "submitter idle is the caller's"
        );
        // Snapshots serialize (the bench reports embed them).
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"epoch_backoffs\""));
    }

    #[test]
    fn tracing_emits_tagged_worker_spans() {
        let pool = Pool::new(4);
        // Untraced batch first: nothing buffered.
        pool.run(8, |_| {});
        assert!(pool.drain_trace_events().is_empty());
        pool.enable_tracing(0.0);
        let tag = BatchTag {
            label: "match",
            kind: PhaseKind::Partition,
        };
        pool.run_tagged(64, tag, |_| {
            std::hint::black_box(0u64);
        });
        pool.disable_tracing();
        let events = pool.drain_trace_events();
        assert!(!events.is_empty());
        let mut jobs_seen = 0u64;
        for e in &events {
            match e {
                TraceEvent::WorkerSpan {
                    worker,
                    kind,
                    label,
                    t_start,
                    dur,
                    jobs,
                } => {
                    assert!((*worker as usize) < pool.threads());
                    assert_eq!(*kind, PhaseKind::Partition);
                    assert_eq!(label, "match");
                    assert!(*t_start >= 0.0 && *dur >= 0.0);
                    jobs_seen += jobs;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(jobs_seen, 64, "every job attributed to exactly one span");
    }

    #[test]
    fn inline_pool_traces_through_slot_zero() {
        let pool = Pool::new(1);
        pool.enable_tracing(0.0);
        pool.run_tagged(
            3,
            BatchTag {
                label: "project",
                kind: PhaseKind::Partition,
            },
            |_| {},
        );
        let events = pool.drain_trace_events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            TraceEvent::WorkerSpan { worker, jobs, .. } => {
                assert_eq!(*worker, 0);
                assert_eq!(*jobs, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = pool.stats();
        assert_eq!(stats.submitter_jobs, 3);
        assert_eq!(stats.submitter_share, 1.0);
    }

    #[test]
    fn job_panic_propagates_to_submitter() {
        let pool = Pool::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool survives and keeps working after a panicked batch.
        let n = AtomicU64::new(0);
        pool.run(4, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }
}
