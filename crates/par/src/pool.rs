//! A persistent worker pool for the deterministic chunked loops.
//!
//! The scoped-thread helpers in the crate root spawn OS threads on every
//! call, which is fine for a handful of long loops but ruinous for a
//! multilevel partitioner that runs *hundreds* of small chunked loops (one
//! per phase per level per bisection). [`Pool`] spawns its workers once and
//! reuses them for every subsequent batch, turning the per-loop cost from
//! a thread spawn (~tens of microseconds) into a condvar wake.
//!
//! **Determinism is unchanged:** a batch is `njobs` indexed jobs; workers
//! claim indices from a shared counter, but each job writes only state
//! derived from its own index (the same contract as [`crate::par_fill`]),
//! so the claim order cannot affect the result — only the wall clock.
//!
//! Claims are tagged with a per-batch epoch packed into the claim word
//! itself, so a worker that copied a batch's job and then slept through the
//! batch's retirement detects the mismatch on its first claim attempt and
//! backs off — it can never execute, or count completions against, a batch
//! it was not woken for (see [`run_batch`]). The epoch travels in 32 bits;
//! a stale worker would need to sleep across exactly 2^32 batches to alias,
//! which back-to-back batch rates make a multi-year stall.
//!
//! The submitting thread participates in its own batch (a pool built for
//! `threads` has `threads - 1` workers), and [`Pool::run`] blocks until
//! the batch completes, so borrowed closures work like scoped threads: the
//! borrow outlives every job. Concurrent submitters are allowed and simply
//! serialize batch-by-batch — the recursive-bisection fork runs its two
//! subtrees on sibling threads that share one pool.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Type-erased view of a borrowed `Fn(usize) + Sync` batch closure.
///
/// The raw pointer is only dereferenced while [`Pool::run`] is blocked on
/// the batch, so the borrow is live for every call.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    njobs: usize,
    /// Epoch of the batch this job belongs to; claims are tagged with it so
    /// a stale worker can never touch a later batch (see [`run_batch`]).
    epoch: u64,
}

// SAFETY: the pointer refers to a `Sync` closure that `Pool::run` keeps
// borrowed until the batch is done (it blocks); sending the pointer to
// workers is exactly the scoped-thread pattern, persistent edition.
unsafe impl Send for Job {}

#[derive(Default)]
struct PoolState {
    /// Current batch, if one is in flight.
    job: Option<Job>,
    /// Bumped per batch so workers can tell "new batch" from spurious wakes.
    epoch: u64,
    /// Jobs of the current batch finished so far.
    done: usize,
    /// A job in the current batch panicked (the submitter re-panics).
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new batch (or shutdown).
    work_cv: Condvar,
    /// Submitters wait here for batch completion (or a free slot).
    done_cv: Condvar,
    /// Packed claim counter: high 32 bits are the batch epoch (mod 2^32),
    /// low 32 bits the next job index to claim. Re-tagged per batch while
    /// the state lock is held; claimed by CAS while running. Packing the
    /// epoch into the same word a claim mutates is what lets a worker that
    /// copied an old `Job` detect — atomically with the claim attempt —
    /// that its batch is over, instead of consuming indices (and calling
    /// the dropped closure) of whatever batch replaced it.
    claim: AtomicU64,
}

/// Bits of [`PoolShared::claim`] holding the batch epoch.
const EPOCH_MASK: u64 = 0xFFFF_FFFF_0000_0000;
/// Bits of [`PoolShared::claim`] holding the next unclaimed job index.
const INDEX_MASK: u64 = 0x0000_0000_FFFF_FFFF;

/// Packs a batch epoch and a starting index into a claim word.
fn pack_claim(epoch: u64, index: usize) -> u64 {
    debug_assert!(index as u64 <= INDEX_MASK);
    ((epoch as u32 as u64) << 32) | index as u64
}

/// A persistent worker pool; see the module docs.
pub struct Pool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool that can run batches on up to `threads` threads: the
    /// submitter plus `threads - 1` persistent workers. `threads <= 1`
    /// spawns no workers (every batch runs inline on the submitter).
    pub fn new(threads: usize) -> Pool {
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
        });
        let workers = (1..threads.max(1))
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sf2d-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("sf2d-par: spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of threads a batch can run on (workers + submitter).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(0), f(1), …, f(njobs - 1)` across the pool and returns when
    /// every call has finished. The submitter participates. Panics in any
    /// job are caught on the worker and re-raised here after the batch
    /// drains, so no job runs against half-poisoned state unobserved.
    pub fn run<F>(&self, njobs: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if njobs == 0 {
            return;
        }
        if njobs == 1 || self.workers.is_empty() {
            for i in 0..njobs {
                f(i);
            }
            return;
        }
        assert!(
            njobs as u64 <= INDEX_MASK,
            "sf2d-par: pool batch of {njobs} jobs exceeds the claim-counter index width"
        );
        unsafe fn call_erased<F: Fn(usize) + Sync>(data: *const (), i: usize) {
            let f = unsafe { &*(data as *const F) };
            f(i);
        }
        let job;
        {
            let mut st = self.shared.state.lock().expect("sf2d-par: pool poisoned");
            // Concurrent submitters serialize: wait for the slot.
            while st.job.is_some() {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .expect("sf2d-par: pool poisoned");
            }
            st.epoch += 1;
            job = Job {
                data: &f as *const F as *const (),
                call: call_erased::<F>,
                njobs,
                epoch: st.epoch,
            };
            // Re-tag the claim counter with the new epoch before the batch
            // is visible; workers copy `job` under this lock, so they can
            // never see a claim word older than their job's epoch.
            self.shared
                .claim
                .store(pack_claim(st.epoch, 0), Ordering::Relaxed);
            st.job = Some(job);
            st.done = 0;
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // Participate, then wait for stragglers.
        let panicked = run_batch(&self.shared, job);
        let mut st = self.shared.state.lock().expect("sf2d-par: pool poisoned");
        while st.done < njobs {
            st = self
                .shared
                .done_cv
                .wait(st)
                .expect("sf2d-par: pool poisoned");
        }
        let batch_panicked = st.panicked || panicked;
        st.job = None;
        // Wake any submitter queued on the slot.
        self.shared.done_cv.notify_all();
        drop(st);
        if batch_panicked {
            panic!("sf2d-par: pool job panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("sf2d-par: pool poisoned");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and runs jobs of `job` until the index counter is exhausted or
/// the counter's epoch no longer matches the job's (the batch was retired
/// while this worker slept between copying the job and claiming — without
/// the epoch check a stale worker would claim the *next* batch's indices,
/// call the old, now-dangling closure, and inflate the new batch's
/// completion count so some of its jobs never run). Claims use CAS rather
/// than `fetch_add` so a mismatched attempt leaves the counter untouched:
/// a stale `fetch_add` would still burn an index the live batch then never
/// executes. Returns whether any job panicked; completion counts are
/// published under the state lock either way so nobody deadlocks on a lost
/// count.
fn run_batch(shared: &PoolShared, job: Job) -> bool {
    let tag = pack_claim(job.epoch, 0) & EPOCH_MASK;
    let mut ran = 0usize;
    let mut panicked = false;
    'batch: loop {
        let mut cur = shared.claim.load(Ordering::Relaxed);
        let i = loop {
            if cur & EPOCH_MASK != tag {
                break 'batch;
            }
            let idx = (cur & INDEX_MASK) as usize;
            if idx >= job.njobs {
                break 'batch;
            }
            match shared.claim.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break idx,
                Err(now) => cur = now,
            }
        };
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, i) }));
        panicked |= r.is_err();
        ran += 1;
    }
    if ran > 0 {
        let mut st = shared.state.lock().expect("sf2d-par: pool poisoned");
        // A worker with unpublished completions keeps `done < njobs`, so
        // the submitter cannot retire the batch and the epoch cannot move:
        // ran > 0 implies the batch is still ours. Assert it anyway — a
        // mis-credited count would silently release a submitter early.
        debug_assert_eq!(
            st.epoch, job.epoch,
            "sf2d-par: pool worker publishing completions for a retired batch"
        );
        st.done += ran;
        st.panicked |= panicked;
        if st.done >= job.njobs {
            shared.done_cv.notify_all();
        }
    }
    panicked
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("sf2d-par: pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = st.job {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).expect("sf2d-par: pool poisoned");
            }
        };
        run_batch(shared, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = Pool::new(4);
        for njobs in [0usize, 1, 2, 3, 17, 256] {
            let hits: Vec<AtomicU64> = (0..njobs).map(|_| AtomicU64::new(0)).collect();
            pool.run(njobs, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "njobs {njobs}"
            );
        }
    }

    #[test]
    fn reuses_workers_across_many_batches() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(8, |i| {
                total.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * 36);
    }

    #[test]
    fn borrowed_output_written_disjointly() {
        let pool = Pool::new(4);
        let mut out = vec![0u64; 1000];
        let shared = crate::SharedSlice::new(&mut out);
        pool.run(10, |chunk| {
            for i in (chunk * 100)..((chunk + 1) * 100) {
                // SAFETY: chunks are disjoint index ranges.
                unsafe { shared.write(i, (i * i) as u64) };
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0u32; 5];
        let shared = crate::SharedSlice::new(&mut out);
        pool.run(5, |i| unsafe { shared.write(i, i as u32 + 1) });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn concurrent_submitters_serialize() {
        let pool = Pool::new(2);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..100 {
                    pool.run(4, |_| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            for _ in 0..100 {
                pool.run(4, |_| {
                    b.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 400);
        assert_eq!(b.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn rapid_batch_turnover_never_leaks_jobs_across_batches() {
        // Regression stress for the stale-worker race: hundreds of tiny
        // back-to-back batches with *different* sizes and closures maximize
        // the window where a worker still holds a retired batch's job. Each
        // batch writes batch-unique values into its own buffer; a stale
        // worker running an old closure against a new batch's indices, or
        // a mis-credited completion letting a batch return early, shows up
        // as a wrong or missing value.
        let pool = Pool::new(4);
        let pool = &pool;
        std::thread::scope(|s| {
            for salt in 0..2u64 {
                s.spawn(move || {
                    for round in 0..300u64 {
                        let njobs = 2 + (round % 7) as usize;
                        let out: Vec<AtomicU64> =
                            (0..njobs).map(|_| AtomicU64::new(0)).collect();
                        pool.run(njobs, |i| {
                            out[i].fetch_add(round * 1000 + salt * 100 + i as u64 + 1, Ordering::Relaxed);
                        });
                        for (i, v) in out.iter().enumerate() {
                            assert_eq!(
                                v.load(Ordering::Relaxed),
                                round * 1000 + salt * 100 + i as u64 + 1,
                                "submitter {salt} round {round} job {i}"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn job_panic_propagates_to_submitter() {
        let pool = Pool::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool survives and keeps working after a panicked batch.
        let n = AtomicU64::new(0);
        pool.run(4, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }
}
