//! Chaos-aware message routing: the **verify-retry-timeout** path.
//!
//! [`route_chaos`] has the same delivery contract as
//! [`route_sequential`](crate::route_sequential) — `recvs[rank]` sorted
//! by source, per-source enqueue order preserved — but runs every
//! message through the fault plan of a [`ChaosRuntime`]:
//!
//! 1. the sender seals each payload in a checksum envelope and
//!    transmits; the plan may drop it, duplicate it, flip a payload bit,
//!    or delay it (see `sf2d_chaos::FaultKind`);
//! 2. the receiver discards copies whose checksum fails, dedups by
//!    `(src, seq)`, and at the superstep barrier NACKs anything missing;
//! 3. the sender retransmits with a fresh `attempt` coordinate, up to
//!    [`sf2d_chaos::MAX_ATTEMPTS`] — after that the superstep panics
//!    (timeout), which at the capped fault rate never happens in
//!    practice.
//!
//! Every failed attempt is billed: the function returns a per-rank
//! [`PhaseCost`] of the **extra** traffic (wasted sends, NACKs,
//! duplicate copies, latency spikes, stall quanta), which callers charge
//! to the ledger under [`Phase::Retransmit`](crate::Phase) via
//! [`bill_retransmit`]. At rate 0 the extra costs are identically zero
//! and the delivered inboxes are byte-identical to the plain routers —
//! property-tested in the workspace suite.
//!
//! Fault *decisions* are pure functions of message coordinates (no RNG
//! state), so [`route_chaos`] and [`route_chaos_threaded`] — which
//! delivers the faulted wire traffic through crossbeam channels in
//! arbitrary arrival order — produce identical inboxes, identical extra
//! costs, and identical fault statistics.

use std::collections::BTreeSet;

use crossbeam::channel;
use sf2d_chaos::{
    self as chaos, ChaosConfig, FaultKind, FaultPlan, FaultScript, FaultStats, MsgCoord,
    MAX_ATTEMPTS,
};

use crate::cost::{CostLedger, Phase, PhaseCost};
use crate::runtime::RankMessage;

/// Extra α terms billed to the receiver for one latency spike — the
/// spike holds the rank for the equivalent of four message latencies.
pub const DELAY_PENALTY_MSGS: u64 = 4;

/// Flops a stalled rank burns at the superstep boundary (an OS jitter /
/// straggler quantum, following the paper's Hopper-noise footnotes).
pub const STALL_PENALTY_FLOPS: u64 = 100_000;

/// Mutable chaos state threaded through a run: the immutable fault
/// plan, the superstep counter that gives every routing round distinct
/// fault coordinates, consumed crash epochs, and fault statistics.
#[derive(Debug, Clone)]
pub struct ChaosRuntime {
    /// The fault plan (pure decisions).
    pub plan: FaultPlan,
    /// Transport used by [`ChaosRuntime::route`]: `<= 1` routes
    /// sequentially, `> 1` through the threaded transport. Results are
    /// bit-identical either way; this only exercises different code.
    pub threads: usize,
    /// Injected-fault counters, updated by every routing call.
    pub stats: FaultStats,
    step: u64,
    consumed_crashes: BTreeSet<u64>,
}

impl ChaosRuntime {
    /// Wraps a fault plan with fresh counters.
    pub fn new(plan: FaultPlan) -> ChaosRuntime {
        ChaosRuntime {
            plan,
            threads: 1,
            stats: FaultStats::default(),
            step: 0,
            consumed_crashes: BTreeSet::new(),
        }
    }

    /// Seeded plan at `rate`.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, MAX_RATE]` — see
    /// [`sf2d_chaos::ChaosConfig::new`].
    pub fn seeded(seed: u64, rate: f64) -> ChaosRuntime {
        let cfg = ChaosConfig::new(seed, rate).expect("valid chaos rate");
        ChaosRuntime::new(FaultPlan::seeded(cfg))
    }

    /// Explicitly scripted plan.
    pub fn scripted(script: FaultScript) -> ChaosRuntime {
        ChaosRuntime::new(FaultPlan::scripted(script))
    }

    /// Builds a runtime from `SF2D_CHAOS_SEED` / `SF2D_CHAOS_RATE`
    /// (`None` = chaos off).
    ///
    /// # Panics
    /// Panics with a clear message if either variable is set to garbage
    /// — a typo silently disabling fault injection would invalidate the
    /// run.
    pub fn from_env() -> Option<ChaosRuntime> {
        match ChaosConfig::from_env() {
            Ok(cfg) => cfg.map(|c| ChaosRuntime::new(FaultPlan::seeded(c))),
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the transport knob (builder-style). See the `threads` field.
    pub fn with_threads(mut self, threads: usize) -> ChaosRuntime {
        self.threads = threads;
        self
    }

    /// The next routing round's superstep number (peek, no advance).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Consumes the crash decision for `epoch`: true at most **once**
    /// per epoch, so deterministic re-execution after a checkpoint
    /// restore cannot re-trip the crash that triggered it.
    pub fn take_crash(&mut self, epoch: u64) -> bool {
        if self.consumed_crashes.contains(&epoch) {
            return false;
        }
        if self.plan.crash(epoch) {
            self.consumed_crashes.insert(epoch);
            self.stats.crashes += 1;
            return true;
        }
        false
    }

    /// Routes one superstep through the configured transport (see the
    /// `threads` field), advancing the superstep counter.
    pub fn route(
        &mut self,
        p: usize,
        sends: Vec<Vec<(u32, Vec<f64>)>>,
    ) -> (Vec<Vec<RankMessage>>, Vec<PhaseCost>) {
        if self.threads > 1 {
            route_chaos_threaded(p, sends, self)
        } else {
            route_chaos(p, sends, self)
        }
    }
}

/// One sealed message copy on the (misbehaving) wire.
#[derive(Debug, Clone)]
struct Wire {
    src: u32,
    seq: u32,
    data: Vec<f64>,
    checksum: u64,
}

/// Simulates the sender-side retry loop for one logical message and
/// returns the wire copies that reach the receiver, plus the *extra*
/// cost billed to the sender and receiver for every fault along the way.
///
/// This is a pure function of `(plan, coordinates, payload)` — the
/// fault schedule cannot depend on which thread runs it or when.
///
/// Billing per failed attempt (payload of `b` bytes; `E` = envelope
/// overhead, 8 bytes for the NACK/checksum word):
///
/// * **drop** — sender: wasted send + NACK receive = 2 msgs, `b + 8`
///   bytes; receiver: NACK send = 1 msg, 8 bytes;
/// * **bit-flip** — like a drop, but the receiver also paid to receive
///   the corrupt copy: 2 msgs, `b + 8` bytes on each side;
/// * **duplicate** — one extra copy each way: 1 msg, `b` bytes on each
///   side (delivered, then deduped);
/// * **delay** — receiver stalls [`DELAY_PENALTY_MSGS`] α terms.
fn transmit(
    plan: &FaultPlan,
    step: u64,
    src: u32,
    dst: u32,
    seq: u32,
    data: Vec<f64>,
) -> (Vec<Wire>, PhaseCost, PhaseCost, FaultStats) {
    let payload = 8 * data.len() as u64;
    let seal = chaos::checksum(src, seq, &data);
    let mut delivered: Vec<Wire> = Vec::with_capacity(1);
    let mut src_extra = PhaseCost::default();
    let mut dst_extra = PhaseCost::default();
    let mut stats = FaultStats::default();
    let seed = match plan {
        FaultPlan::Seeded { cfg } => cfg.seed,
        FaultPlan::Scripted { .. } => 0,
    };
    for attempt in 0..MAX_ATTEMPTS {
        let coord = MsgCoord {
            step,
            src,
            dst,
            seq,
            attempt,
        };
        match plan.message_fault(&coord) {
            None => {
                delivered.push(Wire {
                    src,
                    seq,
                    data,
                    checksum: seal,
                });
                return (delivered, src_extra, dst_extra, stats);
            }
            Some(FaultKind::Drop) => {
                // Lost on the wire; the receiver NACKs at the barrier.
                src_extra = src_extra.add(&PhaseCost::comm(2, payload + 8));
                dst_extra = dst_extra.add(&PhaseCost::comm(1, 8));
                stats.drops += 1;
                stats.retransmit_msgs += 2;
                stats.retransmit_bytes += payload + 8;
            }
            Some(FaultKind::BitFlip) => {
                // The corrupt copy arrives, fails checksum verification,
                // and is discarded + NACKed.
                let mut corrupted = data.clone();
                chaos::corrupt(&mut corrupted, seed, &coord);
                delivered.push(Wire {
                    src,
                    seq,
                    data: corrupted,
                    checksum: seal,
                });
                src_extra = src_extra.add(&PhaseCost::comm(2, payload + 8));
                dst_extra = dst_extra.add(&PhaseCost::comm(2, payload + 8));
                stats.bit_flips += 1;
                stats.retransmit_msgs += 2;
                stats.retransmit_bytes += payload + 8;
            }
            Some(FaultKind::Duplicate) => {
                // Both copies arrive valid; the receiver dedups.
                delivered.push(Wire {
                    src,
                    seq,
                    data: data.clone(),
                    checksum: seal,
                });
                delivered.push(Wire {
                    src,
                    seq,
                    data,
                    checksum: seal,
                });
                src_extra = src_extra.add(&PhaseCost::comm(1, payload));
                dst_extra = dst_extra.add(&PhaseCost::comm(1, payload));
                stats.duplicates += 1;
                stats.retransmit_msgs += 1;
                stats.retransmit_bytes += payload;
                return (delivered, src_extra, dst_extra, stats);
            }
            Some(FaultKind::Delay) => {
                // Arrives intact, late: the receiver eats a latency spike.
                delivered.push(Wire {
                    src,
                    seq,
                    data,
                    checksum: seal,
                });
                dst_extra = dst_extra.add(&PhaseCost::comm(DELAY_PENALTY_MSGS, 0));
                stats.delays += 1;
                return (delivered, src_extra, dst_extra, stats);
            }
        }
    }
    panic!(
        "chaos timeout: message (step {step}, {src} -> {dst}, seq {seq}) \
         faulted on all {MAX_ATTEMPTS} attempts — the fault plan exceeds \
         the retry budget"
    );
}

/// Receiver-side verification: discard corrupt copies, dedup by
/// `(src, seq)`, sort into the deterministic delivery order, and check
/// completeness against the expected `(src, seq)` set.
fn collect_inbox(
    rank: usize,
    mut wires: Vec<Wire>,
    expected: &BTreeSet<(u32, u32)>,
) -> Vec<RankMessage> {
    // Checksum verification drops in-flight corruption.
    wires.retain(|w| chaos::checksum(w.src, w.seq, &w.data) == w.checksum);
    // Deterministic delivery order + dedup of duplicate copies.
    wires.sort_by_key(|w| (w.src, w.seq));
    wires.dedup_by_key(|w| (w.src, w.seq));
    let got: BTreeSet<(u32, u32)> = wires.iter().map(|w| (w.src, w.seq)).collect();
    assert!(
        got == *expected,
        "chaos: rank {rank} inbox incomplete after retries: expected {} messages, \
         verified {} — protocol bug or timeout",
        expected.len(),
        got.len()
    );
    wires
        .into_iter()
        .map(|w| RankMessage::new(w.src, w.data))
        .collect()
}

/// The shared sender-side pass: runs every message through [`transmit`],
/// gathers wire copies per destination, bills stalls, and returns
/// `(wires_by_dst, expected_by_dst, extra_costs)`.
#[allow(clippy::type_complexity)]
fn transmit_all(
    p: usize,
    sends: Vec<Vec<(u32, Vec<f64>)>>,
    rt: &mut ChaosRuntime,
) -> (Vec<Vec<Wire>>, Vec<BTreeSet<(u32, u32)>>, Vec<PhaseCost>) {
    assert_eq!(sends.len(), p, "one send list per rank required");
    let step = rt.step;
    rt.step += 1;
    let mut wires_by_dst: Vec<Vec<Wire>> = (0..p).map(|_| Vec::new()).collect();
    let mut expected: Vec<BTreeSet<(u32, u32)>> = (0..p).map(|_| BTreeSet::new()).collect();
    let mut extra = vec![PhaseCost::default(); p];
    for (src, out) in sends.into_iter().enumerate() {
        for (seq, (dst, data)) in out.into_iter().enumerate() {
            assert!((dst as usize) < p, "rank {src} sent to invalid rank {dst}");
            let (wires, src_extra, dst_extra, stats) =
                transmit(&rt.plan, step, src as u32, dst, seq as u32, data);
            expected[dst as usize].insert((src as u32, seq as u32));
            wires_by_dst[dst as usize].extend(wires);
            extra[src] = extra[src].add(&src_extra);
            extra[dst as usize] = extra[dst as usize].add(&dst_extra);
            rt.stats.merge(&stats);
        }
    }
    // Stalls: straggler quanta at the superstep boundary.
    for (r, cost) in extra.iter_mut().enumerate() {
        if rt.plan.stall(step, r as u32) {
            *cost = cost.add(&PhaseCost::compute(STALL_PENALTY_FLOPS));
            rt.stats.stalls += 1;
        }
    }
    (wires_by_dst, expected, extra)
}

/// Chaos-aware counterpart of
/// [`route_sequential`](crate::route_sequential). Returns the delivered
/// inboxes (identical to the plain router's, faults notwithstanding)
/// plus the per-rank **extra** cost of the faults — zero everywhere at
/// rate 0. Bill the extra via [`bill_retransmit`].
pub fn route_chaos(
    p: usize,
    sends: Vec<Vec<(u32, Vec<f64>)>>,
    rt: &mut ChaosRuntime,
) -> (Vec<Vec<RankMessage>>, Vec<PhaseCost>) {
    let (wires_by_dst, expected, extra) = transmit_all(p, sends, rt);
    let recvs = wires_by_dst
        .into_iter()
        .enumerate()
        .map(|(r, wires)| collect_inbox(r, wires, &expected[r]))
        .collect();
    (recvs, extra)
}

/// Same contract as [`route_chaos`], but the faulted wire traffic —
/// including corrupt and duplicate copies — is delivered through
/// crossbeam channels and verified by per-rank receiver threads, in
/// whatever arrival order the scheduler produces. Because fault
/// decisions are pure and the receiver protocol sorts + dedups, the
/// result is bit-identical to [`route_chaos`] for any interleaving.
pub fn route_chaos_threaded(
    p: usize,
    sends: Vec<Vec<(u32, Vec<f64>)>>,
    rt: &mut ChaosRuntime,
) -> (Vec<Vec<RankMessage>>, Vec<PhaseCost>) {
    let (wires_by_dst, expected, extra) = transmit_all(p, sends, rt);
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..p).map(|_| channel::unbounded::<Wire>()).unzip();
    let recvs = crossbeam::scope(|scope| {
        for (dst, wires) in wires_by_dst.into_iter().enumerate() {
            let tx = txs[dst].clone();
            scope.spawn(move |_| {
                for w in wires {
                    tx.send(w).expect("receiver alive");
                }
            });
        }
        drop(txs);
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(r, rx)| {
                let expected = &expected;
                scope.spawn(move |_| {
                    let wires: Vec<Wire> = rx.into_iter().collect();
                    collect_inbox(r, wires, &expected[r])
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("receiver thread"))
            .collect::<Vec<_>>()
    })
    .expect("no chaos thread panicked");
    (recvs, extra)
}

/// Charges one [`Phase::Retransmit`] superstep for the extra cost a
/// chaos routing round reported — but only when some rank actually paid
/// something, so fault-free rounds leave the ledger history untouched
/// and rate-0 chaos runs stay byte-identical to plain runs.
pub fn bill_retransmit(ledger: &mut CostLedger, extra: &[PhaseCost]) -> f64 {
    if extra.iter().any(|c| *c != PhaseCost::default()) {
        ledger.superstep(Phase::Retransmit, extra)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::{route_sequential, route_threaded};

    fn mesh_sends(p: usize, fan: usize) -> Vec<Vec<(u32, Vec<f64>)>> {
        (0..p)
            .map(|src| {
                (1..=fan)
                    .map(|k| {
                        let dst = ((src + k * 3) % p) as u32;
                        let data: Vec<f64> = (0..(1 + (src + k) % 5))
                            .map(|i| (src * 31 + i) as f64)
                            .collect();
                        (dst, data)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rate_zero_is_byte_identical_to_plain_routers_and_free() {
        for p in [1, 2, 4, 16, 64] {
            let sends = mesh_sends(p, 3.min(p));
            let plain = route_sequential(p, sends.clone());
            let threaded_plain = route_threaded(p, sends.clone());

            let mut rt = ChaosRuntime::seeded(0xABCD, 0.0);
            let (chaos_seq, extra) = route_chaos(p, sends.clone(), &mut rt);
            assert_eq!(chaos_seq, plain, "p={p}");
            assert_eq!(chaos_seq, threaded_plain, "p={p}");
            assert!(extra.iter().all(|c| *c == PhaseCost::default()));
            assert!(!rt.stats.any());

            let mut rt = ChaosRuntime::seeded(0xABCD, 0.0);
            let (chaos_thr, extra) = route_chaos_threaded(p, sends, &mut rt);
            assert_eq!(chaos_thr, plain, "p={p} threaded transport");
            assert!(extra.iter().all(|c| *c == PhaseCost::default()));
        }
    }

    #[test]
    fn faulty_routing_still_delivers_plain_results() {
        // Whatever the faults, the *delivered values* must equal the
        // fault-free run — only the cost differs.
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            for p in [4usize, 16] {
                let sends = mesh_sends(p, 3);
                let plain = route_sequential(p, sends.clone());
                let mut rt = ChaosRuntime::seeded(seed, 0.3);
                let (recvs, _) = route_chaos(p, sends, &mut rt);
                assert_eq!(recvs, plain, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn threaded_transport_is_bit_identical_to_sequential_transport() {
        for seed in [7u64, 1234] {
            for p in [4usize, 16, 64] {
                let sends = mesh_sends(p, 4.min(p));
                let mut rt_a = ChaosRuntime::seeded(seed, 0.35);
                let mut rt_b = ChaosRuntime::seeded(seed, 0.35);
                let (ra, ea) = route_chaos(p, sends.clone(), &mut rt_a);
                let (rb, eb) = route_chaos_threaded(p, sends, &mut rt_b);
                assert_eq!(ra, rb, "recvs seed {seed} p {p}");
                assert_eq!(ea, eb, "extra seed {seed} p {p}");
                assert_eq!(rt_a.stats, rt_b.stats, "stats seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn nonzero_rate_actually_bills_retransmissions() {
        let p = 16;
        let mut rt = ChaosRuntime::seeded(3, 0.4);
        let mut total_extra = PhaseCost::default();
        for _ in 0..10 {
            let (_, extra) = route_chaos(p, mesh_sends(p, 4), &mut rt);
            for c in extra {
                total_extra = total_extra.add(&c);
            }
        }
        assert!(rt.stats.message_faults() > 0, "{:?}", rt.stats);
        assert!(total_extra.msgs > 0 && total_extra.bytes > 0);
        assert!(
            rt.stats.drops + rt.stats.bit_flips > 0,
            "retry-path faults expected at rate 0.4: {:?}",
            rt.stats
        );
    }

    #[test]
    fn scripted_drop_is_retried_and_billed_exactly() {
        // Rank 0 -> rank 1, one message, scripted drop on attempt 0.
        let script = FaultScript::default().fault(0, 0, 1, 0, FaultKind::Drop);
        let mut rt = ChaosRuntime::scripted(script);
        let sends = vec![vec![(1u32, vec![5.0, 6.0])], vec![]];
        let plain = route_sequential(2, sends.clone());
        let (recvs, extra) = route_chaos(2, sends, &mut rt);
        assert_eq!(recvs, plain);
        assert_eq!(rt.stats.drops, 1);
        // Drop billing: sender 2 msgs + (16 payload + 8 NACK) bytes,
        // receiver 1 msg + 8 bytes (the NACK).
        assert_eq!(extra[0], PhaseCost::comm(2, 24));
        assert_eq!(extra[1], PhaseCost::comm(1, 8));
    }

    #[test]
    fn scripted_bitflip_and_duplicate_are_healed() {
        let script = FaultScript::default()
            .fault(0, 0, 1, 0, FaultKind::BitFlip)
            .fault(0, 2, 1, 0, FaultKind::Duplicate)
            .fault(0, 3, 1, 0, FaultKind::Delay);
        let mut rt = ChaosRuntime::scripted(script);
        let sends = vec![
            vec![(1u32, vec![1.0, 2.0, 3.0])],
            vec![],
            vec![(1u32, vec![4.0])],
            vec![(1u32, vec![7.0])],
        ];
        let plain = route_sequential(4, sends.clone());
        let (recvs, extra) = route_chaos(4, sends, &mut rt);
        assert_eq!(recvs, plain);
        assert_eq!(rt.stats.bit_flips, 1);
        assert_eq!(rt.stats.duplicates, 1);
        assert_eq!(rt.stats.delays, 1);
        // Receiver: bit-flip (2 msgs, 24+8 bytes) + duplicate (1 msg, 8
        // bytes) + delay (DELAY_PENALTY_MSGS msgs).
        assert_eq!(
            extra[1],
            PhaseCost::comm(2 + 1 + DELAY_PENALTY_MSGS, 32 + 8)
        );
    }

    #[test]
    fn scripted_stall_burns_flops() {
        let script = FaultScript::default().stall(0, 1);
        let mut rt = ChaosRuntime::scripted(script);
        let (_, extra) = route_chaos(2, vec![vec![(1, vec![1.0])], vec![]], &mut rt);
        assert_eq!(extra[1].flops, STALL_PENALTY_FLOPS);
        assert_eq!(rt.stats.stalls, 1);
    }

    #[test]
    fn bill_retransmit_skips_clean_rounds() {
        let mut ledger = CostLedger::new(Machine::cab());
        assert_eq!(
            bill_retransmit(&mut ledger, &[PhaseCost::default(); 4]),
            0.0
        );
        assert_eq!(ledger.steps, 0, "clean round must not touch the ledger");
        let t = bill_retransmit(&mut ledger, &[PhaseCost::comm(2, 24), PhaseCost::default()]);
        assert!(t > 0.0);
        assert_eq!(ledger.by_phase[&Phase::Retransmit], t);
    }

    #[test]
    fn take_crash_consumes_each_epoch_once() {
        let mut rt = ChaosRuntime::scripted(FaultScript::default().crash(3));
        assert!(!rt.take_crash(2));
        assert!(rt.take_crash(3));
        // Deterministic re-execution reaches epoch 3 again: no re-crash.
        assert!(!rt.take_crash(3));
        assert_eq!(rt.stats.crashes, 1);
    }

    #[test]
    fn superstep_counter_gives_each_round_fresh_coordinates() {
        // The same send pattern routed twice must see *different* fault
        // draws (coordinates include the step), while two runtimes with
        // the same seed see the same sequence.
        let p = 8;
        let mut rt1 = ChaosRuntime::seeded(5, 0.3);
        let mut rt2 = ChaosRuntime::seeded(5, 0.3);
        for _ in 0..4 {
            let (a, ea) = route_chaos(p, mesh_sends(p, 3), &mut rt1);
            let (b, eb) = route_chaos(p, mesh_sends(p, 3), &mut rt2);
            assert_eq!(a, b);
            assert_eq!(ea, eb);
        }
        assert_eq!(rt1.step(), 4);
        assert_eq!(rt1.stats, rt2.stats);
    }

    #[test]
    #[should_panic(expected = "chaos timeout")]
    fn impossible_scripted_plans_time_out() {
        // A drop-jammed message faults on every attempt and can never
        // be delivered; the retry budget must end in a loud timeout,
        // not an infinite loop.
        let plan = FaultPlan::scripted(FaultScript::default().jam(0, 0, 1, 0, FaultKind::Drop));
        let _ = transmit(&plan, 0, 0, 1, 0, vec![1.0]);
    }
}
