//! Message routing between logical ranks.
//!
//! The sequential router is the workhorse: it delivers every rank's sends
//! deterministically (receives sorted by source) and validates the traffic.
//! The threaded router runs each rank on its own OS thread with crossbeam
//! channels — on a 1-core box it buys no speed, but it proves the message
//! protocol has no schedule dependence: tests assert both routers produce
//! identical results.

use crossbeam::channel;

/// One message: payload of doubles from a source rank, carried in a
/// checksum envelope so in-flight corruption is detectable (the chaos
/// router's verify-retry path depends on this; the plain routers simply
/// carry it along).
#[derive(Debug, Clone, PartialEq)]
pub struct RankMessage {
    /// Sender.
    pub src: u32,
    /// Payload.
    pub data: Vec<f64>,
    /// FNV-1a over the sender id and the payload bits, computed at
    /// construction (see [`RankMessage::new`]).
    pub checksum: u64,
}

impl RankMessage {
    /// Seals `data` from `src` in a checksum envelope.
    pub fn new(src: u32, data: Vec<f64>) -> RankMessage {
        let checksum = sf2d_chaos::checksum(src, 0, &data);
        RankMessage {
            src,
            data,
            checksum,
        }
    }

    /// True when the payload still matches the envelope checksum.
    pub fn verify(&self) -> bool {
        sf2d_chaos::checksum(self.src, 0, &self.data) == self.checksum
    }
}

/// A message in flight, tagged (in debug builds) with its enqueue index
/// within the source rank's send list so delivery order can be audited.
#[derive(Debug)]
struct Tagged {
    msg: RankMessage,
    #[cfg(debug_assertions)]
    seq: u32,
}

/// Shared inbox finalization for both routers: sorts by source rank
/// (stably, preserving arrival order within a source) and, in debug
/// builds, asserts the delivery order is deterministic — `(src, seq)`
/// strictly lexicographically increasing, i.e. each source's messages
/// arrive in the order it enqueued them and no message is duplicated.
fn finish_inbox(rank: usize, mut inbox: Vec<Tagged>) -> Vec<RankMessage> {
    inbox.sort_by_key(|t| t.msg.src);
    #[cfg(debug_assertions)]
    for w in inbox.windows(2) {
        let prev = (w[0].msg.src, w[0].seq);
        let next = (w[1].msg.src, w[1].seq);
        assert!(
            prev < next,
            "rank {rank}: nondeterministic delivery order, {prev:?} !< {next:?}"
        );
    }
    let _ = rank;
    inbox.into_iter().map(|t| t.msg).collect()
}

/// Execution-tuning knobs for the simulator runtime. These change only
/// how fast the simulator itself runs — never the modeled costs or the
/// computed values (the parallel engine is bit-identical to sequential).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// OS threads the phase-local per-rank work fans out across
    /// (1 = fully sequential).
    pub threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig { threads: 1 }
    }
}

impl RuntimeConfig {
    /// Reads the shared `SF2D_THREADS` environment variable (the same
    /// knob the parallel partitioner honors); unset falls back to 1
    /// (sequential).
    ///
    /// # Panics
    /// Panics with a clear message when the variable is set to garbage
    /// (empty, `0`, negative, non-numeric, fractional) — see
    /// [`RuntimeConfig::parse_threads`]. Silently degrading to
    /// sequential on a typo would falsify benchmark numbers.
    pub fn from_env() -> RuntimeConfig {
        RuntimeConfig {
            threads: sf2d_par::threads_from_env(),
        }
    }

    /// The pure validator behind [`RuntimeConfig::from_env`] (`None` =
    /// variable unset). Exposed so tests can cover every rejected form
    /// without racing on the process environment.
    pub fn parse_threads(raw: Option<&str>) -> Result<usize, String> {
        sf2d_par::parse_threads(raw)
    }
}

/// The parallel superstep engine, now hosted in the shared `sf2d-par`
/// work module so the partitioner can reuse the same chunked
/// scoped-thread fan-out. Re-exported here for backwards compatibility.
/// [`par_ranks_pool`] is the pool-backed variant: same disjoint-rank
/// contract, but batches run on a persistent [`sf2d_par::Pool`] whose
/// per-worker spans land in the trace when pool tracing is enabled.
pub use sf2d_par::{par_ranks, par_ranks_pool};

/// Routes `sends[rank] = [(dst, payload), ...]` and returns
/// `recvs[rank] = [RankMessage, ...]` sorted by source rank.
///
/// # Panics
/// Panics if any destination is out of range — a mis-built communication
/// plan is a programming error the simulator refuses to mask.
pub fn route_sequential(p: usize, sends: Vec<Vec<(u32, Vec<f64>)>>) -> Vec<Vec<RankMessage>> {
    assert_eq!(sends.len(), p, "one send list per rank required");
    let mut recvs: Vec<Vec<Tagged>> = (0..p).map(|_| Vec::new()).collect();
    for (src, out) in sends.into_iter().enumerate() {
        for (_seq, (dst, data)) in out.into_iter().enumerate() {
            assert!((dst as usize) < p, "rank {src} sent to invalid rank {dst}");
            recvs[dst as usize].push(Tagged {
                msg: RankMessage::new(src as u32, data),
                #[cfg(debug_assertions)]
                seq: _seq as u32,
            });
        }
    }
    recvs
        .into_iter()
        .enumerate()
        .map(|(r, inbox)| finish_inbox(r, inbox))
        .collect()
}

/// Same contract as [`route_sequential`] but each rank runs on its own
/// thread, sending through crossbeam channels.
pub fn route_threaded(p: usize, sends: Vec<Vec<(u32, Vec<f64>)>>) -> Vec<Vec<RankMessage>> {
    assert_eq!(sends.len(), p, "one send list per rank required");
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..p).map(|_| channel::unbounded::<Tagged>()).unzip();

    // Expected inbox sizes, counted up front: inboxes get exact
    // capacities, and a lost message becomes a loud assert instead of a
    // silently short inbox.
    let mut expected = vec![0usize; p];
    for (src, out) in sends.iter().enumerate() {
        for (dst, _) in out {
            assert!((*dst as usize) < p, "rank {src} sent to invalid rank {dst}");
            expected[*dst as usize] += 1;
        }
    }

    crossbeam::scope(|scope| {
        // Sender threads: each rank clones exactly the senders its own
        // messages need (one per message, not the full p-vector — cloning
        // all `txs` per rank would cost O(p²) refcount traffic).
        for (src, out) in sends.into_iter().enumerate() {
            let links: Vec<channel::Sender<Tagged>> = out
                .iter()
                .map(|(dst, _)| txs[*dst as usize].clone())
                .collect();
            scope.spawn(move |_| {
                for (_seq, ((_, data), tx)) in out.into_iter().zip(links).enumerate() {
                    tx.send(Tagged {
                        msg: RankMessage::new(src as u32, data),
                        #[cfg(debug_assertions)]
                        seq: _seq as u32,
                    })
                    .expect("receiver alive");
                }
            });
        }
    })
    .expect("no rank thread panicked");
    // All senders joined; close the channels so draining terminates.
    drop(txs);
    rxs.into_iter()
        .enumerate()
        .map(|(r, rx)| {
            let mut inbox: Vec<Tagged> = Vec::with_capacity(expected[r]);
            inbox.extend(rx);
            assert_eq!(inbox.len(), expected[r], "rank {r} inbox count mismatch");
            finish_inbox(r, inbox)
        })
        .collect()
}

/// Total payload items in flight in a send set — used to cross-check plan
/// volume bookkeeping against actual traffic, and (via the generic
/// payload) shared with `sf2d-spmv`'s plan/diagnosis accounting.
pub fn traffic_volume<T>(sends: &[Vec<(u32, Vec<T>)>]) -> usize {
    sends
        .iter()
        .flat_map(|s| s.iter().map(|(_, d)| d.len()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sends() -> Vec<Vec<(u32, Vec<f64>)>> {
        vec![
            vec![(1, vec![1.0, 2.0]), (2, vec![3.0])],
            vec![(0, vec![4.0])],
            vec![(0, vec![5.0]), (1, vec![6.0])],
        ]
    }

    #[test]
    fn sequential_routing_delivers_sorted() {
        let recvs = route_sequential(3, demo_sends());
        assert_eq!(recvs[0].len(), 2);
        assert_eq!(recvs[0][0], RankMessage::new(1, vec![4.0]));
        assert_eq!(recvs[0][1], RankMessage::new(2, vec![5.0]));
        assert_eq!(recvs[1].len(), 2);
        assert_eq!(recvs[2], vec![RankMessage::new(0, vec![3.0])]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let a = route_sequential(3, demo_sends());
        let b = route_threaded(3, demo_sends());
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_matches_sequential_on_larger_traffic() {
        // 16 ranks, pseudo-random all-to-some traffic.
        let p = 16usize;
        let sends: Vec<Vec<(u32, Vec<f64>)>> = (0..p)
            .map(|src| {
                (0..p)
                    .filter(|&dst| (src * 7 + dst * 3) % 4 == 0 && dst != src)
                    .map(|dst| (dst as u32, vec![src as f64, dst as f64, 42.0]))
                    .collect()
            })
            .collect();
        assert_eq!(route_sequential(p, sends.clone()), route_threaded(p, sends));
    }

    #[test]
    fn traffic_volume_counts_doubles() {
        assert_eq!(traffic_volume(&demo_sends()), 6);
    }

    #[test]
    fn empty_traffic_is_fine() {
        let recvs = route_sequential(2, vec![vec![], vec![]]);
        assert!(recvs.iter().all(|r| r.is_empty()));
        let recvs = route_threaded(2, vec![vec![], vec![]]);
        assert!(recvs.iter().all(|r| r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn invalid_destination_detected() {
        route_sequential(2, vec![vec![(5, vec![1.0])], vec![]]);
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn threaded_invalid_destination_detected() {
        route_threaded(2, vec![vec![(5, vec![1.0])], vec![]]);
    }

    #[test]
    fn par_ranks_is_bit_identical_to_sequential() {
        // Per-rank floating-point work whose result would expose any
        // reordering: the exact value depends on summation order.
        let work = |r: usize, acc: &mut f64| {
            *acc = 0.0;
            for k in 1..200 {
                *acc += ((r * k) as f64).sin() / k as f64;
            }
        };
        let mut seq = vec![0.0f64; 23];
        par_ranks(1, &mut seq, work);
        for threads in [2, 3, 8, 64] {
            let mut par = vec![0.0f64; 23];
            par_ranks(threads, &mut par, work);
            let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads {threads}");
        }
    }

    #[test]
    fn par_ranks_passes_correct_indices() {
        let mut items = vec![0usize; 17];
        par_ranks(4, &mut items, |r, slot| *slot = r * r);
        for (r, &v) in items.iter().enumerate() {
            assert_eq!(v, r * r);
        }
    }

    #[test]
    fn par_ranks_handles_edge_shapes() {
        let mut empty: Vec<u8> = Vec::new();
        par_ranks(4, &mut empty, |_, _| unreachable!());
        let mut one = vec![0u8];
        par_ranks(16, &mut one, |_, v| *v = 7);
        assert_eq!(one, vec![7]);
        // More threads than items.
        let mut few = vec![0u8; 3];
        par_ranks(100, &mut few, |r, v| *v = r as u8 + 1);
        assert_eq!(few, vec![1, 2, 3]);
    }

    #[test]
    fn runtime_config_defaults_to_sequential() {
        assert_eq!(RuntimeConfig::default().threads, 1);
        // from_env falls back to 1 when the variable is unset (it is not
        // set in the test environment).
        assert!(RuntimeConfig::from_env().threads >= 1);
    }

    #[test]
    fn runtime_config_rejects_each_garbage_threads_form() {
        // The pure validator behind from_env, one case per rejected
        // form. (from_env itself panics with the same messages; tested
        // here without mutating the shared process environment.)
        assert_eq!(RuntimeConfig::parse_threads(None), Ok(1));
        assert_eq!(RuntimeConfig::parse_threads(Some("4")), Ok(4));
        for garbage in ["", "   ", "0", "-1", "abc", "1.5", "1e3", "O8"] {
            let err = RuntimeConfig::parse_threads(Some(garbage))
                .expect_err(&format!("{garbage:?} must be rejected"));
            assert!(err.contains("SF2D_THREADS"), "{garbage:?} -> {err}");
        }
    }

    #[test]
    fn checksum_envelope_seals_and_detects_tampering() {
        let mut m = RankMessage::new(3, vec![1.0, -2.5, 0.0]);
        assert!(m.verify());
        // Any single-bit payload change breaks the envelope.
        m.data[1] = f64::from_bits(m.data[1].to_bits() ^ 1);
        assert!(!m.verify());
        m.data[1] = -2.5;
        assert!(m.verify());
        // The sender id is part of the envelope too.
        m.src = 4;
        assert!(!m.verify());
    }

    #[test]
    fn per_source_enqueue_order_survives_both_routers() {
        // Rank 0 sends rank 1 three messages; the receiver must see them
        // in enqueue order (the debug-build (src, seq) audit in
        // finish_inbox enforces this, and the payloads prove it).
        let sends = vec![
            vec![
                (1, vec![1.0]),
                (0, vec![99.0]),
                (1, vec![2.0]),
                (1, vec![3.0]),
            ],
            vec![(1, vec![4.0])],
        ];
        for recvs in [
            route_sequential(2, sends.clone()),
            route_threaded(2, sends.clone()),
        ] {
            let from0: Vec<f64> = recvs[1]
                .iter()
                .filter(|m| m.src == 0)
                .map(|m| m.data[0])
                .collect();
            assert_eq!(from0, vec![1.0, 2.0, 3.0]);
            assert_eq!(recvs[1].last().unwrap().src, 1);
        }
    }

    #[test]
    fn self_sends_allowed() {
        let recvs = route_sequential(1, vec![vec![(0, vec![9.0])]]);
        assert_eq!(recvs[0], vec![RankMessage::new(0, vec![9.0])]);
    }
}
