//! Message routing between logical ranks.
//!
//! The sequential router is the workhorse: it delivers every rank's sends
//! deterministically (receives sorted by source) and validates the traffic.
//! The threaded router runs each rank on its own OS thread with crossbeam
//! channels — on a 1-core box it buys no speed, but it proves the message
//! protocol has no schedule dependence: tests assert both routers produce
//! identical results.

use crossbeam::channel;

/// One message: payload of doubles from a source rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMessage {
    /// Sender.
    pub src: u32,
    /// Payload.
    pub data: Vec<f64>,
}

/// Routes `sends[rank] = [(dst, payload), ...]` and returns
/// `recvs[rank] = [RankMessage, ...]` sorted by source rank.
///
/// # Panics
/// Panics if any destination is out of range — a mis-built communication
/// plan is a programming error the simulator refuses to mask.
pub fn route_sequential(p: usize, sends: Vec<Vec<(u32, Vec<f64>)>>) -> Vec<Vec<RankMessage>> {
    assert_eq!(sends.len(), p, "one send list per rank required");
    let mut recvs: Vec<Vec<RankMessage>> = vec![Vec::new(); p];
    for (src, out) in sends.into_iter().enumerate() {
        for (dst, data) in out {
            assert!((dst as usize) < p, "rank {src} sent to invalid rank {dst}");
            recvs[dst as usize].push(RankMessage {
                src: src as u32,
                data,
            });
        }
    }
    for inbox in &mut recvs {
        inbox.sort_by_key(|m| m.src);
    }
    recvs
}

/// Same contract as [`route_sequential`] but each rank runs on its own
/// thread, sending through crossbeam channels.
pub fn route_threaded(p: usize, sends: Vec<Vec<(u32, Vec<f64>)>>) -> Vec<Vec<RankMessage>> {
    assert_eq!(sends.len(), p, "one send list per rank required");
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..p).map(|_| channel::unbounded::<RankMessage>()).unzip();

    crossbeam::scope(|scope| {
        // Sender threads: each rank pushes its messages through its own
        // clones of the channel senders.
        for (src, out) in sends.into_iter().enumerate() {
            let txs = txs.clone();
            scope.spawn(move |_| {
                for (dst, data) in out {
                    assert!(
                        (dst as usize) < txs.len(),
                        "rank {src} sent to invalid rank {dst}"
                    );
                    txs[dst as usize]
                        .send(RankMessage {
                            src: src as u32,
                            data,
                        })
                        .expect("receiver alive");
                }
            });
        }
    })
    .expect("no rank thread panicked");
    // All senders joined; close the channels so draining terminates.
    drop(txs);
    rxs.into_iter()
        .map(|rx| {
            let mut inbox: Vec<RankMessage> = rx.into_iter().collect();
            inbox.sort_by_key(|m| m.src);
            inbox
        })
        .collect()
}

/// Total doubles in flight in a send set — used to cross-check plan volume
/// bookkeeping against actual traffic.
pub fn traffic_volume(sends: &[Vec<(u32, Vec<f64>)>]) -> usize {
    sends
        .iter()
        .flat_map(|s| s.iter().map(|(_, d)| d.len()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sends() -> Vec<Vec<(u32, Vec<f64>)>> {
        vec![
            vec![(1, vec![1.0, 2.0]), (2, vec![3.0])],
            vec![(0, vec![4.0])],
            vec![(0, vec![5.0]), (1, vec![6.0])],
        ]
    }

    #[test]
    fn sequential_routing_delivers_sorted() {
        let recvs = route_sequential(3, demo_sends());
        assert_eq!(recvs[0].len(), 2);
        assert_eq!(
            recvs[0][0],
            RankMessage {
                src: 1,
                data: vec![4.0]
            }
        );
        assert_eq!(
            recvs[0][1],
            RankMessage {
                src: 2,
                data: vec![5.0]
            }
        );
        assert_eq!(recvs[1].len(), 2);
        assert_eq!(
            recvs[2],
            vec![RankMessage {
                src: 0,
                data: vec![3.0]
            }]
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let a = route_sequential(3, demo_sends());
        let b = route_threaded(3, demo_sends());
        assert_eq!(a, b);
    }

    #[test]
    fn threaded_matches_sequential_on_larger_traffic() {
        // 16 ranks, pseudo-random all-to-some traffic.
        let p = 16usize;
        let sends: Vec<Vec<(u32, Vec<f64>)>> = (0..p)
            .map(|src| {
                (0..p)
                    .filter(|&dst| (src * 7 + dst * 3) % 4 == 0 && dst != src)
                    .map(|dst| (dst as u32, vec![src as f64, dst as f64, 42.0]))
                    .collect()
            })
            .collect();
        assert_eq!(route_sequential(p, sends.clone()), route_threaded(p, sends));
    }

    #[test]
    fn traffic_volume_counts_doubles() {
        assert_eq!(traffic_volume(&demo_sends()), 6);
    }

    #[test]
    fn empty_traffic_is_fine() {
        let recvs = route_sequential(2, vec![vec![], vec![]]);
        assert!(recvs.iter().all(|r| r.is_empty()));
        let recvs = route_threaded(2, vec![vec![], vec![]]);
        assert!(recvs.iter().all(|r| r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn invalid_destination_detected() {
        route_sequential(2, vec![vec![(5, vec![1.0])], vec![]]);
    }

    #[test]
    fn self_sends_allowed() {
        let recvs = route_sequential(1, vec![vec![(0, vec![9.0])]]);
        assert_eq!(
            recvs[0],
            vec![RankMessage {
                src: 0,
                data: vec![9.0]
            }]
        );
    }
}
