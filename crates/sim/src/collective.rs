//! Collective operations: execution and cost models.
//!
//! The eigensolver's dots and norms reduce scalars across all ranks. We
//! execute the reduction exactly (sum of per-rank partials, deterministic
//! order) and charge the standard recursive-doubling cost:
//! `⌈log₂ p⌉ · (α + β·bytes + γ·(bytes/8))` per rank.

use crate::cost::PhaseCost;

/// Executes an allreduce-sum over per-rank partial values. Every rank
/// observes the same total; summation is in rank order, so the result is
/// deterministic (floating-point addition is not associative — fixing the
/// order is what makes the whole simulator reproducible).
pub fn allreduce_sum(partials: &[f64]) -> f64 {
    partials.iter().sum()
}

/// Executes an elementwise allreduce-sum over per-rank vectors.
///
/// # Panics
/// Panics if the per-rank vectors disagree in length.
pub fn allreduce_sum_vec(partials: &[Vec<f64>]) -> Vec<f64> {
    let len = partials.first().map(|v| v.len()).unwrap_or(0);
    let mut out = vec![0.0; len];
    for part in partials {
        assert_eq!(part.len(), len, "allreduce length mismatch");
        for (o, &x) in out.iter_mut().zip(part) {
            *o += x;
        }
    }
    out
}

/// Executes an allreduce-sum over per-rank integer counters (e.g. the
/// global `nnz(C)` reduction closing a distributed SpGEMM). Integer
/// addition is associative, so this is deterministic by construction; the
/// cost to bill is still [`allreduce_cost`]`(p, 1)`.
pub fn allreduce_sum_u64(partials: &[u64]) -> u64 {
    partials.iter().sum()
}

/// Per-rank cost of an allreduce of `n_doubles` values over `p` ranks
/// (recursive doubling: log₂p rounds of one message + local add).
pub fn allreduce_cost(p: usize, n_doubles: usize) -> PhaseCost {
    if p <= 1 {
        return PhaseCost::compute(0);
    }
    let rounds = (p as f64).log2().ceil() as u64;
    PhaseCost {
        msgs: rounds,
        bytes: rounds * 8 * n_doubles as u64,
        flops: rounds * n_doubles as u64,
    }
}

/// Per-rank cost of a broadcast of `n_doubles` from one root (binomial
/// tree: log₂p rounds).
pub fn broadcast_cost(p: usize, n_doubles: usize) -> PhaseCost {
    if p <= 1 {
        return PhaseCost::compute(0);
    }
    let rounds = (p as f64).log2().ceil() as u64;
    PhaseCost {
        msgs: rounds,
        bytes: rounds * 8 * n_doubles as u64,
        flops: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_allreduce_sums() {
        assert_eq!(allreduce_sum(&[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(allreduce_sum(&[]), 0.0);
    }

    #[test]
    fn vector_allreduce_sums_elementwise() {
        let out = allreduce_sum_vec(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        assert_eq!(out, vec![11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vector_allreduce_rejects_ragged_input() {
        allreduce_sum_vec(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn allreduce_cost_scales_logarithmically() {
        let c64 = allreduce_cost(64, 1);
        assert_eq!(c64.msgs, 6);
        let c4096 = allreduce_cost(4096, 1);
        assert_eq!(c4096.msgs, 12);
        // Doubling p once more only adds one round.
        assert_eq!(allreduce_cost(8192, 1).msgs, 13);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        assert_eq!(allreduce_cost(1, 100), PhaseCost::compute(0));
        assert_eq!(broadcast_cost(1, 100), PhaseCost::compute(0));
    }

    #[test]
    fn non_power_of_two_rounds_up() {
        assert_eq!(allreduce_cost(65, 1).msgs, 7);
        assert_eq!(broadcast_cost(3, 2).bytes, 2 * 16);
    }

    #[test]
    fn round_counts_are_exact_for_every_small_p() {
        // ⌈log₂ p⌉ for every rank count up to 32, power of two or not —
        // the eigensolver runs at p ∈ {4, 16, 64} but the formulas must
        // hold for the odd shrink factors the harness flags accept.
        for p in 2..=32usize {
            let want = (p as f64).log2().ceil() as u64;
            assert_eq!(allreduce_cost(p, 3).msgs, want, "p={p}");
            assert_eq!(broadcast_cost(p, 3).msgs, want, "p={p}");
        }
    }

    #[test]
    fn empty_payload_still_pays_latency_but_moves_nothing() {
        // A zero-double allreduce is a pure barrier: log₂p α terms, no
        // bytes, no flops.
        for p in [2usize, 3, 7, 64] {
            let c = allreduce_cost(p, 0);
            assert!(c.msgs > 0, "p={p}");
            assert_eq!(c.bytes, 0, "p={p}");
            assert_eq!(c.flops, 0, "p={p}");
            let b = broadcast_cost(p, 0);
            assert_eq!((b.bytes, b.flops), (0, 0), "p={p}");
        }
    }

    #[test]
    fn broadcast_never_charges_flops() {
        for p in [2usize, 5, 1024] {
            assert_eq!(broadcast_cost(p, 100).flops, 0, "p={p}");
        }
        // Allreduce does: one add per double per round.
        assert_eq!(allreduce_cost(8, 100).flops, 3 * 100);
    }

    #[test]
    fn cost_shapes_scale_linearly_in_payload() {
        let one = allreduce_cost(16, 1);
        let many = allreduce_cost(16, 50);
        assert_eq!(many.bytes, 50 * one.bytes);
        assert_eq!(many.flops, 50 * one.flops);
        assert_eq!(many.msgs, one.msgs, "rounds are payload-independent");
    }

    #[test]
    fn scalar_allreduce_sums_in_rank_order() {
        // Floating-point addition is not associative; the executor fixes
        // rank order, so the bits are reproducible run to run.
        let partials = [1e16, 1.0, -1e16, 1.0];
        let want = ((1e16_f64 + 1.0) - 1e16) + 1.0;
        assert_eq!(allreduce_sum(&partials).to_bits(), want.to_bits());
    }

    #[test]
    fn vector_allreduce_edge_shapes() {
        // No ranks at all, and ranks holding empty slices, both reduce
        // to the empty vector instead of panicking.
        assert_eq!(allreduce_sum_vec(&[]), Vec::<f64>::new());
        assert_eq!(allreduce_sum_vec(&[vec![], vec![]]), Vec::<f64>::new());
        // Single rank: identity.
        assert_eq!(allreduce_sum_vec(&[vec![3.0, -1.0]]), vec![3.0, -1.0]);
    }
}
