#![warn(missing_docs)]
// Loops that index several parallel arrays at once are clearer as range
// loops than as the zipped-iterator rewrites clippy suggests.
#![allow(clippy::needless_range_loop)]

//! # sf2d-sim
//!
//! A deterministic distributed-memory **simulator** standing in for the
//! paper's MPI clusters (LLNL *cab*, NERSC *Hopper*).
//!
//! The paper's conclusions rest on three platform-independent quantities —
//! per-rank message counts, communication volumes, and load imbalance —
//! which this workspace *measures exactly* on logical ranks, then converts
//! to time with an **α-β-γ machine model** (latency per message, seconds
//! per byte, seconds per flop), following the BSP cost methodology of
//! Bisseling's textbook \[5\] that the paper builds on:
//!
//! ```text
//! T_phase = max over ranks of (α·msgs + β·bytes + γ·flops)
//! T_total = Σ phases T_phase          (phases synchronize, BSP-style)
//! ```
//!
//! * [`machine`] — the cost parameters, with presets calibrated to the
//!   paper's two platforms;
//! * [`cost`] — the per-phase ledger that accumulates simulated time;
//! * [`runtime`] — message routing between logical ranks (sequential
//!   deterministic, plus a crossbeam-threaded variant used to check that
//!   results do not depend on the execution schedule);
//! * [`collective`] — cost formulas and executors for allreduce/broadcast;
//! * [`wave`] — bounded-memory wave planning: contiguous rank batches
//!   whose scratch fits a live-memory budget, so paper-scale rank counts
//!   (p = 16,384) execute with one reusable arena instead of `p` resident
//!   workspaces;
//! * [`fault`] — the chaos-aware verify-retry-timeout router, which
//!   delivers the same values as the plain routers while billing injected
//!   faults (drops, duplicates, bit-flips, delays, stalls) honestly.

pub mod collective;
pub mod cost;
pub mod fault;
pub mod hierarchy;
pub mod machine;
pub mod runtime;
pub mod wave;

pub use sf2d_chaos;
pub use sf2d_par;

pub use cost::{CostLedger, Phase, PhaseCost};
pub use fault::{bill_retransmit, route_chaos, route_chaos_threaded, ChaosRuntime};
pub use hierarchy::NodeModel;
pub use machine::Machine;
pub use runtime::{par_ranks, route_sequential, route_threaded, RankMessage, RuntimeConfig};
pub use wave::{max_wave_bytes, plan_waves};
