//! The α-β-γ machine model.

use crate::cost::PhaseCost;

/// Cost parameters of a distributed-memory machine.
///
/// * `alpha` — seconds of latency per point-to-point message;
/// * `beta` — seconds per byte transferred (inverse effective bandwidth);
/// * `gamma` — seconds per flop of *sparse* compute (an effective rate that
///   bakes in the memory-bound nature of SpMV, not the peak FPU rate).
///
/// ```
/// use sf2d_sim::{Machine, PhaseCost};
///
/// let m = Machine::cab();
/// // 63 messages of latency already cost more than 100 KB of bandwidth —
/// // the regime where the paper's O(sqrt p) message bound pays off.
/// let msgs = m.phase_time(&PhaseCost::comm(63, 0));
/// let bytes = m.phase_time(&PhaseCost::comm(0, 100 * 1024));
/// assert!(msgs > bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Machine {
    /// Latency per message, seconds.
    pub alpha: f64,
    /// Seconds per byte.
    pub beta: f64,
    /// Seconds per flop (fused multiply-add counted as two flops).
    pub gamma: f64,
    /// Human-readable name used in reports.
    pub name: &'static str,
}

impl Machine {
    /// LLNL *cab*-like: Infiniband QDR (~1.5 µs latency, ~3.2 GB/s effective
    /// per-rank bandwidth), Xeon cores sustaining ~4 GFlop/s on sparse
    /// kernels. This is where the paper's 64–4096-rank runs happened.
    pub fn cab() -> Machine {
        Machine {
            alpha: 1.5e-6,
            beta: 1.0 / 3.2e9,
            gamma: 1.0 / 4.0e9,
            name: "cab",
        }
    }

    /// NERSC *Hopper*-like: Cray XE6 Gemini (~2.5 µs latency, ~2 GB/s per
    /// rank), Magny-Cours cores ~3 GFlop/s sparse. The paper's 16K-rank
    /// platform — slower per core and per byte, which is why it warns the
    /// two tables are "not directly comparable".
    pub fn hopper() -> Machine {
        Machine {
            alpha: 2.5e-6,
            beta: 1.0 / 2.0e9,
            gamma: 1.0 / 3.0e9,
            name: "hopper",
        }
    }

    /// Free communication (compute-only); useful in tests and ablations.
    pub fn zero_comm() -> Machine {
        Machine {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0 / 4.0e9,
            name: "zero-comm",
        }
    }

    /// Time one rank spends on a phase with the given cost.
    #[inline]
    pub fn phase_time(&self, c: &PhaseCost) -> f64 {
        self.alpha * c.msgs as f64 + self.beta * c.bytes as f64 + self.gamma * c.flops as f64
    }

    /// The machine's α-β-γ parameters in the form the trace analyzer
    /// ([`sf2d_obs::analyze`]) attributes bounding terms with.
    pub fn cost_params(&self) -> sf2d_obs::CostParams {
        sf2d_obs::CostParams {
            alpha: self.alpha,
            beta: self.beta,
            gamma: self.gamma,
        }
    }

    /// Scales the *workload-proportional* terms (β, γ) by `s`, leaving the
    /// per-message latency α unchanged.
    ///
    /// This is the scaled-replay trick behind the proxy methodology: a
    /// proxy matrix `s`x smaller than the paper's original moves `s`x fewer
    /// bytes and flops per rank, but its message counts are structural and
    /// saturate at the same values (p−1 for 1D, pr+pc−2 for 2D). Charging
    /// each proxy byte/flop `s` times restores the paper's
    /// latency-vs-bandwidth-vs-compute regime, so crossover points land
    /// where they did at full scale.
    pub fn with_workload_scale(mut self, s: f64) -> Machine {
        assert!(s > 0.0 && s.is_finite());
        self.beta *= s;
        self.gamma *= s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_time_is_linear() {
        let m = Machine {
            alpha: 1e-6,
            beta: 1e-9,
            gamma: 1e-9,
            name: "t",
        };
        let c = PhaseCost {
            msgs: 2,
            bytes: 1000,
            flops: 500,
        };
        let t = m.phase_time(&c);
        assert!((t - (2e-6 + 1e-6 + 0.5e-6)).abs() < 1e-15);
    }

    #[test]
    fn presets_have_sane_magnitudes() {
        for m in [Machine::cab(), Machine::hopper()] {
            assert!(m.alpha > 1e-7 && m.alpha < 1e-4, "{}", m.name);
            assert!(m.beta > 1e-11 && m.beta < 1e-8);
            assert!(m.gamma > 1e-11 && m.gamma < 1e-8);
            // Latency costs about as much as a few KB of bandwidth — the
            // regime where message *counts* matter, the paper's key effect.
            let kb_equiv = m.alpha / (m.beta * 1024.0);
            assert!(kb_equiv > 1.0 && kb_equiv < 20.0, "{}: {kb_equiv}", m.name);
        }
    }

    #[test]
    fn hopper_slower_than_cab() {
        let c = PhaseCost {
            msgs: 10,
            bytes: 1 << 20,
            flops: 1 << 20,
        };
        assert!(Machine::hopper().phase_time(&c) > Machine::cab().phase_time(&c));
    }

    #[test]
    fn workload_scale_leaves_latency_alone() {
        let m = Machine::cab().with_workload_scale(64.0);
        let base = Machine::cab();
        assert_eq!(m.alpha, base.alpha);
        assert_eq!(m.beta, base.beta * 64.0);
        assert_eq!(m.gamma, base.gamma * 64.0);
        // A message-only phase costs the same; a byte-heavy one scales.
        let msgs = PhaseCost::comm(10, 0);
        assert_eq!(m.phase_time(&msgs), base.phase_time(&msgs));
        let bytes = PhaseCost::comm(0, 1000);
        assert_eq!(m.phase_time(&bytes), 64.0 * base.phase_time(&bytes));
    }

    #[test]
    #[should_panic]
    fn workload_scale_rejects_nonpositive() {
        let _ = Machine::cab().with_workload_scale(0.0);
    }

    #[test]
    fn zero_comm_ignores_messages() {
        let m = Machine::zero_comm();
        let t = m.phase_time(&PhaseCost {
            msgs: 1000,
            bytes: 1 << 30,
            flops: 0,
        });
        assert_eq!(t, 0.0);
    }
}
