//! Wave planning for bounded-memory superstep execution.
//!
//! At paper scale (p = 16,384) a simulated superstep cannot afford one
//! resident workspace per rank: the per-rank scratch alone would dwarf the
//! matrix. Since a BSP phase only ever *reads* cross-rank state that was
//! fully written in an earlier phase, the per-rank work of a phase can be
//! executed in **waves** — contiguous rank ranges whose combined scratch
//! fits a configured live-memory budget — with one reusable arena
//! materialized per wave instead of `p` resident workspaces. The results
//! are byte-identical to all-resident execution because each rank's work
//! is a pure function of state frozen before the phase started; only the
//! *scheduling* changes.
//!
//! This module is the planning half (pure, deterministic, unit-tested);
//! the SpMV executor in `sf2d-spmv` drives phases 2–3 of the 4-phase
//! kernel through these waves when its workspace carries a budget.

use std::ops::Range;

/// Splits ranks `0..n` into contiguous waves whose summed footprints stay
/// within `budget` bytes.
///
/// Greedy left-to-right: a wave grows while the next rank still fits.
/// Every wave holds at least one rank, so a single rank larger than the
/// budget gets a wave of its own (the budget is then best-effort for that
/// wave — the alternative would be failure, and the caller can see the
/// overshoot via [`max_wave_bytes`]). `budget = None` plans one wave over
/// everything (the all-resident fast path). The output covers `0..n`
/// exactly, in order, with no overlaps.
pub fn plan_waves(per_rank_bytes: &[u64], budget: Option<u64>) -> Vec<Range<usize>> {
    let n = per_rank_bytes.len();
    if n == 0 {
        return Vec::new();
    }
    let Some(budget) = budget else {
        return std::iter::once(0..n).collect();
    };
    let mut waves = Vec::new();
    let mut start = 0usize;
    let mut bytes = 0u64;
    for (r, &b) in per_rank_bytes.iter().enumerate() {
        if r > start && bytes.saturating_add(b) > budget {
            waves.push(start..r);
            start = r;
            bytes = 0;
        }
        bytes = bytes.saturating_add(b);
    }
    waves.push(start..n);
    waves
}

/// Largest summed footprint of any planned wave — what the reusable arena
/// must actually hold live.
pub fn max_wave_bytes(per_rank_bytes: &[u64], waves: &[Range<usize>]) -> u64 {
    waves
        .iter()
        .map(|w| per_rank_bytes[w.clone()].iter().sum::<u64>())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_is_one_wave() {
        assert_eq!(plan_waves(&[5, 5, 5], None), vec![0..3]);
        assert!(plan_waves(&[], None).is_empty());
    }

    #[test]
    fn waves_partition_the_ranks_in_order() {
        let sizes = [4u64, 4, 4, 4, 4];
        let waves = plan_waves(&sizes, Some(8));
        assert_eq!(waves, vec![0..2, 2..4, 4..5]);
        // Exact cover, no overlap.
        let flat: Vec<usize> = waves.iter().flat_map(|w| w.clone()).collect();
        assert_eq!(flat, vec![0, 1, 2, 3, 4]);
        assert_eq!(max_wave_bytes(&sizes, &waves), 8);
    }

    #[test]
    fn generous_budget_is_one_wave() {
        assert_eq!(plan_waves(&[1, 2, 3], Some(1000)), vec![0..3]);
    }

    #[test]
    fn oversized_rank_gets_its_own_wave() {
        let sizes = [2u64, 50, 2, 2];
        let waves = plan_waves(&sizes, Some(10));
        assert_eq!(waves, vec![0..1, 1..2, 2..4]);
        // The oversized wave is visible as budget overshoot.
        assert_eq!(max_wave_bytes(&sizes, &waves), 50);
    }

    #[test]
    fn zero_budget_degenerates_to_one_rank_per_wave() {
        let waves = plan_waves(&[3, 3, 3], Some(0));
        assert_eq!(waves, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_sized_ranks_share_a_wave() {
        let waves = plan_waves(&[0, 0, 0], Some(0));
        assert_eq!(waves, vec![0..3]);
    }

    #[test]
    fn empty_input_plans_nothing() {
        assert!(plan_waves(&[], Some(8)).is_empty());
        assert_eq!(max_wave_bytes(&[], &[]), 0);
    }

    #[test]
    fn interleaved_zero_ranks_never_force_a_split() {
        // Zero-byte ranks piggyback on whichever wave is open: the
        // boundaries land exactly where the nonzero footprints demand.
        let sizes = [0u64, 4, 0, 0, 4, 0, 4, 0];
        let waves = plan_waves(&sizes, Some(8));
        assert_eq!(waves, vec![0..6, 6..8]);
        let flat: Vec<usize> = waves.iter().flat_map(|w| w.clone()).collect();
        assert_eq!(flat, (0..sizes.len()).collect::<Vec<_>>());
        assert_eq!(max_wave_bytes(&sizes, &waves), 8);
    }

    #[test]
    fn budget_below_every_rank_is_one_rank_per_wave_with_overshoot() {
        // A budget smaller than any single rank cannot be honored; the
        // planner degrades to singleton waves and the overshoot is
        // visible to the caller instead of being a failure.
        let sizes = [7u64, 9, 8];
        let waves = plan_waves(&sizes, Some(5));
        assert_eq!(waves, vec![0..1, 1..2, 2..3]);
        assert_eq!(max_wave_bytes(&sizes, &waves), 9);
    }

    #[test]
    fn budget_exactly_the_total_is_a_single_wave() {
        // Degenerate cover: the greedy wave keeps growing while the next
        // rank still fits, so an exact-fit budget plans one wave — and
        // one byte less forces a split.
        let sizes = [3u64, 5, 2];
        assert_eq!(plan_waves(&sizes, Some(10)), vec![0..3]);
        assert_eq!(plan_waves(&sizes, Some(9)), vec![0..2, 2..3]);
    }
}
