//! The per-phase cost ledger.
//!
//! Every simulated operation reports a [`PhaseCost`] per rank; the ledger
//! closes the phase BSP-style (elapsed time advances by the *maximum* rank
//! time — stragglers stall everyone, which is exactly how load imbalance
//! hurts the paper's block layouts) and keeps a per-phase-kind breakdown
//! for Table 5's "SpMV time vs total solve time" split.

use std::collections::BTreeMap;

use crate::machine::Machine;

/// Work done by one rank in one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhaseCost {
    /// Point-to-point messages sent.
    pub msgs: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
}

impl PhaseCost {
    /// Pure compute.
    pub fn compute(flops: u64) -> PhaseCost {
        PhaseCost {
            msgs: 0,
            bytes: 0,
            flops,
        }
    }

    /// Pure communication.
    pub fn comm(msgs: u64, bytes: u64) -> PhaseCost {
        PhaseCost {
            msgs,
            bytes,
            flops: 0,
        }
    }

    /// The cost of shipping or computing `m` interleaved columns where
    /// this cost covers one: bytes and flops scale with the width, the
    /// message count does not — the latency amortization that makes
    /// blocked SpMM cheaper than `m` SpMVs. (Comm costs have zero flops
    /// and compute costs zero bytes, so one helper serves both.)
    pub fn widened(&self, m: u64) -> PhaseCost {
        PhaseCost {
            msgs: self.msgs,
            bytes: self.bytes * m,
            flops: self.flops * m,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &PhaseCost) -> PhaseCost {
        PhaseCost {
            msgs: self.msgs + other.msgs,
            bytes: self.bytes + other.bytes,
            flops: self.flops + other.flops,
        }
    }
}

/// SpMV / solver phase kinds, for the time breakdown.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Phase {
    /// Expand: ship `x_j` to ranks owning column-`j` nonzeros.
    Expand,
    /// Local `y += A_loc x` compute.
    LocalCompute,
    /// Local Gustavson multiply in SpGEMM (`C_partial = A_loc · B_rows`).
    /// Separate from [`Phase::LocalCompute`] so [`CostLedger::spmv_time`]
    /// stays an SpMV-only figure.
    Multiply,
    /// Fold: ship partial `y_i` to the row owner.
    Fold,
    /// Merging partial SpGEMM output rows received during the fold (the
    /// SpGEMM analogue of [`Phase::Sum`]).
    Merge,
    /// Summing received partials.
    Sum,
    /// Dense vector work (axpy, dot local parts, orthogonalization).
    VectorOp,
    /// Collectives (allreduce in dots/norms).
    Collective,
    /// Degraded-mode communication: retransmissions, NACKs, duplicate
    /// copies, latency spikes, and stall quanta injected by the chaos
    /// engine's verify-retry path. Always zero in fault-free runs.
    Retransmit,
    /// Checkpoint/restart traffic: snapshot writes and post-crash state
    /// restores. Always zero in fault-free runs.
    Recovery,
    /// Stage-wise block broadcasts (Sparse SUMMA's row/col fragment
    /// fan-out). Kept separate from [`Phase::Expand`] so the SUMMA and
    /// expand/fold SpGEMM paths stay distinguishable in the breakdown.
    Broadcast,
}

impl From<Phase> for sf2d_obs::PhaseKind {
    fn from(p: Phase) -> sf2d_obs::PhaseKind {
        use sf2d_obs::PhaseKind as K;
        match p {
            Phase::Expand => K::Expand,
            Phase::LocalCompute => K::LocalCompute,
            Phase::Multiply => K::Multiply,
            Phase::Fold => K::Fold,
            Phase::Merge => K::Merge,
            Phase::Sum => K::Sum,
            Phase::VectorOp => K::VectorOp,
            Phase::Collective => K::Collective,
            Phase::Retransmit => K::Retransmit,
            Phase::Recovery => K::Recovery,
            Phase::Broadcast => K::Broadcast,
        }
    }
}

/// Accumulates simulated time across supersteps.
#[derive(Debug, Clone)]
pub struct CostLedger {
    machine: Machine,
    /// Total simulated seconds.
    pub total: f64,
    /// Per-phase-kind breakdown.
    pub by_phase: BTreeMap<Phase, f64>,
    /// Number of supersteps closed.
    pub steps: usize,
    /// Chronological superstep log `(phase, seconds)` — lets callers plot
    /// a solve's time series or locate which step spiked.
    pub history: Vec<(Phase, f64)>,
}

impl CostLedger {
    /// New empty ledger for a machine.
    pub fn new(machine: Machine) -> CostLedger {
        CostLedger {
            machine,
            total: 0.0,
            by_phase: BTreeMap::new(),
            steps: 0,
            history: Vec::new(),
        }
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Closes a superstep: all ranks ran `costs[rank]`; elapsed time grows
    /// by the slowest rank. Returns that step time.
    ///
    /// When tracing is enabled ([`sf2d_obs::enabled`]), the ledger also
    /// emits a per-rank [`sf2d_obs::TraceEvent::Superstep`] on the
    /// simulated clock — this single hook gives every code path that
    /// charges the ledger a full per-rank timeline for free. With tracing
    /// off the extra cost is one thread-local boolean read.
    pub fn superstep(&mut self, phase: Phase, costs: &[PhaseCost]) -> f64 {
        let t = costs
            .iter()
            .map(|c| self.machine.phase_time(c))
            .fold(0.0f64, f64::max);
        if sf2d_obs::enabled() {
            let samples = costs
                .iter()
                .enumerate()
                .map(|(r, c)| sf2d_obs::RankSample {
                    rank: r as u32,
                    time: self.machine.phase_time(c),
                    msgs: c.msgs,
                    bytes: c.bytes,
                    flops: c.flops,
                })
                .collect();
            sf2d_obs::record_superstep(self.steps as u64, phase.into(), self.total, samples);
        }
        self.total += t;
        *self.by_phase.entry(phase).or_insert(0.0) += t;
        self.steps += 1;
        self.history.push((phase, t));
        t
    }

    /// Closes a superstep where every rank has the same cost (collectives).
    pub fn superstep_uniform(&mut self, phase: Phase, cost: PhaseCost, p: usize) -> f64 {
        assert!(p >= 1);
        let t = self.machine.phase_time(&cost);
        if sf2d_obs::enabled() {
            let samples = (0..p as u32)
                .map(|rank| sf2d_obs::RankSample {
                    rank,
                    time: t,
                    msgs: cost.msgs,
                    bytes: cost.bytes,
                    flops: cost.flops,
                })
                .collect();
            sf2d_obs::record_superstep(self.steps as u64, phase.into(), self.total, samples);
        }
        self.total += t;
        *self.by_phase.entry(phase).or_insert(0.0) += t;
        self.steps += 1;
        self.history.push((phase, t));
        t
    }

    /// Time attributed to SpMV phases (expand+local+fold+sum) — the "SpMV
    /// Time" column of Table 5.
    pub fn spmv_time(&self) -> f64 {
        [Phase::Expand, Phase::LocalCompute, Phase::Fold, Phase::Sum]
            .iter()
            .map(|ph| self.by_phase.get(ph).copied().unwrap_or(0.0))
            .sum()
    }

    /// The per-phase breakdown as `(phase, seconds)` pairs in phase order.
    pub fn phase_breakdown(&self) -> Vec<(Phase, f64)> {
        self.by_phase.iter().map(|(&ph, &t)| (ph, t)).collect()
    }

    /// Folds another ledger's charges into this one, as if the other
    /// ledger's supersteps had been closed here (in sequence *after* this
    /// ledger's — BSP supersteps are serial, so merged totals **add**; the
    /// max-over-ranks reduction happens *within* each superstep, never
    /// across ledgers). History concatenates in the other's order.
    ///
    /// # Panics
    /// Panics if the machines differ — summing seconds simulated under
    /// different α-β-γ parameters is a bookkeeping error.
    pub fn merge(&mut self, other: &CostLedger) {
        assert_eq!(
            self.machine, other.machine,
            "merging ledgers simulated on different machines"
        );
        self.total += other.total;
        for (&ph, &t) in &other.by_phase {
            *self.by_phase.entry(ph).or_insert(0.0) += t;
        }
        self.steps += other.steps;
        self.history.extend(other.history.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_machine() -> Machine {
        Machine {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            name: "unit",
        }
    }

    #[test]
    fn superstep_takes_the_max() {
        let mut l = CostLedger::new(unit_machine());
        let t = l.superstep(
            Phase::Expand,
            &[
                PhaseCost::comm(1, 0),
                PhaseCost::comm(5, 0),
                PhaseCost::comm(3, 0),
            ],
        );
        assert_eq!(t, 5.0);
        assert_eq!(l.total, 5.0);
        assert_eq!(l.steps, 1);
    }

    #[test]
    fn phases_accumulate_separately() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::Expand, &[PhaseCost::comm(2, 0)]);
        l.superstep(Phase::Fold, &[PhaseCost::comm(3, 0)]);
        l.superstep(Phase::Expand, &[PhaseCost::comm(1, 0)]);
        assert_eq!(l.by_phase[&Phase::Expand], 3.0);
        assert_eq!(l.by_phase[&Phase::Fold], 3.0);
        assert_eq!(l.total, 6.0);
    }

    #[test]
    fn spmv_time_excludes_vector_ops() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::LocalCompute, &[PhaseCost::comm(4, 0)]);
        l.superstep(Phase::VectorOp, &[PhaseCost::comm(7, 0)]);
        assert_eq!(l.spmv_time(), 4.0);
        assert_eq!(l.total, 11.0);
    }

    #[test]
    fn phase_cost_arithmetic() {
        let a = PhaseCost {
            msgs: 1,
            bytes: 2,
            flops: 3,
        };
        let b = PhaseCost::compute(7);
        assert_eq!(
            a.add(&b),
            PhaseCost {
                msgs: 1,
                bytes: 2,
                flops: 10
            }
        );
        assert_eq!(
            PhaseCost::comm(4, 5),
            PhaseCost {
                msgs: 4,
                bytes: 5,
                flops: 0
            }
        );
    }

    #[test]
    fn widened_scales_bytes_and_flops_but_not_msgs() {
        let comm = PhaseCost::comm(3, 40);
        assert_eq!(comm.widened(4), PhaseCost::comm(3, 160));
        let compute = PhaseCost::compute(7);
        assert_eq!(compute.widened(4), PhaseCost::compute(28));
        assert_eq!(comm.widened(1), comm);
    }

    #[test]
    fn history_records_every_step_in_order() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::Expand, &[PhaseCost::comm(2, 0)]);
        l.superstep(Phase::Fold, &[PhaseCost::comm(1, 0)]);
        l.superstep_uniform(Phase::Collective, PhaseCost::comm(3, 0), 4);
        assert_eq!(
            l.history,
            vec![
                (Phase::Expand, 2.0),
                (Phase::Fold, 1.0),
                (Phase::Collective, 3.0)
            ]
        );
        assert_eq!(l.history.len(), l.steps);
        let sum: f64 = l.history.iter().map(|&(_, t)| t).sum();
        assert_eq!(sum, l.total);
    }

    #[test]
    fn empty_superstep_costs_nothing() {
        let mut l = CostLedger::new(unit_machine());
        assert_eq!(l.superstep(Phase::Sum, &[]), 0.0);
    }

    #[test]
    fn superstep_reduction_is_max_over_ranks_not_sum() {
        // The BSP reduction: within a superstep ranks run concurrently, so
        // the charge is the straggler's time (max). Summing would model a
        // serial machine and overcharge 3x here.
        let mut l = CostLedger::new(unit_machine());
        let costs = [
            PhaseCost::comm(2, 0),
            PhaseCost::comm(4, 0),
            PhaseCost::comm(6, 0),
        ];
        let t = l.superstep(Phase::Expand, &costs);
        assert_eq!(t, 6.0);
        let per_rank_sum: f64 = costs.iter().map(|c| l.machine().phase_time(c)).sum();
        assert_eq!(per_rank_sum, 12.0);
        assert!(l.total < per_rank_sum);
    }

    #[test]
    fn merge_adds_across_ledgers_because_supersteps_are_serial() {
        // Across ledgers the supersteps happened one after another, so
        // merged time ADDS — max is only the within-step reduction.
        let mut a = CostLedger::new(unit_machine());
        a.superstep(Phase::Expand, &[PhaseCost::comm(5, 0)]);
        let mut b = CostLedger::new(unit_machine());
        b.superstep(Phase::Expand, &[PhaseCost::comm(3, 0)]);
        b.superstep(Phase::Fold, &[PhaseCost::comm(2, 0)]);
        a.merge(&b);
        assert_eq!(a.total, 10.0); // 5 + 3 + 2, not max(5, 3, 2)
        assert_eq!(a.by_phase[&Phase::Expand], 8.0);
        assert_eq!(a.by_phase[&Phase::Fold], 2.0);
        assert_eq!(a.steps, 3);
        assert_eq!(
            a.history,
            vec![
                (Phase::Expand, 5.0),
                (Phase::Expand, 3.0),
                (Phase::Fold, 2.0)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn merge_rejects_mismatched_machines() {
        let mut a = CostLedger::new(unit_machine());
        let b = CostLedger::new(Machine::cab());
        a.merge(&b);
    }

    #[test]
    fn phase_breakdown_matches_by_phase() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::Fold, &[PhaseCost::comm(1, 0)]);
        l.superstep(Phase::Expand, &[PhaseCost::comm(2, 0)]);
        let breakdown = l.phase_breakdown();
        assert_eq!(breakdown, vec![(Phase::Expand, 2.0), (Phase::Fold, 1.0)]);
        let sum: f64 = breakdown.iter().map(|&(_, t)| t).sum();
        assert_eq!(sum, l.total);
    }

    #[test]
    fn superstep_emits_trace_samples_when_enabled() {
        sf2d_obs::enable();
        let mut l = CostLedger::new(unit_machine());
        l.superstep(
            Phase::Expand,
            &[PhaseCost::comm(1, 8), PhaseCost::comm(3, 24)],
        );
        l.superstep_uniform(Phase::Collective, PhaseCost::comm(2, 16), 2);
        sf2d_obs::disable();
        let events = sf2d_obs::take_events();
        assert_eq!(events.len(), 2);
        match &events[0] {
            sf2d_obs::TraceEvent::Superstep {
                step,
                phase,
                t_start,
                samples,
            } => {
                assert_eq!(*step, 0);
                assert_eq!(*phase, sf2d_obs::PhaseKind::Expand);
                assert_eq!(*t_start, 0.0);
                assert_eq!(samples.len(), 2);
                assert_eq!(samples[1].rank, 1);
                assert_eq!(samples[1].msgs, 3);
                assert_eq!(samples[1].bytes, 24);
                assert_eq!(samples[1].time, 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &events[1] {
            sf2d_obs::TraceEvent::Superstep {
                step,
                t_start,
                samples,
                ..
            } => {
                // Second step starts where the first ended (sim clock).
                assert_eq!(*step, 1);
                assert_eq!(*t_start, 3.0);
                assert_eq!(samples.len(), 2);
                // Uniform superstep: identical samples apart from the rank.
                assert_eq!(samples[0].rank, 0);
                assert_eq!(samples[1].rank, 1);
                assert_eq!(samples[0].time, samples[1].time);
                assert_eq!(samples[0].msgs, 2);
                assert_eq!(samples[0].bytes, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn superstep_emits_nothing_when_disabled() {
        assert!(!sf2d_obs::enabled());
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::Expand, &[PhaseCost::comm(1, 8)]);
        assert!(sf2d_obs::take_events().is_empty());
    }
}
