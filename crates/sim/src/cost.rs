//! The per-phase cost ledger.
//!
//! Every simulated operation reports a [`PhaseCost`] per rank; the ledger
//! closes the phase BSP-style (elapsed time advances by the *maximum* rank
//! time — stragglers stall everyone, which is exactly how load imbalance
//! hurts the paper's block layouts) and keeps a per-phase-kind breakdown
//! for Table 5's "SpMV time vs total solve time" split.

use std::collections::BTreeMap;

use crate::machine::Machine;

/// Work done by one rank in one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhaseCost {
    /// Point-to-point messages sent.
    pub msgs: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
}

impl PhaseCost {
    /// Pure compute.
    pub fn compute(flops: u64) -> PhaseCost {
        PhaseCost {
            msgs: 0,
            bytes: 0,
            flops,
        }
    }

    /// Pure communication.
    pub fn comm(msgs: u64, bytes: u64) -> PhaseCost {
        PhaseCost {
            msgs,
            bytes,
            flops: 0,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &PhaseCost) -> PhaseCost {
        PhaseCost {
            msgs: self.msgs + other.msgs,
            bytes: self.bytes + other.bytes,
            flops: self.flops + other.flops,
        }
    }
}

/// SpMV / solver phase kinds, for the time breakdown.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Phase {
    /// Expand: ship `x_j` to ranks owning column-`j` nonzeros.
    Expand,
    /// Local `y += A_loc x` compute.
    LocalCompute,
    /// Fold: ship partial `y_i` to the row owner.
    Fold,
    /// Summing received partials.
    Sum,
    /// Dense vector work (axpy, dot local parts, orthogonalization).
    VectorOp,
    /// Collectives (allreduce in dots/norms).
    Collective,
}

/// Accumulates simulated time across supersteps.
#[derive(Debug, Clone)]
pub struct CostLedger {
    machine: Machine,
    /// Total simulated seconds.
    pub total: f64,
    /// Per-phase-kind breakdown.
    pub by_phase: BTreeMap<Phase, f64>,
    /// Number of supersteps closed.
    pub steps: usize,
    /// Chronological superstep log `(phase, seconds)` — lets callers plot
    /// a solve's time series or locate which step spiked.
    pub history: Vec<(Phase, f64)>,
}

impl CostLedger {
    /// New empty ledger for a machine.
    pub fn new(machine: Machine) -> CostLedger {
        CostLedger {
            machine,
            total: 0.0,
            by_phase: BTreeMap::new(),
            steps: 0,
            history: Vec::new(),
        }
    }

    /// The machine being modelled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Closes a superstep: all ranks ran `costs[rank]`; elapsed time grows
    /// by the slowest rank. Returns that step time.
    pub fn superstep(&mut self, phase: Phase, costs: &[PhaseCost]) -> f64 {
        let t = costs
            .iter()
            .map(|c| self.machine.phase_time(c))
            .fold(0.0f64, f64::max);
        self.total += t;
        *self.by_phase.entry(phase).or_insert(0.0) += t;
        self.steps += 1;
        self.history.push((phase, t));
        t
    }

    /// Closes a superstep where every rank has the same cost (collectives).
    pub fn superstep_uniform(&mut self, phase: Phase, cost: PhaseCost, p: usize) -> f64 {
        assert!(p >= 1);
        let t = self.machine.phase_time(&cost);
        self.total += t;
        *self.by_phase.entry(phase).or_insert(0.0) += t;
        self.steps += 1;
        self.history.push((phase, t));
        t
    }

    /// Time attributed to SpMV phases (expand+local+fold+sum) — the "SpMV
    /// Time" column of Table 5.
    pub fn spmv_time(&self) -> f64 {
        [Phase::Expand, Phase::LocalCompute, Phase::Fold, Phase::Sum]
            .iter()
            .map(|ph| self.by_phase.get(ph).copied().unwrap_or(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_machine() -> Machine {
        Machine {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            name: "unit",
        }
    }

    #[test]
    fn superstep_takes_the_max() {
        let mut l = CostLedger::new(unit_machine());
        let t = l.superstep(
            Phase::Expand,
            &[
                PhaseCost::comm(1, 0),
                PhaseCost::comm(5, 0),
                PhaseCost::comm(3, 0),
            ],
        );
        assert_eq!(t, 5.0);
        assert_eq!(l.total, 5.0);
        assert_eq!(l.steps, 1);
    }

    #[test]
    fn phases_accumulate_separately() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::Expand, &[PhaseCost::comm(2, 0)]);
        l.superstep(Phase::Fold, &[PhaseCost::comm(3, 0)]);
        l.superstep(Phase::Expand, &[PhaseCost::comm(1, 0)]);
        assert_eq!(l.by_phase[&Phase::Expand], 3.0);
        assert_eq!(l.by_phase[&Phase::Fold], 3.0);
        assert_eq!(l.total, 6.0);
    }

    #[test]
    fn spmv_time_excludes_vector_ops() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::LocalCompute, &[PhaseCost::comm(4, 0)]);
        l.superstep(Phase::VectorOp, &[PhaseCost::comm(7, 0)]);
        assert_eq!(l.spmv_time(), 4.0);
        assert_eq!(l.total, 11.0);
    }

    #[test]
    fn phase_cost_arithmetic() {
        let a = PhaseCost {
            msgs: 1,
            bytes: 2,
            flops: 3,
        };
        let b = PhaseCost::compute(7);
        assert_eq!(
            a.add(&b),
            PhaseCost {
                msgs: 1,
                bytes: 2,
                flops: 10
            }
        );
        assert_eq!(
            PhaseCost::comm(4, 5),
            PhaseCost {
                msgs: 4,
                bytes: 5,
                flops: 0
            }
        );
    }

    #[test]
    fn history_records_every_step_in_order() {
        let mut l = CostLedger::new(unit_machine());
        l.superstep(Phase::Expand, &[PhaseCost::comm(2, 0)]);
        l.superstep(Phase::Fold, &[PhaseCost::comm(1, 0)]);
        l.superstep_uniform(Phase::Collective, PhaseCost::comm(3, 0), 4);
        assert_eq!(
            l.history,
            vec![
                (Phase::Expand, 2.0),
                (Phase::Fold, 1.0),
                (Phase::Collective, 3.0)
            ]
        );
        assert_eq!(l.history.len(), l.steps);
        let sum: f64 = l.history.iter().map(|&(_, t)| t).sum();
        assert_eq!(sum, l.total);
    }

    #[test]
    fn empty_superstep_costs_nothing() {
        let mut l = CostLedger::new(unit_machine());
        assert_eq!(l.superstep(Phase::Sum, &[]), 0.0);
    }
}
