//! Node-aware (hierarchical) communication costing.
//!
//! The paper's clusters pack 16 MPI ranks per node (cab) or 24 (Hopper);
//! messages between ranks on the same node move through shared memory at a
//! fraction of the network's latency and inverse bandwidth. The flat α-β
//! model ignores this. [`NodeModel`] prices each (src, dst) pair by
//! whether the ranks share a node (`rank / node_size` equality, the usual
//! block mapping of ranks to nodes) — the `ablations` harness uses it to
//! check that the paper's layout rankings are robust to the model choice.

/// Two-level machine: remote (network) and local (intra-node) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeModel {
    /// Ranks per node (block mapping: node of rank r = r / node_size).
    pub node_size: usize,
    /// Network latency per message, seconds.
    pub alpha_remote: f64,
    /// Network seconds per byte.
    pub beta_remote: f64,
    /// Shared-memory latency per message, seconds.
    pub alpha_local: f64,
    /// Shared-memory seconds per byte.
    pub beta_local: f64,
    /// Seconds per flop.
    pub gamma: f64,
}

impl NodeModel {
    /// cab-like: 16 ranks/node, shared memory ~10x cheaper both ways.
    pub fn cab16() -> NodeModel {
        NodeModel {
            node_size: 16,
            alpha_remote: 1.5e-6,
            beta_remote: 1.0 / 3.2e9,
            alpha_local: 1.5e-7,
            beta_local: 1.0 / 3.2e10,
            gamma: 1.0 / 4.0e9,
        }
    }

    /// Degenerate single-rank nodes: equivalent to the flat model.
    pub fn flat(alpha: f64, beta: f64, gamma: f64) -> NodeModel {
        NodeModel {
            node_size: 1,
            alpha_remote: alpha,
            beta_remote: beta,
            alpha_local: alpha,
            beta_local: beta,
            gamma,
        }
    }

    /// Node id of a rank.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.node_size.max(1)
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Time one rank spends sending `traffic` = (dst, doubles) pairs plus
    /// receiving `recv_traffic` = (src, doubles) pairs.
    pub fn comm_time(
        &self,
        rank: usize,
        traffic: &[(usize, usize)],
        recv: &[(usize, usize)],
    ) -> f64 {
        let mut t = 0.0;
        for &(peer, doubles) in traffic.iter().chain(recv) {
            if self.same_node(rank, peer) {
                t += self.alpha_local + self.beta_local * 8.0 * doubles as f64;
            } else {
                t += self.alpha_remote + self.beta_remote * 8.0 * doubles as f64;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping() {
        let m = NodeModel::cab16();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(15), 0);
        assert_eq!(m.node_of(16), 1);
        assert!(m.same_node(3, 12));
        assert!(!m.same_node(3, 19));
    }

    #[test]
    fn local_traffic_is_cheaper() {
        let m = NodeModel::cab16();
        let local = m.comm_time(0, &[(1, 100)], &[]);
        let remote = m.comm_time(0, &[(17, 100)], &[]);
        assert!(local < remote / 5.0, "{local} vs {remote}");
    }

    #[test]
    fn flat_model_ignores_nodes() {
        let m = NodeModel::flat(1e-6, 1e-9, 1e-9);
        let a = m.comm_time(0, &[(1, 10)], &[]);
        let b = m.comm_time(0, &[(999, 10)], &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn receive_side_charged() {
        let m = NodeModel::cab16();
        let send_only = m.comm_time(0, &[(17, 10)], &[]);
        let both = m.comm_time(0, &[(17, 10)], &[(33, 10)]);
        assert!((both - 2.0 * send_only).abs() < 1e-18);
    }

    #[test]
    fn no_traffic_costs_nothing() {
        let m = NodeModel::cab16();
        assert_eq!(m.comm_time(5, &[], &[]), 0.0);
    }

    #[test]
    fn empty_payload_still_pays_latency() {
        // A zero-double message is a bare synchronization: α only, with
        // the local/remote split still applied.
        let m = NodeModel::cab16();
        assert_eq!(m.comm_time(0, &[(1, 0)], &[]), m.alpha_local);
        assert_eq!(m.comm_time(0, &[(17, 0)], &[]), m.alpha_remote);
    }

    #[test]
    fn node_boundaries_at_non_power_of_two_sizes() {
        // 24 ranks/node (Hopper): boundaries fall off the binary grid.
        let m = NodeModel {
            node_size: 24,
            ..NodeModel::cab16()
        };
        assert!(m.same_node(0, 23));
        assert!(!m.same_node(23, 24));
        assert_eq!(m.node_of(47), 1);
        assert_eq!(m.node_of(48), 2);
    }

    #[test]
    fn zero_node_size_degrades_to_single_rank_nodes() {
        // node_size 0 is nonsense config; the guard treats it as 1
        // (every rank its own node) instead of dividing by zero.
        let m = NodeModel {
            node_size: 0,
            ..NodeModel::cab16()
        };
        assert_eq!(m.node_of(7), 7);
        assert!(!m.same_node(0, 1));
        assert!(m.same_node(3, 3));
    }

    #[test]
    fn mixed_traffic_sums_both_tiers_exactly() {
        let m = NodeModel::cab16();
        // Send 10 doubles on-node and 20 off-node, receive 5 off-node.
        let t = m.comm_time(0, &[(3, 10), (20, 20)], &[(40, 5)]);
        let want = (m.alpha_local + m.beta_local * 80.0)
            + (m.alpha_remote + m.beta_remote * 160.0)
            + (m.alpha_remote + m.beta_remote * 40.0);
        assert!((t - want).abs() < 1e-18, "{t} vs {want}");
    }
}
