//! Experiment drivers: the measurements behind every table and figure.

use std::sync::Arc;

use sf2d_eigen::{krylov_schur_largest, KrylovSchurConfig};
use sf2d_graph::CsrMatrix;
use sf2d_partition::{LayoutMetrics, MatrixDist, NonzeroLayout};
use sf2d_sim::{ChaosRuntime, CostLedger, Machine, Phase, RuntimeConfig};
use sf2d_spgemm::{spgemm_with, summa_with, SpgemmWorkspace, SummaWorkspace};
use sf2d_spmv::{
    power_iterate, power_iterate_chaos, spmv_with, DistCsrMatrix, DistVector,
    NormalizedLaplacianOp, SpmvWorkspace,
};

use crate::layout::Method;

/// One row of the paper's Table 2 / 3 family: SpMV timing plus layout
/// metrics for a (matrix, method, p) cell.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SpmvRow {
    /// Matrix name.
    pub matrix: String,
    /// Layout name (as in the paper's tables).
    pub method: String,
    /// Rank count.
    pub p: usize,
    /// Simulated seconds for `iters` SpMVs.
    pub sim_time: f64,
    /// Nonzero imbalance (max/avg).
    pub nnz_imbalance: f64,
    /// Vector imbalance (max/avg).
    pub vec_imbalance: f64,
    /// Max messages per rank per SpMV.
    pub max_msgs: usize,
    /// Total doubles sent per SpMV.
    pub total_cv: usize,
}

/// Runs the SpMV experiment for one layout: distributes the matrix,
/// executes one real SpMV (verifying the plans fire), and reports the
/// simulated time for `iters` iterations (the communication plan is static,
/// so per-iteration cost is exactly constant — the paper times 100).
pub fn spmv_experiment<L: NonzeroLayout + ?Sized>(
    a: &CsrMatrix,
    dist: &L,
    machine: Machine,
    iters: usize,
) -> SpmvRow {
    let dm = DistCsrMatrix::from_global(a, dist);
    let x = DistVector::random(Arc::clone(&dm.vmap), 7);
    let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
    let mut ledger = CostLedger::new(machine);
    // SF2D_THREADS only changes the simulator's wall clock, never the
    // modeled costs (the parallel engine is bit-identical to sequential).
    let mut ws = SpmvWorkspace::with_threads(RuntimeConfig::from_env().threads);
    spmv_with(&dm, &x, &mut y, &mut ledger, &mut ws);
    let m = LayoutMetrics::compute(a, dist);
    SpmvRow {
        matrix: String::new(),
        method: String::new(),
        p: dist.nprocs(),
        sim_time: ledger.total * iters as f64,
        nnz_imbalance: m.nnz_imbalance(),
        vec_imbalance: m.vec_imbalance(),
        max_msgs: m.max_msgs(),
        total_cv: m.total_comm_volume(),
    }
}

/// One row of the degraded-mode (chaos) SpMV experiment: a Table 3 cell
/// re-run under fault injection, with the recovery outcome and the
/// retransmission surcharge itemized. Written to a **separate** artifact
/// (`table3_chaos.jsonl`) so fault-free outputs stay byte-identical.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChaosSpmvRow {
    /// Matrix name.
    pub matrix: String,
    /// Layout name.
    pub method: String,
    /// Rank count.
    pub p: usize,
    /// Chaos seed.
    pub seed: u64,
    /// Injected fault rate.
    pub rate: f64,
    /// Simulated seconds for the fault-free `iters`-step power loop.
    pub gold_time: f64,
    /// Simulated seconds for the same loop under fault injection.
    pub sim_time: f64,
    /// Seconds billed to [`Phase::Retransmit`].
    pub retransmit_time: f64,
    /// Seconds billed to [`Phase::Recovery`] (checkpoint restores).
    pub recovery_time: f64,
    /// Whether the recovered iterate matched the fault-free bits.
    pub recovered: bool,
    /// Messages dropped on the wire.
    pub drops: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Payload bit-flips (caught by the checksum envelope).
    pub bit_flips: u64,
    /// Latency spikes.
    pub delays: u64,
    /// Rank stalls at superstep boundaries.
    pub stalls: u64,
    /// Rank crashes recovered via checkpoint restore.
    pub crashes: u64,
    /// Extra messages retransmission cost.
    pub retransmit_msgs: u64,
    /// Extra bytes retransmission cost.
    pub retransmit_bytes: u64,
}

/// Runs one Table 3 cell as an *actual* `iters`-step iteration loop
/// (power iteration: `x ← A x / ‖A x‖`) twice — fault-free and under the
/// given chaos runtime — and reports the degraded-mode surcharge plus a
/// bit-exact recovery verdict. Unlike [`spmv_experiment`], which charges
/// one SpMV times `iters` (valid because the fault-free cost is
/// constant per iteration), the chaos run must execute every iteration:
/// injected faults and checkpoint restores make the per-iteration cost
/// non-uniform.
pub fn spmv_experiment_chaos<L: NonzeroLayout + ?Sized>(
    a: &CsrMatrix,
    dist: &L,
    machine: Machine,
    iters: usize,
    rt: &mut ChaosRuntime,
) -> ChaosSpmvRow {
    let dm = DistCsrMatrix::from_global(a, dist);
    let x0 = DistVector::random(Arc::clone(&dm.vmap), 7);

    let mut gold_ledger = CostLedger::new(machine);
    let gold = power_iterate(&dm, &x0, iters, &mut gold_ledger);

    let (seed, rate) = match &rt.plan {
        sf2d_sim::sf2d_chaos::FaultPlan::Seeded { cfg } => (cfg.seed, cfg.rate),
        sf2d_sim::sf2d_chaos::FaultPlan::Scripted { .. } => (0, rt.plan.rate()),
    };
    let mut ledger = CostLedger::new(machine);
    let got = power_iterate_chaos(&dm, &x0, iters, &mut ledger, rt);
    let recovered = got
        .locals
        .iter()
        .zip(&gold.locals)
        .all(|(g, w)| g.iter().zip(w).all(|(x, y)| x.to_bits() == y.to_bits()));

    ChaosSpmvRow {
        matrix: String::new(),
        method: String::new(),
        p: dist.nprocs(),
        seed,
        rate,
        gold_time: gold_ledger.total,
        sim_time: ledger.total,
        retransmit_time: ledger
            .by_phase
            .get(&Phase::Retransmit)
            .copied()
            .unwrap_or(0.0),
        recovery_time: ledger
            .by_phase
            .get(&Phase::Recovery)
            .copied()
            .unwrap_or(0.0),
        recovered,
        drops: rt.stats.drops,
        duplicates: rt.stats.duplicates,
        bit_flips: rt.stats.bit_flips,
        delays: rt.stats.delays,
        stalls: rt.stats.stalls,
        crashes: rt.stats.crashes,
        retransmit_msgs: rt.stats.retransmit_msgs,
        retransmit_bytes: rt.stats.retransmit_bytes,
    }
}

/// One row of the SpGEMM workload study: `C = A·Aᵀ` traffic, work, and
/// predicted time for a (matrix, method, p) cell — the SpGEMM analogue of
/// the Table 3 metrics detail.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpgemmRow {
    /// Matrix name.
    pub matrix: String,
    /// Layout name (as in the paper's tables).
    pub method: String,
    /// SpGEMM algorithm: `"expand_fold"` (the SpMV-schedule kernel) or
    /// `"summa"` (stage-wise Sparse SUMMA broadcasts).
    pub algo: String,
    /// Rank count.
    pub p: usize,
    /// Nonzeros in the product `C = A·Aᵀ`.
    pub nnz_c: u64,
    /// Max messages any rank sends getting remote operand rows to the
    /// multipliers: the expand (B-row fetch) exchange for expand/fold,
    /// the A/B shuffles plus every stage broadcast for SUMMA.
    pub expand_max_msgs: u64,
    /// Max messages any rank sends in the fold (partial-row) exchange.
    pub fold_max_msgs: u64,
    /// Max messages any rank sends in any *single* SUMMA stage — witnesses
    /// the communication-avoiding `(pr − 1) + (pc − 1)` bound. Zero for
    /// expand/fold (which has no stages).
    pub stage_max_msgs: u64,
    /// Total doubles moved by all exchanges (serialized-row payloads).
    pub total_volume: u64,
    /// Max per-rank flops (multiply + merge) — the load-balance number.
    pub max_flops: u64,
    /// Total flops across ranks (= 2 × product terms + merged entries).
    pub total_flops: u64,
    /// Simulated seconds for one SpGEMM under the α-β-γ model.
    pub sim_time: f64,
    /// Nonzero imbalance of A's layout (max/avg).
    pub nnz_imbalance: f64,
}

/// Runs the SpGEMM workload for one layout: distributes `A`, forms
/// `C = A·Aᵀ` through the distributed kernel (expand / multiply / fold /
/// merge supersteps billed to the α-β-γ model), and reports per-rank max
/// traffic and work plus the predicted time. The same compiled schedules
/// that bound SpMV messages bound these exchanges, so 2D layouts keep
/// per-rank sends ≤ pr + pc − 2 here too.
pub fn spgemm_experiment<L: NonzeroLayout + ?Sized>(
    a: &CsrMatrix,
    dist: &L,
    machine: Machine,
) -> SpgemmRow {
    let dm = DistCsrMatrix::from_global(a, dist);
    let b = a.transpose();
    let mut ledger = CostLedger::new(machine);
    // Threads only change the simulator's wall clock, never the modeled
    // costs or the result bits (the kernel is thread-count independent).
    let mut ws = SpgemmWorkspace::with_threads(RuntimeConfig::from_env().threads);
    let c = spgemm_with(&dm, &b, &mut ledger, &mut ws);
    let per_rank_flops: Vec<u64> = c
        .multiply_flops
        .iter()
        .zip(&c.merge_flops)
        .map(|(m, g)| m + g)
        .collect();
    let m = LayoutMetrics::compute(a, dist);
    SpgemmRow {
        matrix: String::new(),
        method: String::new(),
        algo: "expand_fold".to_string(),
        p: dist.nprocs(),
        nnz_c: c.nnz,
        expand_max_msgs: c.expand.max_send_msgs(),
        fold_max_msgs: c.fold.max_send_msgs(),
        stage_max_msgs: 0,
        total_volume: c.expand.total_volume() + c.fold.total_volume(),
        max_flops: per_rank_flops.iter().copied().max().unwrap_or(0),
        total_flops: per_rank_flops.iter().sum(),
        sim_time: ledger.total,
        nnz_imbalance: m.nnz_imbalance(),
    }
}

/// Runs the same `C = A·Aᵀ` workload through the **Sparse SUMMA** path
/// ([`summa_with`]): `gc` stages of row/column block broadcasts on the
/// grid the layout induces, instead of one expand/fold round over the
/// SpMV schedules. The result bits match [`spgemm_experiment`]'s (both
/// kernels are pinned to the serial oracle), so the rows differ only in
/// the `algo` tag and the traffic/time columns — and `stage_max_msgs`
/// stays ≤ `(pr − 1) + (pc − 1)` for *every* layout, including the 1D
/// ones where expand/fold degrades to `p − 1` sends.
///
/// Takes the concrete [`MatrixDist`] (not the [`NonzeroLayout`] trait)
/// because SUMMA needs the distribution's grid structure, not just its
/// nonzero→rank map.
pub fn summa_experiment(a: &CsrMatrix, dist: &MatrixDist, machine: Machine) -> SpgemmRow {
    let dm = DistCsrMatrix::from_global(a, dist);
    let b = a.transpose();
    let mut ledger = CostLedger::new(machine);
    // Threads only change the simulator's wall clock, never the modeled
    // costs or the result bits (the kernel is thread-count independent).
    let mut ws = SummaWorkspace::with_threads(RuntimeConfig::from_env().threads);
    let c = summa_with(&dm, dist, &b, &mut ledger, &mut ws);
    let p = dist.nprocs();
    let per_rank_flops: Vec<u64> = c
        .multiply_flops
        .iter()
        .zip(&c.merge_flops)
        .map(|(m, g)| m + g)
        .collect();
    let operand_max_msgs = (0..p)
        .map(|r| c.shuffle.send_msgs[r] + c.bcast.send_msgs[r])
        .max()
        .unwrap_or(0);
    let stage_max_msgs = c
        .stage_send_msgs
        .iter()
        .flat_map(|per_rank| per_rank.iter().copied())
        .max()
        .unwrap_or(0);
    let m = LayoutMetrics::compute(a, dist);
    SpgemmRow {
        matrix: String::new(),
        method: String::new(),
        algo: "summa".to_string(),
        p,
        nnz_c: c.nnz,
        expand_max_msgs: operand_max_msgs,
        fold_max_msgs: c.fold.max_send_msgs(),
        stage_max_msgs,
        total_volume: c.total_volume(),
        max_flops: per_rank_flops.iter().copied().max().unwrap_or(0),
        total_flops: per_rank_flops.iter().sum(),
        sim_time: ledger.total,
        nnz_imbalance: m.nnz_imbalance(),
    }
}

/// One row of the paper's Table 4 / 5 family: eigensolver timing.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EigenRow {
    /// Matrix name.
    pub matrix: String,
    /// Layout name.
    pub method: String,
    /// Rank count.
    pub p: usize,
    /// Mean simulated solve seconds over the seeds.
    pub solve_time: f64,
    /// Mean simulated seconds spent in SpMV phases.
    pub spmv_time: f64,
    /// Mean operator applications per solve.
    pub op_applies: f64,
    /// Fraction of seeds that converged to tolerance.
    pub converged_frac: f64,
    /// Nonzero imbalance.
    pub nnz_imbalance: f64,
    /// Vector imbalance.
    pub vec_imbalance: f64,
    /// Max messages per rank per SpMV.
    pub max_msgs: usize,
    /// Total doubles sent per SpMV.
    pub total_cv: usize,
}

/// Runs the eigensolver experiment of §5.3 for one layout: Block
/// Krylov–Schur (block size 1) for the `cfg.nev` largest eigenpairs of the
/// normalized Laplacian, averaged over `seeds` random starts (the paper
/// averages ten).
pub fn eigen_experiment<L: NonzeroLayout + ?Sized>(
    adj: &CsrMatrix,
    dist: &L,
    machine: Machine,
    cfg: &KrylovSchurConfig,
    seeds: &[u64],
) -> EigenRow {
    assert!(!seeds.is_empty());
    let stripped = adj.without_diagonal();
    let degrees: Vec<usize> = (0..stripped.nrows()).map(|i| stripped.row_nnz(i)).collect();
    let dm = DistCsrMatrix::from_global(&stripped, dist);
    let op =
        NormalizedLaplacianOp::new(dm, &degrees).with_threads(RuntimeConfig::from_env().threads);

    let mut solve_time = 0.0;
    let mut spmv_time = 0.0;
    let mut op_applies = 0usize;
    let mut converged = 0usize;
    for &seed in seeds {
        let mut ledger = CostLedger::new(machine);
        let run_cfg = KrylovSchurConfig { seed, ..*cfg };
        let res = krylov_schur_largest(&op, &run_cfg, &mut ledger);
        solve_time += ledger.total;
        spmv_time += ledger.spmv_time();
        op_applies += res.op_applies;
        converged += usize::from(res.converged);
    }
    let k = seeds.len() as f64;
    let m = LayoutMetrics::compute(&stripped, dist);
    EigenRow {
        matrix: String::new(),
        method: String::new(),
        p: dist.nprocs(),
        solve_time: solve_time / k,
        spmv_time: spmv_time / k,
        op_applies: op_applies as f64 / k,
        converged_frac: converged as f64 / k,
        nnz_imbalance: m.nnz_imbalance(),
        vec_imbalance: m.vec_imbalance(),
        max_msgs: m.max_msgs(),
        total_cv: m.total_comm_volume(),
    }
}

/// Convenience: label a row with matrix and method names.
pub fn labeled_spmv(mut row: SpmvRow, matrix: &str, method: Method) -> SpmvRow {
    row.matrix = matrix.to_string();
    row.method = method.name().to_string();
    row
}

/// Convenience: label an eigen row.
pub fn labeled_eigen(mut row: EigenRow, matrix: &str, method: Method) -> EigenRow {
    row.matrix = matrix.to_string();
    row.method = method.name().to_string();
    row
}

/// Convenience: label a chaos row.
pub fn labeled_chaos(mut row: ChaosSpmvRow, matrix: &str, method: Method) -> ChaosSpmvRow {
    row.matrix = matrix.to_string();
    row.method = method.name().to_string();
    row
}

/// Convenience: label a SpGEMM row.
pub fn labeled_spgemm(mut row: SpgemmRow, matrix: &str, method: Method) -> SpgemmRow {
    row.matrix = matrix.to_string();
    row.method = method.name().to_string();
    row
}

/// One row of the serving SLO study (`BENCH_serve.json`): request-level
/// latency/throughput for one phase of a serving scenario at fixed rank
/// count, plus the deterministic amortization ratios the CI gate holds
/// across machines (wall-clock quantiles shift with the host; cache hit
/// rates and gather amortization must not).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeRow {
    /// Matrix name.
    pub matrix: String,
    /// Layout name (as in the paper's tables).
    pub method: String,
    /// Rank count.
    pub p: usize,
    /// Scenario phase: `"steady"` (cached plan, pure batching) or
    /// `"mutating"` (edge churn forcing epoch bumps + recompiles).
    pub scenario: String,
    /// Configured maximum batch width.
    pub max_batch: usize,
    /// Queries answered in this phase.
    pub queries: u64,
    /// SpMM batches executed in this phase.
    pub batches: u64,
    /// Median per-query wall latency (ns): a query's latency is its
    /// batch's flush wall time (queueing excluded).
    pub latency_p50_ns: u64,
    /// 99th-percentile per-query wall latency (ns).
    pub latency_p99_ns: u64,
    /// Queries per wall second over the whole phase.
    pub qps: f64,
    /// Queries per batch — the expand-gather amortization from
    /// coalescing (deterministic; gated).
    pub gather_amortization_ratio: f64,
    /// Plan-cache hit ratio over the phase (deterministic; gated).
    pub cache_hit_ratio: f64,
    /// Epoch bumps during the phase (0 in steady state).
    pub epoch_bumps: u64,
    /// Simulated seconds billed to the engine ledger in this phase —
    /// the α-β-γ cost of the batched traffic (deterministic).
    pub sim_time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;
    use sf2d_gen::{rmat, RmatConfig};

    #[test]
    fn spmv_experiment_produces_consistent_metrics() {
        let a = rmat(&RmatConfig::graph500(8), 4);
        let mut b = LayoutBuilder::new(&a, 0);
        let d1 = b.dist(Method::OneDBlock, 16);
        let d2 = b.dist(Method::TwoDBlock, 16);
        let r1 = spmv_experiment(&a, &d1, Machine::cab(), 100);
        let r2 = spmv_experiment(&a, &d2, Machine::cab(), 100);
        // The structural bound: 2D cuts max messages to at most pr+pc-2.
        assert!(r2.max_msgs <= 6);
        assert!(r1.max_msgs > r2.max_msgs);
        assert!(r1.sim_time > 0.0 && r2.sim_time > 0.0);
    }

    #[test]
    fn two_d_gp_beats_one_d_block_at_scale() {
        // The paper's headline effect at 256 ranks on a scale-free graph.
        let a = rmat(&RmatConfig::graph500(9), 6);
        let mut b = LayoutBuilder::new(&a, 0);
        let blk = spmv_experiment(&a, &b.dist(Method::OneDBlock, 256), Machine::cab(), 100);
        let gp2 = spmv_experiment(&a, &b.dist(Method::TwoDGp, 256), Machine::cab(), 100);
        assert!(
            gp2.sim_time < blk.sim_time,
            "2D-GP {} not below 1D-Block {}",
            gp2.sim_time,
            blk.sim_time
        );
    }

    #[test]
    fn chaos_experiment_recovers_and_itemizes_surcharge() {
        let a = rmat(&RmatConfig::graph500(7), 5);
        let mut b = LayoutBuilder::new(&a, 0);
        let d = b.dist(Method::TwoDBlock, 16);

        // Rate 0: no faults, no surcharge, gold == sim to the bit.
        let mut rt = ChaosRuntime::seeded(1, 0.0);
        let row = spmv_experiment_chaos(&a, &d, Machine::cab(), 20, &mut rt);
        assert!(row.recovered);
        assert_eq!(row.sim_time.to_bits(), row.gold_time.to_bits());
        assert_eq!(row.retransmit_time, 0.0);
        assert_eq!(row.recovery_time, 0.0);

        // A real rate: still recovers, and the surcharge is itemized.
        let mut rt = ChaosRuntime::seeded(0xC0FFEE, 0.25);
        let row = spmv_experiment_chaos(&a, &d, Machine::cab(), 20, &mut rt);
        assert!(row.recovered, "degraded run must recover the gold bits");
        assert!(row.retransmit_time > 0.0);
        assert!(row.sim_time > row.gold_time);
        assert!(row.drops + row.duplicates + row.bit_flips + row.delays > 0);
    }

    #[test]
    fn spgemm_experiment_matches_oracle_and_respects_2d_bound() {
        let a = rmat(&RmatConfig::graph500(8), 4);
        let mut b = LayoutBuilder::new(&a, 0);
        let d1 = b.dist(Method::OneDBlock, 16);
        let d2 = b.dist(Method::TwoDBlock, 16);
        let r1 = spgemm_experiment(&a, &d1, Machine::cab());
        let r2 = spgemm_experiment(&a, &d2, Machine::cab());
        let want = sf2d_graph::spgemm(&a, &a.transpose()).nnz() as u64;
        assert_eq!(r1.nnz_c, want);
        assert_eq!(r2.nnz_c, want);
        // Each exchange is one routed superstep over the SpMV plans, so the
        // per-exchange 2D send bound is pr + pc - 2 = 6 at p = 16.
        assert!(r2.expand_max_msgs + r2.fold_max_msgs <= 12);
        assert!(r2.expand_max_msgs <= 6 && r2.fold_max_msgs <= 6);
        assert_eq!(r1.fold_max_msgs, 0, "1D layouts fold nothing");
        assert_eq!(r1.algo, "expand_fold");
        assert_eq!(r1.stage_max_msgs, 0);
        assert!(r1.sim_time > 0.0 && r2.sim_time > 0.0);
        assert!(r1.total_flops > 0 && r2.total_flops > 0);
    }

    #[test]
    fn summa_experiment_bounds_stage_sends_on_every_layout() {
        let a = rmat(&RmatConfig::graph500(8), 4);
        let mut b = LayoutBuilder::new(&a, 0);
        let d1 = b.dist(Method::OneDRandom, 16);
        let d2 = b.dist(Method::TwoDBlock, 16);
        let want = sf2d_graph::spgemm(&a, &a.transpose()).nnz() as u64;

        let ef = spgemm_experiment(&a, &d1, Machine::cab());
        let s1 = summa_experiment(&a, &d1, Machine::cab());
        let s2 = summa_experiment(&a, &d2, Machine::cab());
        assert_eq!(s1.algo, "summa");
        assert_eq!(s1.nnz_c, want);
        assert_eq!(s2.nnz_c, want);
        // The communication-avoiding bound holds per stage on a 4×4 grid
        // regardless of layout: ≤ (pr − 1) + (pc − 1) = 6 sends.
        assert!(s1.stage_max_msgs <= 6, "1D: {}", s1.stage_max_msgs);
        assert!(s2.stage_max_msgs <= 6, "2D: {}", s2.stage_max_msgs);
        // ... while expand/fold on a 1D random layout degrades toward
        // p − 1 = 15 sends in its single expand exchange.
        assert!(
            ef.expand_max_msgs > s1.stage_max_msgs,
            "expand/fold {} vs SUMMA stage {}",
            ef.expand_max_msgs,
            s1.stage_max_msgs
        );
        assert!(s1.sim_time > 0.0 && s2.sim_time > 0.0);
        assert!(s1.total_flops > 0 && s2.total_flops > 0);
    }

    #[test]
    fn eigen_experiment_runs_and_converges() {
        let a = rmat(&RmatConfig::graph500(7), 9);
        let mut b = LayoutBuilder::new(&a, 0);
        let d = b.dist(Method::TwoDRandom, 4);
        let cfg = KrylovSchurConfig {
            nev: 4,
            max_basis: 20,
            tol: 1e-3,
            max_restarts: 100,
            seed: 0,
        };
        let row = eigen_experiment(&a, &d, Machine::cab(), &cfg, &[1, 2]);
        assert!(row.converged_frac > 0.0);
        assert!(row.solve_time >= row.spmv_time);
        assert!(row.spmv_time > 0.0);
    }
}
