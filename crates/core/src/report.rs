//! Report formatting: markdown tables and JSON lines for the harness
//! binaries that regenerate the paper's tables and figures.

use std::fmt::Write as _;

use sf2d_obs::{CriticalPathReport, TraceEvent};
use sf2d_sim::Machine;

use crate::experiment::{EigenRow, SpmvRow};

/// Formats seconds the way the paper's tables do (2 decimal places, but
/// keep sub-10ms values readable).
pub fn fmt_secs(t: f64) -> String {
    if t >= 0.1 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// Renders a slice of SpMV rows as a GitHub-markdown table, one row per
/// (method) entry, mirroring the paper's Table 2 cells.
pub fn spmv_markdown(rows: &[SpmvRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| matrix | method | p | time (s) | nnz imbal | vec imbal | max msgs | total CV |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.1} | {:.1} | {} | {} |",
            r.matrix,
            r.method,
            r.p,
            fmt_secs(r.sim_time),
            r.nnz_imbalance,
            r.vec_imbalance,
            r.max_msgs,
            r.total_cv
        );
    }
    out
}

/// Renders eigensolver rows (Tables 4 and 5).
pub fn eigen_markdown(rows: &[EigenRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| matrix | method | p | solve (s) | spmv (s) | nnz imbal | vec imbal | max msgs | total CV |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.1} | {:.1} | {} | {} |",
            r.matrix,
            r.method,
            r.p,
            fmt_secs(r.solve_time),
            fmt_secs(r.spmv_time),
            r.nnz_imbalance,
            r.vec_imbalance,
            r.max_msgs,
            r.total_cv
        );
    }
    out
}

/// The paper's "Reduction in SpMV time" column: improvement of the winning
/// method vs the best of the others, in percent (negative = winner lost).
pub fn reduction_vs_next_best(winner: f64, others: &[f64]) -> f64 {
    let best_other = others.iter().copied().fold(f64::INFINITY, f64::min);
    if !best_other.is_finite() || best_other <= 0.0 {
        return 0.0;
    }
    100.0 * (best_other - winner) / best_other
}

/// Performance-profile curve (Figures 6/7): for each method, the fraction
/// of problems whose time is within factor `tau` of the per-problem best.
/// `times[problem][method]`; returns `profile[method]` at the given `tau`.
pub fn performance_profile(times: &[Vec<f64>], tau: f64) -> Vec<f64> {
    if times.is_empty() {
        return Vec::new();
    }
    let nm = times[0].len();
    let mut hits = vec![0usize; nm];
    for problem in times {
        assert_eq!(problem.len(), nm, "ragged time matrix");
        let best = problem.iter().copied().fold(f64::INFINITY, f64::min);
        for (m, &t) in problem.iter().enumerate() {
            if t <= tau * best {
                hits[m] += 1;
            }
        }
    }
    hits.iter()
        .map(|&h| h as f64 / times.len() as f64)
        .collect()
}

/// Reconstructs the critical path from a captured trace under `machine`'s
/// α-β-γ parameters. The report's `total` is the sum over supersteps of the
/// max per-rank phase time — exactly what the [`sf2d_sim::CostLedger`]
/// charged, so the two agree within float tolerance.
pub fn trace_report(events: &[TraceEvent], machine: &Machine, top_k: usize) -> CriticalPathReport {
    sf2d_obs::analyze(events, machine.cost_params(), top_k)
}

/// Renders a captured trace as the markdown critical-path summary
/// (per-phase totals, bounding rank and bounding term per superstep, top-k
/// straggler ranks). Companion to the Chrome/JSONL sinks in [`sf2d_obs`].
pub fn trace_markdown(events: &[TraceEvent], machine: &Machine, top_k: usize) -> String {
    sf2d_obs::analysis::markdown(&trace_report(events, machine, top_k))
}

/// Serializes any serde-able record as one JSON line.
pub fn json_line<T: serde::Serialize>(row: &T) -> String {
    serde_json::to_string(row).expect("row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_row() -> SpmvRow {
        SpmvRow {
            matrix: "demo".into(),
            method: "2D-GP".into(),
            p: 64,
            sim_time: 1.2345,
            nnz_imbalance: 1.4,
            vec_imbalance: 1.0,
            max_msgs: 14,
            total_cv: 11_200_000,
        }
    }

    #[test]
    fn markdown_contains_all_fields() {
        let md = spmv_markdown(&[demo_row()]);
        for needle in ["demo", "2D-GP", "64", "1.23", "14", "11200000"] {
            assert!(md.contains(needle), "missing {needle} in {md}");
        }
    }

    #[test]
    fn reduction_formula_matches_paper_semantics() {
        // Winner 0.10 vs next best 0.12 -> 16.7% reduction.
        let red = reduction_vs_next_best(0.10, &[0.41, 0.12]);
        assert!((red - 16.666).abs() < 0.1, "{red}");
        // The one negative case in Table 2 (uk-2005 @64: -5.9%).
        let neg = reduction_vs_next_best(0.9, &[0.85]);
        assert!(neg < 0.0);
    }

    #[test]
    fn performance_profile_basics() {
        // Two problems, two methods; method 0 always best.
        let times = vec![vec![1.0, 2.0], vec![1.0, 5.0]];
        let at1 = performance_profile(&times, 1.0);
        assert_eq!(at1, vec![1.0, 0.0]);
        let at2 = performance_profile(&times, 2.0);
        assert_eq!(at2, vec![1.0, 0.5]);
        let at10 = performance_profile(&times, 10.0);
        assert_eq!(at10, vec![1.0, 1.0]);
    }

    #[test]
    fn json_line_roundtrips() {
        let line = json_line(&demo_row());
        let back: SpmvRow = serde_json::from_str(&line).unwrap();
        assert_eq!(back.method, "2D-GP");
        assert_eq!(back.max_msgs, 14);
    }

    /// Acceptance criterion: the markdown trace summary reproduces the
    /// ledger's simulated total within float tolerance.
    #[test]
    fn trace_summary_total_matches_ledger_total() {
        use std::sync::Arc;

        use crate::layout::{LayoutBuilder, Method};
        use sf2d_sim::CostLedger;
        use sf2d_spmv::{spmv_with, DistCsrMatrix, DistVector, SpmvWorkspace};

        let a = sf2d_gen::rmat(&sf2d_gen::RmatConfig::graph500(8), 11);
        let mut b = LayoutBuilder::new(&a, 0);
        let dist = b.dist(Method::TwoDGp, 16);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::random(Arc::clone(&dm.vmap), 3);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let machine = Machine::cab();
        let mut ledger = CostLedger::new(machine);

        sf2d_obs::enable();
        spmv_with(&dm, &x, &mut y, &mut ledger, &mut SpmvWorkspace::new());
        sf2d_obs::disable();
        let events = sf2d_obs::take_events();
        assert!(!events.is_empty());

        let report = trace_report(&events, &machine, 3);
        assert!(
            (report.total - ledger.total).abs() <= 1e-12 * ledger.total.max(1.0),
            "report total {} vs ledger total {}",
            report.total,
            ledger.total
        );
        assert_eq!(report.nranks, 16);

        let md = trace_markdown(&events, &machine, 3);
        assert!(md.contains("# Trace summary"), "{md}");
        assert!(md.contains("## Critical path"), "{md}");
    }
}
