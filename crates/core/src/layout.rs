//! The named data-layout methods of the paper's §5.2 and §5.3, and a
//! builder that materializes them with partition caching.

use std::collections::HashMap;

use sf2d_graph::{CsrMatrix, Graph};
use sf2d_partition::gp::partition_graph_multiconstraint;
use sf2d_partition::{
    grid_shape, partition_graph, partition_hypergraph_matrix, GpConfig, HgConfig, MatrixDist,
    Partition,
};

/// The data layouts compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Method {
    /// Row-wise, `n/p` consecutive rows per process (Epetra's default).
    OneDBlock,
    /// Row-wise, rows scattered uniformly at random (§2.4).
    OneDRandom,
    /// Row-wise from multilevel graph partitioning (ParMETIS stand-in).
    OneDGp,
    /// Row-wise from multilevel hypergraph partitioning (Zoltan stand-in).
    OneDHp,
    /// Row-wise, multiconstraint GP balancing rows **and** nonzeros (§5.3).
    OneDGpMc,
    /// Algorithm 2 on a block `rpart` — Yoo et al.'s layout \[34\].
    TwoDBlock,
    /// Algorithm 2 on a random `rpart`.
    TwoDRandom,
    /// **The paper's contribution**: Algorithm 2 on a GP `rpart`.
    TwoDGp,
    /// Algorithm 2 on an HP `rpart`.
    TwoDHp,
    /// Algorithm 2 on a multiconstraint-GP `rpart`.
    TwoDGpMc,
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::OneDBlock => "1D-Block",
            Method::OneDRandom => "1D-Random",
            Method::OneDGp => "1D-GP",
            Method::OneDHp => "1D-HP",
            Method::OneDGpMc => "1D-GP-MC",
            Method::TwoDBlock => "2D-Block",
            Method::TwoDRandom => "2D-Random",
            Method::TwoDGp => "2D-GP",
            Method::TwoDHp => "2D-HP",
            Method::TwoDGpMc => "2D-GP-MC",
        }
    }

    /// Whether the layout is Cartesian 2D.
    pub fn is_2d(&self) -> bool {
        matches!(
            self,
            Method::TwoDBlock
                | Method::TwoDRandom
                | Method::TwoDGp
                | Method::TwoDHp
                | Method::TwoDGpMc
        )
    }

    /// Whether the layout comes from a partitioner (GP, HP, or GP-MC) and
    /// therefore promises the partitioner's balance tolerance. Block and
    /// random layouts make no such promise, so a balance flag against the
    /// partitioner tolerance only makes sense for these methods.
    pub fn is_partitioned(&self) -> bool {
        matches!(
            self,
            Method::OneDGp
                | Method::OneDHp
                | Method::OneDGpMc
                | Method::TwoDGp
                | Method::TwoDHp
                | Method::TwoDGpMc
        )
    }

    /// The six layouts of the SpMV study (Table 2), with the partitioned
    /// ones using GP or HP depending on what the paper used for the matrix.
    pub fn spmv_set(use_hp: bool) -> [Method; 6] {
        if use_hp {
            [
                Method::OneDBlock,
                Method::OneDRandom,
                Method::OneDHp,
                Method::TwoDBlock,
                Method::TwoDRandom,
                Method::TwoDHp,
            ]
        } else {
            [
                Method::OneDBlock,
                Method::OneDRandom,
                Method::OneDGp,
                Method::TwoDBlock,
                Method::TwoDRandom,
                Method::TwoDGp,
            ]
        }
    }

    /// The eigensolver study's layout set (Table 4): the SpMV set plus the
    /// multiconstraint variants (GP matrices only — the paper notes
    /// multiconstraint "was not available with hypergraph partitioning").
    pub fn eigen_set(use_hp: bool) -> Vec<Method> {
        let mut v = Self::spmv_set(use_hp).to_vec();
        if !use_hp {
            v.push(Method::OneDGpMc);
            v.push(Method::TwoDGpMc);
        }
        v
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    /// Parses the paper's method names, case-insensitively
    /// (`"2D-GP"`, `"1d-random"`, ...).
    fn from_str(s: &str) -> Result<Method, String> {
        match s.to_ascii_lowercase().as_str() {
            "1d-block" => Ok(Method::OneDBlock),
            "1d-random" => Ok(Method::OneDRandom),
            "1d-gp" => Ok(Method::OneDGp),
            "1d-hp" => Ok(Method::OneDHp),
            "1d-gp-mc" => Ok(Method::OneDGpMc),
            "2d-block" => Ok(Method::TwoDBlock),
            "2d-random" => Ok(Method::TwoDRandom),
            "2d-gp" => Ok(Method::TwoDGp),
            "2d-hp" => Ok(Method::TwoDHp),
            "2d-gp-mc" => Ok(Method::TwoDGpMc),
            other => Err(format!(
                "unknown method {other}; expected one of 1D-Block, 1D-Random, 1D-GP, \
                 1D-HP, 1D-GP-MC, 2D-Block, 2D-Random, 2D-GP, 2D-HP, 2D-GP-MC"
            )),
        }
    }
}

/// Which partitioner a method needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PartKind {
    Gp,
    Hp,
    GpMc,
}

/// Materializes layouts for one matrix, caching partitions so that 1D-GP
/// and 2D-GP share the same `rpart` (as in the paper: "We used the same
/// row-based graph or hypergraph partition rpart for 1D-GP/HP and for
/// 2D-GP/HP").
pub struct LayoutBuilder<'a> {
    a: &'a CsrMatrix,
    /// Pattern-symmetrized copy for partitioning unsymmetric inputs
    /// (`A + Aᵀ`, the paper's §6 nonsymmetric extension).
    sym: Option<Box<CsrMatrix>>,
    graph: Option<Graph>,
    cache: HashMap<(PartKind, usize), Partition>,
    seed: u64,
}

impl<'a> LayoutBuilder<'a> {
    /// New builder over a structurally symmetric matrix.
    pub fn new(a: &'a CsrMatrix, seed: u64) -> LayoutBuilder<'a> {
        debug_assert!(
            a.is_structurally_symmetric(),
            "use new_unsymmetric for directed inputs"
        );
        LayoutBuilder {
            a,
            sym: None,
            graph: None,
            cache: HashMap::new(),
            seed,
        }
    }

    /// New builder over an **unsymmetric** matrix — the paper's §6
    /// extension: the partitioners run on the symmetrized pattern
    /// `A + Aᵀ` (so row and column partitions coincide and Algorithm 2
    /// applies unchanged), while the layout distributes the original
    /// nonzeros.
    pub fn new_unsymmetric(a: &'a CsrMatrix, seed: u64) -> LayoutBuilder<'a> {
        let sym = a.plus_transpose().expect("square matrix required");
        LayoutBuilder {
            a,
            sym: Some(Box::new(sym)),
            graph: None,
            cache: HashMap::new(),
            seed,
        }
    }

    /// The pattern the partitioners see.
    fn pattern(&self) -> &CsrMatrix {
        self.sym.as_deref().unwrap_or(self.a)
    }

    fn graph(&mut self) -> &Graph {
        if self.graph.is_none() {
            self.graph = Some(Graph::from_symmetric_matrix(self.pattern()));
        }
        self.graph.as_ref().unwrap()
    }

    /// The cached partition for a partitioner kind and part count.
    fn partition(&mut self, kind: PartKind, k: usize) -> &Partition {
        if !self.cache.contains_key(&(kind, k)) {
            let seed = self.seed;
            let part = match kind {
                PartKind::Gp => {
                    let g = self.graph();
                    partition_graph(
                        g,
                        k,
                        &GpConfig {
                            seed,
                            ..GpConfig::default()
                        },
                    )
                }
                PartKind::GpMc => {
                    let g = self.graph();
                    partition_graph_multiconstraint(
                        g,
                        k,
                        &GpConfig {
                            seed,
                            ..GpConfig::default()
                        },
                    )
                }
                PartKind::Hp => {
                    let pattern = self.sym.as_deref().unwrap_or(self.a);
                    partition_hypergraph_matrix(
                        pattern,
                        k,
                        &HgConfig {
                            seed,
                            ..HgConfig::default()
                        },
                    )
                }
            };
            self.cache.insert((kind, k), part);
        }
        &self.cache[&(kind, k)]
    }

    /// Builds the layout for `method` on `p` ranks (2D grids chosen by
    /// [`grid_shape`]).
    pub fn dist(&mut self, method: Method, p: usize) -> MatrixDist {
        let n = self.a.nrows();
        let (pr, pc) = grid_shape(p);
        match method {
            Method::OneDBlock => MatrixDist::block_1d(n, p),
            Method::OneDRandom => MatrixDist::random_1d(n, p, self.seed ^ 0xAB),
            Method::TwoDBlock => MatrixDist::block_2d(n, pr, pc),
            Method::TwoDRandom => MatrixDist::random_2d(n, pr, pc, self.seed ^ 0xCD),
            Method::OneDGp => MatrixDist::from_partition_1d(self.partition(PartKind::Gp, p)),
            Method::OneDHp => MatrixDist::from_partition_1d(self.partition(PartKind::Hp, p)),
            Method::OneDGpMc => MatrixDist::from_partition_1d(self.partition(PartKind::GpMc, p)),
            Method::TwoDGp => {
                MatrixDist::cartesian_2d(self.partition(PartKind::Gp, p), pr, pc, false)
            }
            Method::TwoDHp => {
                MatrixDist::cartesian_2d(self.partition(PartKind::Hp, p), pr, pc, false)
            }
            Method::TwoDGpMc => {
                MatrixDist::cartesian_2d(self.partition(PartKind::GpMc, p), pr, pc, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{rmat, RmatConfig};

    #[test]
    fn names_match_paper() {
        assert_eq!(Method::TwoDGp.name(), "2D-GP");
        assert_eq!(Method::OneDGpMc.name(), "1D-GP-MC");
        assert!(Method::TwoDHp.is_2d());
        assert!(!Method::OneDBlock.is_2d());
        assert!(Method::TwoDGp.is_partitioned());
        assert!(Method::OneDHp.is_partitioned());
        assert!(!Method::TwoDRandom.is_partitioned());
        assert!(!Method::OneDBlock.is_partitioned());
    }

    #[test]
    fn spmv_set_picks_partitioner() {
        assert!(Method::spmv_set(false).contains(&Method::OneDGp));
        assert!(Method::spmv_set(true).contains(&Method::TwoDHp));
        assert_eq!(Method::eigen_set(false).len(), 8);
        assert_eq!(Method::eigen_set(true).len(), 6);
    }

    #[test]
    fn gp_partition_shared_between_1d_and_2d() {
        let a = rmat(&RmatConfig::graph500(7), 1);
        let mut b = LayoutBuilder::new(&a, 3);
        let d1 = b.dist(Method::OneDGp, 4);
        let d2 = b.dist(Method::TwoDGp, 4);
        assert_eq!(d1.rpart(), d2.rpart());
    }

    #[test]
    fn all_methods_build_valid_layouts() {
        let a = rmat(&RmatConfig::graph500(6), 2);
        let mut b = LayoutBuilder::new(&a, 1);
        for m in Method::eigen_set(false) {
            let d = b.dist(m, 6);
            assert_eq!(d.nprocs(), 6, "{}", m.name());
            assert_eq!(d.n(), a.nrows());
        }
        for m in [Method::OneDHp, Method::TwoDHp] {
            let d = b.dist(m, 6);
            assert_eq!(d.nprocs(), 6);
        }
    }
}
