#![warn(missing_docs)]

//! # sf2d-core
//!
//! The user-facing façade of the **sf2d** workspace — a Rust reproduction
//! of Boman, Devine & Rajamanickam, *"Scalable Matrix Computations on Large
//! Scale-Free Graphs Using 2D Graph Partitioning"* (SC'13).
//!
//! ```
//! use sf2d_core::prelude::*;
//!
//! // A small scale-free graph.
//! let a = sf2d_gen::rmat(&sf2d_gen::RmatConfig::graph500(8), 42);
//!
//! // The paper's contribution: 2D Cartesian graph partitioning on 16 ranks.
//! let mut builder = LayoutBuilder::new(&a, 0);
//! let dist = builder.dist(Method::TwoDGp, 16);
//!
//! // Simulated 100x SpMV on an Infiniband-class machine.
//! let row = spmv_experiment(&a, &dist, Machine::cab(), 100);
//! assert!(row.sim_time > 0.0);
//! assert!(row.max_msgs <= 2 * 4 - 2); // the 2D bound: pr + pc - 2
//! ```
//!
//! Sub-crates are re-exported so downstream users need only this crate:
//! [`sf2d_graph`], [`sf2d_gen`], [`sf2d_partition`], [`sf2d_sim`],
//! [`sf2d_spmv`], [`sf2d_eigen`], [`sf2d_obs`].

pub mod experiment;
pub mod layout;
pub mod report;

pub use sf2d_eigen;
pub use sf2d_gen;
pub use sf2d_graph;
pub use sf2d_obs;
pub use sf2d_partition;
pub use sf2d_sim;
pub use sf2d_spgemm;
pub use sf2d_spmv;

pub use experiment::{
    eigen_experiment, spgemm_experiment, spmv_experiment, spmv_experiment_chaos, summa_experiment,
    ChaosSpmvRow, EigenRow, ServeRow, SpgemmRow, SpmvRow,
};
pub use layout::{LayoutBuilder, Method};

/// Everything most programs need.
pub mod prelude {
    pub use crate::experiment::{
        eigen_experiment, spgemm_experiment, spmv_experiment, spmv_experiment_chaos,
        summa_experiment, ChaosSpmvRow, EigenRow, ServeRow, SpgemmRow, SpmvRow,
    };
    pub use crate::layout::{LayoutBuilder, Method};
    pub use sf2d_eigen::{
        conjugate_gradient, krylov_schur_largest, krylov_schur_largest_resilient, lobpcg_largest,
        pagerank, CgConfig, KrylovSchurConfig, LobpcgConfig,
    };
    pub use sf2d_gen::{proxy_matrix, ProxyConfig, PAPER_MATRICES};
    pub use sf2d_graph::{CooMatrix, CsrMatrix, Graph};
    pub use sf2d_obs::{
        analyze, CriticalPathReport, MetricsRegistry, PhaseKind, TraceConfig, TraceEvent,
        TraceFormat,
    };
    pub use sf2d_partition::{grid_shape, LayoutMetrics, MatrixDist, NonzeroLayout};
    pub use sf2d_sim::{ChaosRuntime, CostLedger, Machine, RuntimeConfig};
    pub use sf2d_spgemm::{
        spgemm_chaos, spgemm_dist, spgemm_with, summa_chaos, summa_dist, summa_with, DistSpgemm,
        SpgemmWorkspace, SummaGrid, SummaSpgemm, SummaWorkspace,
    };
    pub use sf2d_spmv::{
        power_iterate, power_iterate_chaos, spmm, spmm_chaos_with, spmm_with, spmv, spmv_chaos,
        spmv_chaos_with, spmv_with, ChaosSpmvOp, DistCsrMatrix, DistMultiVector, DistVector,
        LinearOperator, MigrationPlan, NormalizedLaplacianOp, PlainSpmvOp, SpmvWorkspace,
    };
}
