//! `sf2d` — command-line front end for the library.
//!
//! ```text
//! sf2d stats     <matrix.mtx>
//! sf2d partition <matrix.mtx> --parts 64 [--method gp|hp|gp-mc] [--out part.txt]
//! sf2d spmv      <matrix.mtx> --procs 64 [--method 2D-GP] [--iters 100] [--machine cab|hopper]
//! sf2d eigen     <matrix.mtx> --procs 64 [--method 2D-GP] [--nev 10] [--tol 1e-3]
//! sf2d generate  rmat|bter|pref --scale 14 --out graph.mtx [--seed 42]
//! sf2d convert   <in.(mtx|csr|edges|graph)> <out.(mtx|csr|edges|graph)>
//! sf2d diagnose  <matrix> --procs 64 [--method 2D-GP] — per-phase straggler analysis
//! ```
//!
//! Matrices are Matrix Market files (`.mtx`), SNAP edge lists (`.txt` /
//! `.edges`), or the fast binary format (`.csr`); unsymmetric inputs are
//! symmetrized as `A + Aᵀ`, exactly like the paper's preprocessing.

use std::path::Path;
use std::process::ExitCode;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{bter, preferential_attachment, rmat, BterConfig, RmatConfig};
use sf2d_core::sf2d_graph::io::{
    read_binary_csr, read_edge_list, read_matrix_market, write_matrix_market,
};
use sf2d_core::sf2d_graph::stats::{powerlaw_exponent_mle, DegreeStats};
use sf2d_core::sf2d_partition::gp::partition_graph_multiconstraint;
use sf2d_core::sf2d_partition::{
    partition_graph, partition_hypergraph_matrix, GpConfig, HgConfig, Partition,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("usage: sf2d <stats|partition|spmv|eigen|generate> ...".into());
    };
    match cmd.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "partition" => cmd_partition(&args[1..]),
        "spmv" => cmd_spmv(&args[1..]),
        "eigen" => cmd_eigen(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "diagnose" => cmd_diagnose(&args[1..]),
        other => Err(format!("unknown command {other}")),
    }
}

/// Parsed `--key value` flags.
type Flags = Vec<(String, String)>;

/// Tiny flag parser: positional args plus `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let val = args
                .get(i + 1)
                .ok_or_else(|| format!("missing value for --{key}"))?;
            flags.push((key.to_string(), val.clone()));
            i += 2;
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &'a [(String, String)], key: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn parse_or<T: std::str::FromStr>(
    flags: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(flags, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
    }
}

/// Loads a matrix by extension and symmetrizes if needed.
fn load(path: &str) -> Result<CsrMatrix, String> {
    let p = Path::new(path);
    let f = std::fs::File::open(p).map_err(|e| format!("open {path}: {e}"))?;
    let reader = std::io::BufReader::new(f);
    let raw = match p.extension().and_then(|e| e.to_str()) {
        Some("mtx") => read_matrix_market(reader).map_err(|e| e.to_string())?,
        Some("csr") | Some("bin") => read_binary_csr(reader).map_err(|e| e.to_string())?,
        _ => read_edge_list(reader).map_err(|e| e.to_string())?,
    };
    if raw.nrows() != raw.ncols() {
        return Err(format!(
            "matrix must be square, got {}x{}",
            raw.nrows(),
            raw.ncols()
        ));
    }
    if raw.is_structurally_symmetric() {
        Ok(raw)
    } else {
        eprintln!("note: symmetrizing as A + A^T (the paper's preprocessing)");
        raw.plus_transpose().map_err(|e| e.to_string())
    }
}

fn machine_from(flags: &[(String, String)]) -> Result<Machine, String> {
    match flag(flags, "machine").unwrap_or("cab") {
        "cab" => Ok(Machine::cab()),
        "hopper" => Ok(Machine::hopper()),
        other => Err(format!("unknown machine {other} (cab|hopper)")),
    }
}

/// Resolves the layout: a precomputed partition file (`--part-file`, the
/// paper's §5.1 reuse workflow — `p` then comes from the file) or a fresh
/// build via the LayoutBuilder.
fn resolve_dist(
    a: &CsrMatrix,
    flags: &[(String, String)],
    method: Method,
    p: usize,
    seed: u64,
) -> Result<MatrixDist, String> {
    if let Some(pf) = flag(flags, "part-file") {
        let f = std::fs::File::open(pf).map_err(|e| format!("open {pf}: {e}"))?;
        let part = Partition::read(std::io::BufReader::new(f)).map_err(|e| e.to_string())?;
        if part.len() != a.nrows() {
            return Err(format!(
                "partition covers {} vertices, matrix has {}",
                part.len(),
                a.nrows()
            ));
        }
        let (pr, pc) = grid_shape(part.k);
        Ok(if method.is_2d() {
            MatrixDist::cartesian_2d(&part, pr, pc, false)
        } else {
            MatrixDist::from_partition_1d(&part)
        })
    } else {
        let mut builder = LayoutBuilder::new(a, seed);
        Ok(builder.dist(method, p))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _) = parse_flags(args)?;
    let path = pos.first().ok_or("usage: sf2d stats <matrix>")?;
    let a = load(path)?;
    let s = DegreeStats::of(&a);
    println!("rows:          {}", s.nrows);
    println!("nonzeros:      {}", s.nnz);
    println!("avg nnz/row:   {:.2}", s.avg_row_nnz);
    println!("max nnz/row:   {}", s.max_row_nnz);
    println!("skew (max/avg):{:.1}", s.skew);
    println!("empty rows:    {}", s.empty_rows);
    match powerlaw_exponent_mle(&a, 4) {
        Some(g) => println!("power-law γ̂:  {g:.2} (MLE, d >= 4)"),
        None => println!("power-law γ̂:  n/a (too few high-degree rows)"),
    }
    let cc = sf2d_core::sf2d_graph::algorithms::connected_components(&a).1;
    println!("components:    {cc}");
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos
        .first()
        .ok_or("usage: sf2d partition <matrix> --parts K")?;
    let k: usize = parse_or(&flags, "parts", 16)?;
    let seed: u64 = parse_or(&flags, "seed", 0)?;
    let a = load(path)?;
    let part = match flag(&flags, "method").unwrap_or("gp") {
        "gp" => {
            let g = Graph::from_symmetric_matrix(&a);
            partition_graph(
                &g,
                k,
                &GpConfig {
                    seed,
                    ..GpConfig::default()
                },
            )
        }
        "gp-mc" => {
            let g = Graph::from_symmetric_matrix(&a);
            partition_graph_multiconstraint(
                &g,
                k,
                &GpConfig {
                    seed,
                    ..GpConfig::default()
                },
            )
        }
        "hp" => partition_hypergraph_matrix(
            &a,
            k,
            &HgConfig {
                seed,
                ..HgConfig::default()
            },
        ),
        other => return Err(format!("unknown partitioner {other} (gp|hp|gp-mc)")),
    };
    let g = Graph::from_symmetric_matrix(&a);
    eprintln!(
        "k={k}: edge cut {}, comm volume {}, nnz imbalance {:.3}",
        part.edge_cut(&g),
        part.comm_volume(&g),
        part.imbalance(&g.vwgt)
    );
    let text: String = part
        .part
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    match flag(&flags, "out") {
        Some(out) => std::fs::write(out, text).map_err(|e| e.to_string())?,
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_spmv(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("usage: sf2d spmv <matrix> --procs P")?;
    let p: usize = parse_or(&flags, "procs", 64)?;
    let iters: usize = parse_or(&flags, "iters", 100)?;
    let method: Method = parse_or(&flags, "method", Method::TwoDGp)?;
    let machine = machine_from(&flags)?;
    let a = load(path)?;
    let seed: u64 = parse_or(&flags, "seed", 0)?;
    let dist = resolve_dist(&a, &flags, method, p, seed)?;
    let row = spmv_experiment(&a, &dist, machine, iters);
    println!("method:        {}", method.name());
    println!("ranks:         {}", row.p);
    println!("sim time:      {:.6} s for {iters} SpMV", row.sim_time);
    println!("max msgs:      {}", row.max_msgs);
    println!("total volume:  {} doubles", row.total_cv);
    println!("nnz imbalance: {:.3}", row.nnz_imbalance);
    println!("vec imbalance: {:.3}", row.vec_imbalance);
    Ok(())
}

fn cmd_eigen(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("usage: sf2d eigen <matrix> --nev N")?;
    let p: usize = parse_or(&flags, "procs", 64)?;
    let nev: usize = parse_or(&flags, "nev", 10)?;
    let tol: f64 = parse_or(&flags, "tol", 1e-3)?;
    let method: Method = parse_or(&flags, "method", Method::TwoDGp)?;
    let machine = machine_from(&flags)?;
    let a = load(path)?;
    let seed: u64 = parse_or(&flags, "seed", 0)?;
    let dist = resolve_dist(&a, &flags, method, p, seed)?;
    let cfg = KrylovSchurConfig {
        nev,
        max_basis: (4 * nev).max(nev + 10),
        tol,
        max_restarts: 500,
        seed,
    };
    let row = eigen_experiment(&a, &dist, machine, &cfg, &[cfg.seed]);
    println!("method:      {}", method.name());
    println!(
        "solve time:  {:.6} s (simulated, {} ranks)",
        row.solve_time, row.p
    );
    println!("spmv time:   {:.6} s", row.spmv_time);
    println!("op applies:  {}", row.op_applies);
    println!("converged:   {}", row.converged_frac == 1.0);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let family = pos
        .first()
        .ok_or("usage: sf2d generate <rmat|bter|pref> --out F")?;
    let seed: u64 = parse_or(&flags, "seed", 42)?;
    let a = match family.as_str() {
        "rmat" => {
            let scale: u32 = parse_or(&flags, "scale", 14)?;
            let ef: usize = parse_or(&flags, "edge-factor", 16)?;
            rmat(
                &RmatConfig {
                    edge_factor: ef,
                    ..RmatConfig::graph500(scale)
                },
                seed,
            )
        }
        "bter" => {
            let n: usize = parse_or(&flags, "n", 10_000)?;
            let dmax: usize = parse_or(&flags, "dmax", 1_000)?;
            bter(&BterConfig::paper(n, dmax), seed)
        }
        "pref" => {
            let n: usize = parse_or(&flags, "n", 10_000)?;
            let m: usize = parse_or(&flags, "m", 4)?;
            preferential_attachment(n, m, seed)
        }
        other => return Err(format!("unknown generator {other}")),
    };
    let out = flag(&flags, "out").ok_or("--out <file.mtx> required")?;
    let f = std::fs::File::create(out).map_err(|e| e.to_string())?;
    write_matrix_market(&a, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
    eprintln!("wrote {}: {} rows, {} nonzeros", out, a.nrows(), a.nnz());
    Ok(())
}

/// Converts between the supported matrix/graph formats by extension:
/// `.mtx` (Matrix Market), `.csr`/`.bin` (fast binary), `.graph` (METIS),
/// anything else = SNAP edge list.
fn cmd_convert(args: &[String]) -> Result<(), String> {
    let (pos, _) = parse_flags(args)?;
    let [input, output] = pos.as_slice() else {
        return Err("usage: sf2d convert <in> <out>".into());
    };
    // METIS input carries vertex weights through a Graph; everything else
    // goes through the raw matrix.
    let a = if input.ends_with(".graph") {
        let f = std::fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
        sf2d_core::sf2d_graph::io::read_metis(std::io::BufReader::new(f))
            .map_err(|e| e.to_string())?
            .adjacency()
            .clone()
    } else {
        load(input)?
    };
    let f = std::fs::File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    let w = std::io::BufWriter::new(f);
    if output.ends_with(".mtx") {
        write_matrix_market(&a, w).map_err(|e| e.to_string())?;
    } else if output.ends_with(".csr") || output.ends_with(".bin") {
        sf2d_core::sf2d_graph::io::write_binary_csr(&a, w).map_err(|e| e.to_string())?;
    } else if output.ends_with(".graph") {
        let g = Graph::from_symmetric_matrix(&a);
        sf2d_core::sf2d_graph::io::write_metis(&g, w).map_err(|e| e.to_string())?;
    } else {
        sf2d_core::sf2d_graph::io::write_edge_list(&a, w).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote {output}: {} rows, {} nonzeros", a.nrows(), a.nnz());
    Ok(())
}

/// Per-phase straggler analysis of one layout (see `sf2d_spmv::diagnose`).
fn cmd_diagnose(args: &[String]) -> Result<(), String> {
    use sf2d_core::sf2d_spmv::{diagnose_spmv, DistCsrMatrix};
    let (pos, flags) = parse_flags(args)?;
    let path = pos
        .first()
        .ok_or("usage: sf2d diagnose <matrix> --procs P")?;
    let p: usize = parse_or(&flags, "procs", 64)?;
    let method: Method = parse_or(&flags, "method", Method::TwoDGp)?;
    let machine = machine_from(&flags)?;
    let a = load(path)?;
    let seed: u64 = parse_or(&flags, "seed", 0)?;
    let dist = resolve_dist(&a, &flags, method, p, seed)?;
    let dm = DistCsrMatrix::from_global(&a, &dist);
    println!(
        "layout: {} on {} ranks ({} machine model)",
        method.name(),
        dm.nprocs(),
        machine.name
    );
    print!(
        "{}",
        sf2d_core::sf2d_spmv::diagnose::render(&diagnose_spmv(&dm, &machine))
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let (pos, flags) =
            parse_flags(&s(&["file.mtx", "--parts", "64", "--method", "hp"])).unwrap();
        assert_eq!(pos, vec!["file.mtx"]);
        assert_eq!(flag(&flags, "parts"), Some("64"));
        assert_eq!(flag(&flags, "method"), Some("hp"));
        assert_eq!(flag(&flags, "nope"), None);
        let k: usize = parse_or(&flags, "parts", 1).unwrap();
        assert_eq!(k, 64);
    }

    #[test]
    fn missing_value_errors() {
        assert!(parse_flags(&s(&["--parts"])).is_err());
    }

    #[test]
    fn method_from_str_in_cli() {
        let m: Method = "2d-gp".parse().unwrap();
        assert_eq!(m, Method::TwoDGp);
        assert!("3d-gp".parse::<Method>().is_err());
    }

    #[test]
    fn end_to_end_generate_stats_partition_spmv() {
        let dir = std::env::temp_dir().join("sf2d_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let part = dir.join("part.txt");
        run(&s(&[
            "generate",
            "rmat",
            "--scale",
            "8",
            "--edge-factor",
            "4",
            "--out",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["stats", mtx.to_str().unwrap()])).unwrap();
        run(&s(&[
            "partition",
            mtx.to_str().unwrap(),
            "--parts",
            "4",
            "--out",
            part.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&part).unwrap();
        assert_eq!(text.lines().count(), 256);
        run(&s(&[
            "spmv",
            mtx.to_str().unwrap(),
            "--procs",
            "8",
            "--iters",
            "10",
        ]))
        .unwrap();
        run(&s(&[
            "eigen",
            mtx.to_str().unwrap(),
            "--procs",
            "4",
            "--nev",
            "3",
            "--tol",
            "1e-2",
        ]))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn part_file_reuse_workflow() {
        let dir = std::env::temp_dir().join("sf2d_cli_partfile");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        let part = dir.join("part.txt");
        run(&s(&[
            "generate",
            "rmat",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--out",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "partition",
            mtx.to_str().unwrap(),
            "--parts",
            "6",
            "--out",
            part.to_str().unwrap(),
        ]))
        .unwrap();
        // Reuse the same partition for both a 1D and a 2D run.
        run(&s(&[
            "spmv",
            mtx.to_str().unwrap(),
            "--method",
            "1d-gp",
            "--part-file",
            part.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "spmv",
            mtx.to_str().unwrap(),
            "--method",
            "2d-gp",
            "--part-file",
            part.to_str().unwrap(),
        ]))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn convert_roundtrips_across_formats() {
        let dir = std::env::temp_dir().join("sf2d_cli_convert");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        run(&s(&[
            "generate",
            "rmat",
            "--scale",
            "6",
            "--edge-factor",
            "3",
            "--out",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        // mtx -> csr -> metis .graph -> mtx: exact round trip.
        let csr = dir.join("g.csr");
        let metis = dir.join("g.graph");
        let back = dir.join("back.mtx");
        for (i, o) in [(&mtx, &csr), (&csr, &metis), (&metis, &back)] {
            run(&s(&["convert", i.to_str().unwrap(), o.to_str().unwrap()])).unwrap();
        }
        let a = load(mtx.to_str().unwrap()).unwrap();
        let b = load(back.to_str().unwrap()).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        // The edge-list leg drops isolated vertices (the format cannot
        // represent them) but preserves every edge.
        let edges = dir.join("g.edges");
        run(&s(&[
            "convert",
            mtx.to_str().unwrap(),
            edges.to_str().unwrap(),
        ]))
        .unwrap();
        let e = load(edges.to_str().unwrap()).unwrap();
        assert_eq!(e.nnz(), a.nnz());
        assert!(e.nrows() <= a.nrows());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diagnose_runs() {
        let dir = std::env::temp_dir().join("sf2d_cli_diag");
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        run(&s(&[
            "generate",
            "rmat",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--out",
            mtx.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["diagnose", mtx.to_str().unwrap(), "--procs", "8"])).unwrap();
        run(&s(&[
            "diagnose",
            mtx.to_str().unwrap(),
            "--procs",
            "8",
            "--method",
            "1d-block",
        ]))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&[])).is_err());
    }
}
