//! Request-level serving metrics: how well the engine amortizes setup.
//!
//! Everything here is deterministic given the request stream — counters
//! and the batch-size distribution, no wall clocks — so the benchmark can
//! gate on these values across machines while latency quantiles stay
//! machine-local.

use sf2d_obs::{Histogram, MetricsRegistry};

/// Counters and distributions maintained by the [`Engine`](crate::Engine)
/// across its lifetime.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Queries answered (one column of some SpMM batch each).
    pub queries: u64,
    /// SpMM batches executed — `queries / batches` is the gather
    /// amortization won by coalescing.
    pub batches: u64,
    /// Batches served by an already-compiled plan.
    pub cache_hits: u64,
    /// Plan compiles (including the warm-start compile at construction
    /// and every post-mutation recompile).
    pub cache_misses: u64,
    /// Epoch advances: one per effective mutation, plus one per
    /// repartition (a repartition starts a new plan generation).
    pub epoch_bumps: u64,
    /// Layout rebuilds (drift-triggered or forced).
    pub repartitions: u64,
    /// Chaos-mode batches replayed after a mid-batch crash.
    pub crash_replays: u64,
    /// Largest queue depth observed at submit time.
    pub queue_depth_peak: u64,
    /// Distribution of executed batch widths.
    pub batch_sizes: Histogram,
}

impl EngineMetrics {
    /// Fraction of plan lookups answered from the cache, in `[0, 1]`.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean queries per executed batch — the factor by which coalescing
    /// divides the expand-gather count (1.0 = no amortization).
    pub fn gather_amortization_ratio(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }

    /// Publishes the counters, the current queue depth, and the
    /// batch-size distribution into a [`MetricsRegistry`] under
    /// `serve_*` names (all on rank 0 — these are frontend-level, not
    /// per-rank, quantities).
    pub fn publish(&self, reg: &mut MetricsRegistry, queue_depth: usize) {
        reg.add("serve_queries", 0, self.queries);
        reg.add("serve_batches", 0, self.batches);
        reg.add("serve_cache_hits", 0, self.cache_hits);
        reg.add("serve_cache_misses", 0, self.cache_misses);
        reg.add("serve_epoch_bumps", 0, self.epoch_bumps);
        reg.add("serve_repartitions", 0, self.repartitions);
        reg.add("serve_crash_replays", 0, self.crash_replays);
        reg.set_gauge("serve_queue_depth", 0, queue_depth as f64);
        reg.set_gauge("serve_queue_depth_peak", 0, self.queue_depth_peak as f64);
        reg.set_gauge("serve_cache_hit_ratio", 0, self.cache_hit_ratio());
        reg.merge_histogram("serve_batch_size", &self.batch_sizes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_and_typical_cases() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.cache_hit_ratio(), 0.0);
        assert_eq!(m.gather_amortization_ratio(), 1.0);
        m.queries = 12;
        m.batches = 3;
        m.cache_hits = 3;
        m.cache_misses = 1;
        assert_eq!(m.cache_hit_ratio(), 0.75);
        assert_eq!(m.gather_amortization_ratio(), 4.0);
    }

    #[test]
    fn publish_lands_in_the_registry() {
        let mut m = EngineMetrics {
            queries: 5,
            batches: 2,
            ..EngineMetrics::default()
        };
        m.batch_sizes.observe(3);
        m.batch_sizes.observe(2);
        let mut reg = MetricsRegistry::default();
        m.publish(&mut reg, 4);
        assert_eq!(reg.counter("serve_queries", 0), 5);
        assert_eq!(reg.gauge("serve_queue_depth", 0), Some(4.0));
        let h = reg.histogram("serve_batch_size").expect("histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5);
    }
}
