//! The resident serving engine.
//!
//! [`Engine`] owns one dynamic symmetric matrix, its current layout, and
//! every piece of compiled/pooled state the one-shot binaries rebuild per
//! run: the [`DistCsrMatrix`] (whose `CompiledSpmv` plans are the
//! expensive part), a budgetable [`SpmvWorkspace`], and the
//! [`SpgemmWorkspace`]/[`SummaWorkspace`] pair for repeated multiplies.
//!
//! ## Epochs and the plan cache
//!
//! The engine state is versioned by a monotonic **epoch**: every
//! effective edge insert/delete bumps it, and a repartition (drift-
//! triggered or forced) bumps it again — so a compiled plan is immutable
//! for its whole lifetime and the cache key `(epoch, method, p)` can
//! never serve a stale answer. Plans compile lazily at first use per
//! epoch (plus eagerly at construction and at repartition, so a resident
//! engine is warm) and the swap to a new plan is a single `Arc` store.
//!
//! ## Batching
//!
//! [`Engine::submit`] only queues; [`Engine::flush`] coalesces the queue
//! into SpMM batches of at most `max_batch` columns — one expand gather
//! per batch instead of one per query (PR 1 made spmm a single strided
//! gather; batching is the multiplier). Per-column results are bitwise
//! equal to a one-shot [`sf2d_spmv::spmv`] of that query, because SpMM
//! *is* column-wise SpMV down to the per-element fold order.
//!
//! ## Mutations are epoch barriers
//!
//! A queued query always answers against the engine state at the moment
//! it executes. To keep that moment well-defined, every mutating call
//! first drains the pending queue against the *current* epoch (replies
//! park in an internal buffer until the next `flush`), then applies the
//! change. The differential and property suites in
//! `tests/tests/serve_{differential,property}.rs` pin all of this
//! bitwise against from-scratch oracles.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use sf2d_core::{LayoutBuilder, Method};
use sf2d_graph::{CooMatrix, CsrMatrix};
use sf2d_par::Pool;
use sf2d_partition::MatrixDist;
use sf2d_sim::{ChaosRuntime, CostLedger, Machine, Phase, PhaseCost};
use sf2d_spgemm::{
    spgemm_with, summa_with, DistSpgemm, SpgemmWorkspace, SummaSpgemm, SummaWorkspace,
};
use sf2d_spmv::{spmm_chaos_with, spmm_with, DistCsrMatrix, DistMultiVector, SpmvWorkspace};

use crate::metrics::EngineMetrics;

/// Compiled plans retained across epochs. Old epochs can never be
/// queried again (the epoch counter is monotonic), so a small window is
/// enough to absorb mutation bursts without unbounded growth.
const PLAN_CACHE_CAP: usize = 4;

/// Engine construction knobs. `method`/`p`/`seed` fix the layout
/// deterministically — two engines with equal config and equal mutation
/// history hold bitwise-equal state.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Partitioning method for the resident layout.
    pub method: Method,
    /// Rank count.
    pub p: usize,
    /// Seed for every layout decision (random layouts, gp tie-breaks).
    pub seed: u64,
    /// OS threads for kernels, plan compiles (via an `sf2d-par` pool),
    /// and chaos routing. Bit-identical for any value.
    pub threads: usize,
    /// Maximum SpMM width a flush coalesces into one batch.
    pub max_batch: usize,
    /// Repartition when `max/avg` per-rank nonzeros exceeds this.
    pub drift_threshold: f64,
    /// Whether drift may trigger a repartition on its own (only
    /// meaningful for partitioned methods — block/random layouts don't
    /// depend on the matrix, so re-deriving them cannot fix drift).
    pub auto_repartition: bool,
    /// Optional live-memory budget for the SpMM workspace
    /// ([`SpmvWorkspace::with_budget`] semantics: wave-scheduled,
    /// bit-identical).
    pub scratch_budget: Option<u64>,
    /// Cost model for the engine's ledger.
    pub machine: Machine,
}

impl EngineConfig {
    /// Defaults: seed 0, single-threaded, batches of 16, drift threshold
    /// 1.5, auto-repartition on, unbudgeted, cab cost model.
    pub fn new(method: Method, p: usize) -> EngineConfig {
        EngineConfig {
            method,
            p,
            seed: 0,
            threads: 1,
            max_batch: 16,
            drift_threshold: 1.5,
            auto_repartition: true,
            scratch_budget: None,
            machine: Machine::cab(),
        }
    }

    /// Sets the layout seed.
    pub fn with_seed(mut self, seed: u64) -> EngineConfig {
        self.seed = seed;
        self
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }

    /// Sets the maximum batch width.
    pub fn with_max_batch(mut self, max_batch: usize) -> EngineConfig {
        self.max_batch = max_batch;
        self
    }

    /// Sets the drift threshold.
    pub fn with_drift_threshold(mut self, t: f64) -> EngineConfig {
        self.drift_threshold = t;
        self
    }

    /// Enables/disables drift-triggered repartitioning.
    pub fn with_auto_repartition(mut self, on: bool) -> EngineConfig {
        self.auto_repartition = on;
        self
    }

    /// Sets the workspace live-memory budget.
    pub fn with_budget(mut self, bytes: u64) -> EngineConfig {
        self.scratch_budget = Some(bytes);
        self
    }
}

/// One answered query: the submitted id and the global result vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// Ticket returned by [`Engine::submit`].
    pub id: u64,
    /// `y = A x` assembled to global indexing.
    pub y: Vec<f64>,
}

/// One immutable plan generation: the swap unit. Holding the `Arc` keeps
/// a batch's matrix alive even if the engine moves on mid-flight.
struct EnginePlan {
    epoch: u64,
    matrix: DistCsrMatrix,
}

type PlanKey = (u64, Method, usize);

/// A resident, plan-cached, batch-coalescing SpMM frontend over one
/// dynamic graph. See the [module docs](self) for the contract.
pub struct Engine {
    cfg: EngineConfig,
    n: usize,
    /// Both orientations of every nonzero, row-major ordered — the
    /// canonical dynamic state. `BTreeMap` iteration order makes the
    /// CSR rebuild deterministic.
    edges: BTreeMap<(u32, u32), f64>,
    epoch: u64,
    /// Current layout; replaced (and the epoch bumped) on repartition.
    dist: Arc<MatrixDist>,
    /// The plan serving batches — swapped by a single `Arc` store.
    active: Arc<EnginePlan>,
    cache: HashMap<PlanKey, Arc<EnginePlan>>,
    pool: Option<Pool>,
    ws: SpmvWorkspace,
    spgemm_ws: SpgemmWorkspace,
    summa_ws: SummaWorkspace,
    /// Pending `(id, x)` queries, submission-ordered.
    queue: Vec<(u64, Vec<f64>)>,
    /// Computed replies awaiting the next `flush`.
    ready: Vec<ServeReply>,
    next_id: u64,
    /// Crash-epoch counter for chaos-mode batches.
    chaos_batches: u64,
    /// Per-rank nonzero counts under `dist`, maintained in O(1) per
    /// mutation — the drift signal.
    nnz_per_rank: Vec<u64>,
    /// Simulated cost of everything the engine has executed.
    pub ledger: CostLedger,
    /// Request-level counters and distributions.
    pub metrics: EngineMetrics,
}

impl Engine {
    /// Builds a warm engine: the layout is derived from `(a, seed)` via
    /// [`LayoutBuilder`] and the epoch-0 plan is compiled eagerly (the
    /// first cache miss), so the first query hits a resident plan.
    ///
    /// # Panics
    /// Panics if `a` is not square and structurally symmetric — the
    /// engine maintains symmetry under mutation, so it requires it at
    /// the start (symmetrize directed inputs first).
    pub fn new(a: &CsrMatrix, cfg: EngineConfig) -> Engine {
        assert!(cfg.p >= 1, "need at least one rank");
        assert!(cfg.max_batch >= 1, "need a positive batch width");
        assert_eq!(a.nrows(), a.ncols(), "serving requires a square matrix");
        assert!(
            a.is_structurally_symmetric(),
            "the engine maintains symmetric dynamic graphs; symmetrize first"
        );
        let n = a.nrows();
        let mut edges = BTreeMap::new();
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (j, v) in cols.iter().zip(vals) {
                edges.insert((i as u32, *j), *v);
            }
        }
        let dist = Arc::new(Self::build_dist(a, &cfg));
        let nnz_per_rank = Self::count_nnz(&edges, &dist);
        let pool = (cfg.threads > 1).then(|| Pool::new(cfg.threads));
        let matrix = DistCsrMatrix::from_global_with(a, &*dist, cfg.threads, pool.as_ref());
        let active = Arc::new(EnginePlan { epoch: 0, matrix });
        let mut cache = HashMap::new();
        cache.insert((0, cfg.method, cfg.p), Arc::clone(&active));
        let mut ws = SpmvWorkspace::with_threads(cfg.threads);
        ws.set_budget(cfg.scratch_budget);
        let metrics = EngineMetrics {
            cache_misses: 1, // the warm-start compile
            ..EngineMetrics::default()
        };
        let ledger = CostLedger::new(cfg.machine);
        Engine {
            n,
            edges,
            epoch: 0,
            dist,
            active,
            cache,
            pool,
            ws,
            spgemm_ws: SpgemmWorkspace::with_threads(cfg.threads),
            summa_ws: SummaWorkspace::with_threads(cfg.threads),
            queue: Vec::new(),
            ready: Vec::new(),
            next_id: 0,
            chaos_batches: 0,
            nnz_per_rank,
            ledger,
            metrics,
            cfg,
        }
    }

    fn build_dist(a: &CsrMatrix, cfg: &EngineConfig) -> MatrixDist {
        LayoutBuilder::new(a, cfg.seed).dist(cfg.method, cfg.p)
    }

    fn count_nnz(edges: &BTreeMap<(u32, u32), f64>, dist: &MatrixDist) -> Vec<u64> {
        let mut counts = vec![0u64; dist.nprocs()];
        for &(i, j) in edges.keys() {
            counts[dist.nonzero_owner(i, j) as usize] += 1;
        }
        counts
    }

    // -- queries ----------------------------------------------------------

    /// Queues `x` for the next flush and returns its reply ticket.
    ///
    /// # Panics
    /// Panics if `x` is not an `n`-vector.
    pub fn submit(&mut self, x: Vec<f64>) -> u64 {
        assert_eq!(x.len(), self.n, "query dimension mismatch");
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push((id, x));
        let depth = self.queue.len() as u64;
        self.metrics.queue_depth_peak = self.metrics.queue_depth_peak.max(depth);
        id
    }

    /// Coalesces the pending queue into SpMM batches of at most
    /// `max_batch` columns, executes them against the current epoch's
    /// plan, and returns every reply computed since the last flush
    /// (including replies parked by mutation barriers), in execution
    /// order.
    pub fn flush(&mut self) -> Vec<ServeReply> {
        self.drain_queue(None);
        std::mem::take(&mut self.ready)
    }

    /// [`Engine::flush`] with every batch's expand/fold exchange routed
    /// through the chaos wire, and crash-restart at batch granularity:
    /// when `rt` declares a crash for a batch (crash epochs number the
    /// chaos-mode batches 0, 1, …), the attempt's results are discarded
    /// before commit, a `Recovery` superstep bills each rank's re-read
    /// of its slice of the retained inputs, and the batch replays. The
    /// replies are bitwise equal to a fault-free flush in all cases.
    pub fn flush_chaos(&mut self, rt: &mut ChaosRuntime) -> Vec<ServeReply> {
        self.drain_queue(Some(rt));
        std::mem::take(&mut self.ready)
    }

    /// One-shot convenience for an idle engine: submit + flush + return
    /// the single answer.
    ///
    /// # Panics
    /// Panics (debug) if queries are already pending or replies unread —
    /// use [`Engine::submit`]/[`Engine::flush`] for streams.
    pub fn query(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert!(
            self.queue.is_empty() && self.ready.is_empty(),
            "query() on a busy engine would discard pending replies"
        );
        let id = self.submit(x.to_vec());
        let replies = self.flush();
        replies
            .into_iter()
            .find(|r| r.id == id)
            .expect("flush answers every queued query")
            .y
    }

    fn drain_queue(&mut self, mut chaos: Option<&mut ChaosRuntime>) {
        while !self.queue.is_empty() {
            let take = self.queue.len().min(self.cfg.max_batch);
            let batch: Vec<(u64, Vec<f64>)> = self.queue.drain(..take).collect();
            self.run_batch(batch, chaos.as_deref_mut());
        }
    }

    fn run_batch(&mut self, batch: Vec<(u64, Vec<f64>)>, chaos: Option<&mut ChaosRuntime>) {
        let plan = self.resolve_plan();
        let m = batch.len();
        self.metrics.batches += 1;
        self.metrics.queries += m as u64;
        self.metrics.batch_sizes.observe(m as u64);
        let vmap = Arc::clone(&plan.matrix.vmap);
        let (ids, cols): (Vec<u64>, Vec<Vec<f64>>) = batch.into_iter().unzip();
        let x = DistMultiVector::from_columns(Arc::clone(&vmap), &cols);
        let mut y = DistMultiVector::zeros(Arc::clone(&vmap), m);
        match chaos {
            None => spmm_with(&plan.matrix, &x, &mut y, &mut self.ledger, &mut self.ws),
            Some(rt) => {
                let seq = self.chaos_batches;
                self.chaos_batches += 1;
                spmm_chaos_with(&plan.matrix, &x, &mut y, &mut self.ledger, &mut self.ws, rt);
                if rt.take_crash(seq) {
                    // The attempt died before committing: the queue entry
                    // is the checkpoint. Bill each rank's restore read of
                    // its slice of the m retained input columns, replay.
                    let restore: Vec<PhaseCost> = (0..plan.matrix.nprocs())
                        .map(|r| PhaseCost::comm(1, (8 * m * vmap.nlocal(r)) as u64))
                        .collect();
                    self.ledger.superstep(Phase::Recovery, &restore);
                    self.metrics.crash_replays += 1;
                    y = DistMultiVector::zeros(Arc::clone(&vmap), m);
                    spmm_chaos_with(&plan.matrix, &x, &mut y, &mut self.ledger, &mut self.ws, rt);
                }
            }
        }
        for (c, &id) in ids.iter().enumerate() {
            self.ready.push(ServeReply {
                id,
                y: y.col_to_global(c),
            });
        }
    }

    /// Resolves the current epoch's plan: cache hit, or compile-and-swap
    /// on a miss. The returned `Arc` pins the plan for the caller even
    /// across a concurrent-looking swap.
    fn resolve_plan(&mut self) -> Arc<EnginePlan> {
        let key = (self.epoch, self.cfg.method, self.cfg.p);
        if let Some(plan) = self.cache.get(&key) {
            self.metrics.cache_hits += 1;
            let plan = Arc::clone(plan);
            self.active = Arc::clone(&plan);
            return plan;
        }
        self.metrics.cache_misses += 1;
        let a = self.global_matrix();
        let matrix =
            DistCsrMatrix::from_global_with(&a, &*self.dist, self.cfg.threads, self.pool.as_ref());
        let plan = Arc::new(EnginePlan {
            epoch: self.epoch,
            matrix,
        });
        self.install(key, Arc::clone(&plan));
        plan
    }

    /// Publishes a new plan: cache insert, bounded eviction of dead
    /// epochs, then the atomic swap (one `Arc` store — in-flight batches
    /// holding the old `Arc` finish on their own plan).
    fn install(&mut self, key: PlanKey, plan: Arc<EnginePlan>) {
        self.cache.insert(key, Arc::clone(&plan));
        if self.cache.len() > PLAN_CACHE_CAP {
            let mut epochs: Vec<u64> = self.cache.keys().map(|k| k.0).collect();
            epochs.sort_unstable();
            let cutoff = epochs[epochs.len() - PLAN_CACHE_CAP];
            self.cache.retain(|k, _| k.0 >= cutoff);
        }
        self.active = plan;
    }

    // -- mutations --------------------------------------------------------

    /// Sets the weight of edge `(i, j)` — and `(j, i)`, keeping the
    /// graph symmetric — inserting it if absent. Returns whether the
    /// matrix changed (an identical re-insert is a no-op and does *not*
    /// bump the epoch). An effective change first drains pending queries
    /// against the pre-mutation epoch, then bumps the epoch; the new
    /// plan compiles lazily at the next batch.
    pub fn insert_edge(&mut self, i: u32, j: u32, w: f64) -> bool {
        self.check_vertex(i);
        self.check_vertex(j);
        let unchanged = self
            .edges
            .get(&(i, j))
            .is_some_and(|old| old.to_bits() == w.to_bits());
        if unchanged {
            return false;
        }
        self.drain_queue(None);
        for (u, v) in Self::orientations(i, j) {
            if self.edges.insert((u, v), w).is_none() {
                self.nnz_per_rank[self.dist.nonzero_owner(u, v) as usize] += 1;
            }
        }
        self.bump_epoch();
        self.maybe_repartition();
        true
    }

    /// Removes edge `(i, j)` (both orientations). Returns whether it
    /// existed. Same barrier/epoch semantics as [`Engine::insert_edge`].
    pub fn remove_edge(&mut self, i: u32, j: u32) -> bool {
        self.check_vertex(i);
        self.check_vertex(j);
        if !self.edges.contains_key(&(i, j)) {
            return false;
        }
        self.drain_queue(None);
        for (u, v) in Self::orientations(i, j) {
            if self.edges.remove(&(u, v)).is_some() {
                self.nnz_per_rank[self.dist.nonzero_owner(u, v) as usize] -= 1;
            }
        }
        self.bump_epoch();
        self.maybe_repartition();
        true
    }

    /// Forces a repartition now: drains pending queries, re-derives the
    /// layout from the current matrix (deterministically, from the
    /// configured seed), starts a new epoch, compiles the new
    /// generation's plan (on the pool when threaded — the "background"
    /// compile), and swaps it in atomically.
    pub fn repartition_now(&mut self) {
        self.drain_queue(None);
        let a = self.global_matrix();
        let dist = Arc::new(Self::build_dist(&a, &self.cfg));
        self.nnz_per_rank = Self::count_nnz(&self.edges, &dist);
        self.dist = dist;
        self.bump_epoch();
        self.metrics.repartitions += 1;
        self.metrics.cache_misses += 1;
        let matrix =
            DistCsrMatrix::from_global_with(&a, &*self.dist, self.cfg.threads, self.pool.as_ref());
        let key = (self.epoch, self.cfg.method, self.cfg.p);
        self.install(
            key,
            Arc::new(EnginePlan {
                epoch: self.epoch,
                matrix,
            }),
        );
    }

    fn orientations(i: u32, j: u32) -> Vec<(u32, u32)> {
        if i == j {
            vec![(i, j)]
        } else {
            vec![(i, j), (j, i)]
        }
    }

    fn check_vertex(&self, v: u32) {
        assert!(
            (v as usize) < self.n,
            "vertex {v} out of range (n = {})",
            self.n
        );
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.metrics.epoch_bumps += 1;
    }

    fn maybe_repartition(&mut self) {
        if self.cfg.auto_repartition
            && self.cfg.method.is_partitioned()
            && self.imbalance() > self.cfg.drift_threshold
        {
            self.repartition_now();
        }
    }

    // -- repeated multiplies ----------------------------------------------

    /// `C = A·Aᵀ` of the resident matrix through the cached plan and the
    /// pooled expand/fold [`SpgemmWorkspace`], billed to the engine
    /// ledger.
    pub fn multiply(&mut self) -> DistSpgemm {
        let plan = self.resolve_plan();
        let b = self.global_matrix().transpose();
        spgemm_with(&plan.matrix, &b, &mut self.ledger, &mut self.spgemm_ws)
    }

    /// `C = A·Aᵀ` via Sparse SUMMA through the pooled
    /// [`SummaWorkspace`].
    pub fn multiply_summa(&mut self) -> SummaSpgemm {
        let plan = self.resolve_plan();
        let b = self.global_matrix().transpose();
        summa_with(
            &plan.matrix,
            &self.dist,
            &b,
            &mut self.ledger,
            &mut self.summa_ws,
        )
    }

    // -- introspection ----------------------------------------------------

    /// Current epoch (0 at construction; bumped per effective mutation
    /// and per repartition).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The matrix generation currently serving batches.
    pub fn active(&self) -> &DistCsrMatrix {
        &self.active.matrix
    }

    /// Whether the active plan is stale (a mutation happened since it
    /// compiled; the next batch will miss and recompile).
    pub fn active_is_stale(&self) -> bool {
        self.active.epoch != self.epoch
    }

    /// The current layout.
    pub fn dist(&self) -> &MatrixDist {
        &self.dist
    }

    /// Max-over-avg per-rank nonzero counts under the current layout —
    /// the drift signal (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.nnz_per_rank.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.nnz_per_rank.len() as f64;
        let max = *self.nnz_per_rank.iter().max().unwrap() as f64;
        max / avg
    }

    /// Rebuilds the resident matrix to global CSR (deterministic:
    /// row-major edge order).
    pub fn global_matrix(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.n, self.n);
        for (&(i, j), &w) in &self.edges {
            coo.push(i, j, w);
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored nonzero count (both orientations).
    pub fn nnz(&self) -> usize {
        self.edges.len()
    }

    /// Whether edge `(i, j)` is present.
    pub fn has_edge(&self, i: u32, j: u32) -> bool {
        self.edges.contains_key(&(i, j))
    }

    /// Pending (unexecuted) query count.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Compiled plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// The construction config.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{rmat, RmatConfig};
    use sf2d_spmv::{spmv, DistVector};

    fn fixture() -> (CsrMatrix, Vec<Vec<f64>>) {
        let a = rmat(&RmatConfig::graph500(7), 19);
        let n = a.nrows();
        let queries: Vec<Vec<f64>> = (0..7)
            .map(|q| {
                (0..n)
                    .map(|i| ((i * (q + 2) + q) % 9) as f64 - 4.0)
                    .collect()
            })
            .collect();
        (a, queries)
    }

    fn oracle(a: &CsrMatrix, cfg: &EngineConfig, x: &[f64]) -> Vec<f64> {
        let dist = LayoutBuilder::new(a, cfg.seed).dist(cfg.method, cfg.p);
        let dm = DistCsrMatrix::from_global(a, &dist);
        let xd = DistVector::from_global(Arc::clone(&dm.vmap), x);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        spmv(&dm, &xd, &mut y, &mut CostLedger::new(Machine::cab()));
        y.to_global()
    }

    fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
        let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb, "{what}");
    }

    #[test]
    fn batched_answers_match_one_shot_spmv_bitwise() {
        let (a, queries) = fixture();
        let cfg = EngineConfig::new(Method::TwoDBlock, 6).with_max_batch(3);
        let mut engine = Engine::new(&a, cfg.clone());
        let ids: Vec<u64> = queries.iter().map(|q| engine.submit(q.clone())).collect();
        let replies = engine.flush();
        assert_eq!(replies.len(), queries.len());
        // 7 queries at max_batch 3 -> batches of 3, 3, 1.
        assert_eq!(engine.metrics.batches, 3);
        assert_eq!(engine.metrics.cache_misses, 1, "warm plan serves all");
        assert_eq!(engine.metrics.cache_hits, 3);
        for (reply, (id, q)) in replies.iter().zip(ids.iter().zip(&queries)) {
            assert_eq!(reply.id, *id, "submission order preserved");
            assert_bits_eq(&reply.y, &oracle(&a, &cfg, q), "batched vs one-shot");
        }
    }

    #[test]
    fn mutation_bumps_epoch_recompiles_and_stays_bitwise_correct() {
        let (a, queries) = fixture();
        let cfg = EngineConfig::new(Method::OneDRandom, 4)
            .with_max_batch(4)
            .with_auto_repartition(false);
        let mut engine = Engine::new(&a, cfg.clone());
        assert_bits_eq(
            &engine.query(&queries[0]),
            &oracle(&a, &cfg, &queries[0]),
            "pre-mutation",
        );
        assert_eq!(engine.epoch(), 0);

        // Pick an absent edge deterministically.
        let (mut i, mut j) = (0u32, 1u32);
        while engine.has_edge(i, j) {
            j += 1;
        }
        assert!(engine.insert_edge(i, j, 2.5));
        assert!(engine.has_edge(j, i), "symmetry is maintained");
        assert_eq!(engine.epoch(), 1);
        assert!(engine.active_is_stale());
        // Identical re-insert is a no-op.
        assert!(!engine.insert_edge(i, j, 2.5));
        assert_eq!(engine.epoch(), 1);

        let misses_before = engine.metrics.cache_misses;
        let got = engine.query(&queries[1]);
        assert_eq!(engine.metrics.cache_misses, misses_before + 1);
        assert!(!engine.active_is_stale());
        let mutated = engine.global_matrix();
        assert_bits_eq(&got, &oracle(&mutated, &cfg, &queries[1]), "post-insert");

        assert!(engine.remove_edge(i, j));
        assert!(!engine.remove_edge(i, j), "double delete is a no-op");
        assert_eq!(engine.epoch(), 2);
        // Removing the only mutation restores the seed matrix, but the
        // epoch is monotonic: a fresh compile, not a stale hit.
        let got = engine.query(&queries[2]);
        assert_bits_eq(&got, &oracle(&a, &cfg, &queries[2]), "post-delete");
        i = 0;
        j = 0;
        let _ = (i, j);
    }

    #[test]
    fn mutation_drains_pending_queries_against_the_old_epoch() {
        let (a, queries) = fixture();
        let cfg = EngineConfig::new(Method::TwoDRandom, 4).with_max_batch(16);
        let mut engine = Engine::new(&a, cfg.clone());
        let id0 = engine.submit(queries[0].clone());
        // The barrier executes the queued query against the pre-mutation
        // matrix ...
        let (mut i, mut j) = (0u32, 1u32);
        while engine.has_edge(i, j) {
            j += 1;
        }
        assert!(engine.insert_edge(i, j, -1.0));
        let id1 = engine.submit(queries[1].clone());
        let replies = engine.flush();
        assert_eq!(replies.len(), 2);
        assert_bits_eq(
            &replies[0].y,
            &oracle(&a, &cfg, &queries[0]),
            "pre-mutation epoch",
        );
        assert_eq!(replies[0].id, id0);
        // ... while the later submit sees the mutated matrix.
        let mutated = engine.global_matrix();
        assert_bits_eq(
            &replies[1].y,
            &oracle(&mutated, &cfg, &queries[1]),
            "post-mutation epoch",
        );
        assert_eq!(replies[1].id, id1);
        i = 0;
        let _ = (i, j);
    }

    #[test]
    fn drift_triggers_auto_repartition_and_forced_repartition_works() {
        let (a, queries) = fixture();
        // Threshold 1.0 means any imbalance at all repartitions — every
        // effective mutation will trip it on a gp layout.
        let cfg = EngineConfig::new(Method::OneDGp, 4)
            .with_max_batch(2)
            .with_drift_threshold(1.0);
        let mut engine = Engine::new(&a, cfg.clone());
        assert!(engine.imbalance() >= 1.0);
        let (i, mut j) = (1u32, 2u32);
        while engine.has_edge(i, j) {
            j += 1;
        }
        assert!(engine.insert_edge(i, j, 1.0));
        assert_eq!(engine.metrics.repartitions, 1, "drift tripped");
        assert!(!engine.active_is_stale(), "repartition pre-compiles");
        let mutated = engine.global_matrix();
        // After a repartition the layout is re-derived from the mutated
        // matrix — exactly what a from-scratch oracle does.
        assert_bits_eq(
            &engine.query(&queries[0]),
            &oracle(&mutated, &cfg, &queries[0]),
            "post-repartition",
        );

        let reparts = engine.metrics.repartitions;
        engine.repartition_now();
        assert_eq!(engine.metrics.repartitions, reparts + 1);
        assert_bits_eq(
            &engine.query(&queries[1]),
            &oracle(&mutated, &cfg, &queries[1]),
            "forced repartition is deterministic",
        );
    }

    #[test]
    fn plan_cache_stays_bounded() {
        let (a, _) = fixture();
        let cfg = EngineConfig::new(Method::OneDBlock, 2)
            .with_max_batch(1)
            .with_auto_repartition(false);
        let mut engine = Engine::new(&a, cfg);
        let x: Vec<f64> = (0..engine.n()).map(|i| i as f64).collect();
        for k in 0..12u32 {
            // A fresh weight each round: an effective change whether or
            // not the edge already exists.
            assert!(engine.insert_edge(0, 5 + k, 2.0 + k as f64));
            let _ = engine.query(&x);
        }
        assert!(engine.cached_plans() <= PLAN_CACHE_CAP);
        assert_eq!(engine.metrics.cache_misses, 13, "one compile per epoch");
    }

    #[test]
    fn threaded_engine_is_bitwise_equal_and_multiplies_match_oracles() {
        let (a, queries) = fixture();
        let base = EngineConfig::new(Method::TwoDGp, 9).with_max_batch(4);
        let mut gold: Option<Vec<ServeReply>> = None;
        for threads in [1usize, 4] {
            let mut engine = Engine::new(&a, base.clone().with_threads(threads));
            for q in &queries {
                engine.submit(q.clone());
            }
            let replies = engine.flush();
            match &gold {
                None => gold = Some(replies),
                Some(g) => {
                    for (gr, tr) in g.iter().zip(&replies) {
                        assert_eq!(gr.id, tr.id);
                        assert_bits_eq(&tr.y, &gr.y, "threads must not change bits");
                    }
                }
            }
        }

        // The pooled spgemm/summa workspaces answer repeated multiplies.
        let mut engine = Engine::new(&a, base);
        let b = a.transpose();
        let dm = engine.active();
        let mut l = CostLedger::new(Machine::cab());
        let want = sf2d_spgemm::spgemm_dist(dm, &b, &mut l);
        let got = engine.multiply();
        assert_eq!(want.locals, got.locals);
        let got2 = engine.multiply();
        assert_eq!(want.locals, got2.locals, "workspace reuse is clean");
        let summa = engine.multiply_summa();
        assert_eq!(want.locals, summa.locals, "summa agrees with expand/fold");
    }

    #[test]
    fn chaos_flush_heals_and_rate_zero_is_byte_identical() {
        let (a, queries) = fixture();
        let cfg = EngineConfig::new(Method::TwoDBlock, 6).with_max_batch(3);

        let mut plain = Engine::new(&a, cfg.clone());
        for q in &queries {
            plain.submit(q.clone());
        }
        let want = plain.flush();

        // Rate 0: byte-identical, ledger included.
        let mut engine = Engine::new(&a, cfg.clone());
        let mut rt = ChaosRuntime::seeded(11, 0.0);
        for q in &queries {
            engine.submit(q.clone());
        }
        let got = engine.flush_chaos(&mut rt);
        assert_eq!(got, want);
        assert_eq!(engine.ledger.history, plain.ledger.history);
        assert_eq!(engine.ledger.total.to_bits(), plain.ledger.total.to_bits());
        assert!(!rt.stats.any());

        // Seeded faults: healed bits, extra cost.
        let mut engine = Engine::new(&a, cfg);
        let mut rt = ChaosRuntime::seeded(11, 0.4);
        for q in &queries {
            engine.submit(q.clone());
        }
        let got = engine.flush_chaos(&mut rt);
        assert_eq!(got, want);
        assert!(rt.stats.any());
        assert!(engine.ledger.total > plain.ledger.total);
    }
}
