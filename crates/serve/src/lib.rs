#![warn(missing_docs)]

//! # sf2d-serve
//!
//! A resident serving layer over the sf2d kernels: the long-lived
//! [`Engine`] owns a partitioned dynamic matrix plus all its pooled
//! compiled state, coalesces streams of query vectors into SpMM batches,
//! caches compiled plans by `(epoch, method, p)`, and supports
//! incremental edge mutation with imbalance-drift tracking that triggers
//! repartition + atomic plan swap. The chaos engine is the serving fault
//! model ([`Engine::flush_chaos`]).
//!
//! Every answer — batched, cached, epoch-mutated, or chaos-routed — is
//! **bitwise equal** to a from-scratch one-shot `spmv` of the same query
//! against the same matrix; the differential/property/chaos suites in
//! `tests/tests/` are the contract.
//!
//! ```
//! use sf2d_core::prelude::*;
//! use sf2d_serve::{Engine, EngineConfig};
//!
//! let a = sf2d_core::sf2d_gen::rmat(&sf2d_core::sf2d_gen::RmatConfig::graph500(7), 42);
//! let n = a.nrows();
//! let mut engine = Engine::new(&a, EngineConfig::new(Method::TwoDGp, 16).with_max_batch(8));
//!
//! // Queries queue up ...
//! let ids: Vec<u64> = (0..5)
//!     .map(|q| engine.submit((0..n).map(|i| ((i + q) % 7) as f64).collect()))
//!     .collect();
//! // ... and one flush answers all five with a single width-5 SpMM.
//! let replies = engine.flush();
//! assert_eq!(replies.len(), ids.len());
//! assert_eq!(engine.metrics.batches, 1);
//! ```

pub mod engine;
pub mod metrics;

pub use engine::{Engine, EngineConfig, ServeReply};
pub use metrics::EngineMetrics;
