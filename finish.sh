#!/bin/bash
# Final wrap-up: rebuild, re-record the SpMV-side artifacts with the final
# binaries, stitch the report, then record test and bench outputs.
set -u
cd "$(dirname "$0")"
cargo build --release -p sf2d-bench --bins 2>&1 | tail -1
for bin in table1 table2 table3 fig5 fig6_7 fig8 ablations make_report; do
  echo "=== $bin ($(date +%H:%M:%S))"
  ./target/release/$bin --shrink 2 --seeds 11,22 > "results/$bin.txt" 2> "results/$bin.log"
done
echo FINISH_DONE
